//! The paper's motivating use case: a data worker deciding which of several
//! entity-graph datasets to download, using only their previews.
//!
//! Run with:
//! ```text
//! cargo run --release --example dataset_selection
//! ```
//!
//! Three candidate datasets (synthetic "film", "TV" and "basketball" domains)
//! are previewed side by side in a fixed display budget (3 tables, 8
//! attributes); the previews — not the multi-megabyte graphs — are what the
//! user inspects before committing to a download.

use preview_tables::baseline::Yps09Summarizer;
use preview_tables::core::{
    DynamicProgrammingDiscovery, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};
use preview_tables::datagen::{FreebaseDomain, SyntheticGenerator};

fn main() {
    let display_budget = PreviewSpace::concise(3, 8).expect("valid size constraint");

    for domain in [
        FreebaseDomain::Film,
        FreebaseDomain::Tv,
        FreebaseDomain::Basketball,
    ] {
        let spec = domain.spec(1e-3);
        let graph = SyntheticGenerator::new(7).generate(&spec);
        let scored =
            ScoredSchema::build(&graph, &ScoringConfig::coverage()).expect("scoring succeeds");

        println!("==============================================================");
        println!(
            "candidate dataset {:?}: {} entities / {} relationships ({} entity types)",
            domain.name(),
            graph.entity_count(),
            graph.edge_count(),
            graph.type_count()
        );

        let preview = DynamicProgrammingDiscovery::new()
            .discover(&scored, &display_budget)
            .expect("concise discovery succeeds")
            .expect("every domain admits a 3-table preview");
        println!("\npreview (3 tables, <=8 attributes):");
        println!("{}", preview.describe(scored.schema()));

        // Show two sample tuples per table so the user sees real values too.
        for table in preview.materialize(&graph, scored.schema(), 2) {
            println!(
                "\n{} ({} tuples in total)",
                table.key_type, table.total_tuples
            );
            println!("{}", table.to_text());
        }

        // For contrast: what the YPS09 relational-summarisation baseline would
        // show (cluster centres only — each centre table would carry *all* of
        // its incident relationship types).
        let schema = graph.schema_graph();
        if let Some(summary) = Yps09Summarizer::new().summarize(&graph, schema, 3) {
            let centres: Vec<&str> = summary
                .centers
                .iter()
                .map(|&t| schema.type_name(t))
                .collect();
            println!(
                "YPS09 baseline would summarise the same dataset as clusters around: {centres:?}"
            );
        }
    }
}
