//! Explore a synthetic Freebase "film" domain: compare concise, tight and
//! diverse previews under different scoring measures.
//!
//! Run with:
//! ```text
//! cargo run --release --example film_domain
//! ```

use preview_tables::core::{
    AprioriDiscovery, DynamicProgrammingDiscovery, KeyScoring, NonKeyScoring, PreviewDiscovery,
    PreviewSpace, ScoredSchema, ScoringConfig,
};
use preview_tables::datagen::{FreebaseDomain, SyntheticGenerator};

fn main() {
    // Generate a laptop-sized film domain whose schema graph matches the
    // paper's Table 2 (63 entity types, 136 relationship types).
    let spec = FreebaseDomain::Film.spec(1e-3);
    let graph = SyntheticGenerator::new(2016).generate(&spec);
    println!(
        "synthetic film domain: {} entities, {} edges, {} entity types, {} relationship types",
        graph.entity_count(),
        graph.edge_count(),
        graph.type_count(),
        graph.relationship_type_count()
    );

    for (key, non_key) in [
        (KeyScoring::Coverage, NonKeyScoring::Coverage),
        (KeyScoring::RandomWalk, NonKeyScoring::Entropy),
    ] {
        let scored = ScoredSchema::build(&graph, &ScoringConfig::new(key, non_key))
            .expect("scoring succeeds");
        println!(
            "\n=== scoring: key={}, non-key={} ===",
            key.label(),
            non_key.label()
        );

        let concise = DynamicProgrammingDiscovery::new()
            .discover(&scored, &PreviewSpace::concise(5, 10).unwrap())
            .unwrap()
            .expect("concise preview exists");
        println!("\noptimal concise preview (k=5, n=10):");
        println!("{}", concise.describe(scored.schema()));

        let tight = AprioriDiscovery::new()
            .discover(&scored, &PreviewSpace::tight(5, 10, 2).unwrap())
            .unwrap();
        match tight {
            Some(preview) => {
                println!("\noptimal tight preview (d<=2): the key attributes cluster around one hub type");
                println!("{}", preview.describe(scored.schema()));
            }
            None => println!("\nno tight preview with d<=2 exists for k=5"),
        }

        let diverse = AprioriDiscovery::new()
            .discover(&scored, &PreviewSpace::diverse(5, 10, 3).unwrap())
            .unwrap();
        match diverse {
            Some(preview) => {
                println!(
                    "\noptimal diverse preview (d>=3): the key attributes cover distant concepts"
                );
                println!("{}", preview.describe(scored.schema()));
            }
            None => println!("\nno diverse preview with d>=3 exists for k=5"),
        }
    }
}
