//! Compare the three discovery algorithms on one domain: identical optima,
//! very different running times (the phenomenon behind Figs. 8–9).
//!
//! Run with:
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use std::time::Instant;

use preview_tables::core::{
    AprioriDiscovery, BruteForceDiscovery, DynamicProgrammingDiscovery, PreviewDiscovery,
    PreviewSpace, ScoredSchema, ScoringConfig,
};
use preview_tables::datagen::{FreebaseDomain, SyntheticGenerator};

fn main() {
    // Architecture: 23 entity types — large enough for the brute force to
    // hurt, small enough for it to finish.
    let spec = FreebaseDomain::Architecture.spec(1e-3);
    let graph = SyntheticGenerator::new(2016).generate(&spec);
    let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).expect("scoring succeeds");
    println!(
        "domain 'architecture': {} entity types, {} relationship types",
        scored.schema().type_count(),
        scored.schema().relationship_type_count()
    );

    // Concise previews: brute force vs. dynamic programming.
    let concise = PreviewSpace::concise(5, 10).expect("valid constraint");
    let mut scores = Vec::new();
    for algorithm in [
        &BruteForceDiscovery::new() as &dyn PreviewDiscovery,
        &DynamicProgrammingDiscovery::new(),
    ] {
        let start = Instant::now();
        let preview = algorithm
            .discover(&scored, &concise)
            .expect("concise space is supported")
            .expect("a preview exists");
        let elapsed = start.elapsed();
        let score = scored.preview_score(&preview);
        scores.push(score);
        println!(
            "\n[{}] {:.2?}, preview score {:.1}:\n{}",
            algorithm.name(),
            elapsed,
            score,
            preview.describe(scored.schema())
        );
    }
    assert!(
        (scores[0] - scores[1]).abs() < 1e-6,
        "both algorithms find the same optimum"
    );

    // Tight previews: brute force vs. the Apriori-style algorithm.
    let tight = PreviewSpace::tight(5, 10, 2).expect("valid constraint");
    for algorithm in [
        &BruteForceDiscovery::new() as &dyn PreviewDiscovery,
        &AprioriDiscovery::new(),
    ] {
        let start = Instant::now();
        let preview = algorithm
            .discover(&scored, &tight)
            .expect("tight space is supported");
        let elapsed = start.elapsed();
        match preview {
            Some(preview) => println!(
                "\n[{} | tight d<=2] {:.2?}, score {:.1}:\n{}",
                algorithm.name(),
                elapsed,
                scored.preview_score(&preview),
                preview.describe(scored.schema())
            ),
            None => println!(
                "\n[{} | tight d<=2] {:.2?}: no preview satisfies the constraint",
                algorithm.name(),
                elapsed
            ),
        }
    }
}
