//! The serving layer: register graphs, spawn the worker pool, submit
//! concurrent requests, and read the service statistics.
//!
//! Run with:
//! ```text
//! cargo run --release --example preview_service
//! ```
//!
//! The paper frames preview tables as something users request interactively
//! over big entity graphs; `preview-service` turns the one-shot discovery
//! pipeline into a concurrent engine with a graph registry, a sharded LRU
//! result cache and per-request latency capture.

use std::sync::Arc;

use preview_tables::graph::fixtures;
use preview_tables::prelude::*;

fn main() {
    // 1. A registry of named, versioned graphs. Registering the same name
    //    again creates a new version; requests default to the latest.
    let registry = Arc::new(GraphRegistry::new());
    registry.register("fig1", fixtures::figure1_graph());

    // 2. Spawn the service: 4 workers, a bounded request queue, and a
    //    sharded LRU cache keyed by (graph, version, scoring, space, algo).
    let service = PreviewService::start(ServiceConfig::default(), Arc::clone(&registry));

    // 3. Submit a burst of concurrent requests across the three constraint
    //    spaces. Identical requests are answered from the cache.
    let spaces = [
        PreviewSpace::concise(2, 6).unwrap(),
        PreviewSpace::tight(2, 6, 2).unwrap(),
        PreviewSpace::diverse(2, 6, 3).unwrap(),
    ];
    let pending: Vec<_> = (0..30)
        .map(|i| {
            let request = PreviewRequest::new("fig1", spaces[i % spaces.len()]);
            service.submit(request).expect("queue accepts the request")
        })
        .collect();

    let fig1 = fixtures::figure1_graph();
    let schema_graph = fig1.schema_graph();
    for (i, handle) in pending.into_iter().enumerate() {
        let response = handle.wait().expect("fig1 requests succeed");
        if i < spaces.len() {
            let preview = response.preview.as_ref().expect("fig1 previews exist");
            println!(
                "[{}] score {:.1}, cache_hit={} ->\n{}\n",
                response.algorithm.name(),
                response.score,
                response.cache_hit,
                preview.describe(schema_graph)
            );
        }
    }

    // 4. Service statistics: throughput, latency percentiles, cache counters.
    let stats = service.stats();
    println!(
        "served {} requests at {:.0} rps; p50 {} us, p99 {} us",
        stats.completed, stats.throughput_rps, stats.latency_p50_us, stats.latency_p99_us
    );
    println!(
        "cache: {} hits / {} misses (hit rate {:.2}), {} entries",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate(),
        stats.cache.len
    );
}
