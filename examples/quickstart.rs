//! Quickstart: build a tiny entity graph, score it, and discover previews.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The graph below is the paper's running example (Fig. 1, a small excerpt of
//! a film knowledge base); the discovered concise preview reproduces the
//! 2-table preview of Fig. 2 / Sec. 4.

use preview_tables::core::{
    DynamicProgrammingDiscovery, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};
use preview_tables::graph::fixtures;

fn main() {
    // 1. An entity graph. Normally you would build one with
    //    `EntityGraphBuilder` or parse the triple format; here we use the
    //    paper's Fig. 1 fixture.
    let graph = fixtures::figure1_graph();
    println!(
        "entity graph: {} entities, {} relationships, {} entity types, {} relationship types",
        graph.entity_count(),
        graph.edge_count(),
        graph.type_count(),
        graph.relationship_type_count()
    );

    // 2. Pre-compute the schema graph and the scores (coverage-based key and
    //    non-key scoring, the paper's default running example).
    let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage())
        .expect("scoring a well-formed graph always succeeds");

    // 3. Discover the optimal concise preview with 2 tables and at most 6
    //    non-key attributes.
    let space = PreviewSpace::concise(2, 6).expect("k=2, n=6 is a valid size constraint");
    let preview = DynamicProgrammingDiscovery::new()
        .discover(&scored, &space)
        .expect("the DP algorithm supports concise spaces")
        .expect("the Fig. 1 graph admits a 2-table preview");

    println!(
        "\noptimal concise preview (k=2, n=6), score {}:",
        scored.preview_score(&preview)
    );
    println!("{}", preview.describe(scored.schema()));

    // 4. Materialise a few tuples per table, as the paper's Fig. 2 does.
    println!("\nmaterialised preview tables:");
    for table in preview.materialize(&graph, scored.schema(), 4) {
        println!("{}", table.to_text());
    }
}
