//! Derive macros for the vendored `serde` stand-in.
//!
//! The real `serde_derive` generates full (de)serialization impls; this
//! offline substitute emits empty impls of the marker traits, which is all
//! the workspace needs. It is written against `proc_macro` alone (no
//! `syn`/`quote`, which are unavailable offline): the input token stream is
//! scanned for the `struct`/`enum`/`union` keyword, the following identifier
//! is the type name, and an optional generic parameter list is captured so
//! that generic types derive correctly.

use proc_macro::{TokenStream, TokenTree};

/// Parsed shape of the deriving item: its name, the generic parameter list
/// as written (bounds included), and the bare parameter names for the type
/// position of the impl.
struct Item {
    name: String,
    generics_decl: String,
    generics_use: String,
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            panic!("serde stub derive: expected a type name after `{kw}`");
        };
        let mut generics_decl = String::new();
        let mut generics_use = String::new();
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            iter.next();
            let mut depth = 1usize;
            let mut tokens: Vec<TokenTree> = Vec::new();
            for tt in iter.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                tokens.push(tt);
            }
            generics_decl = tokens
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            generics_use = param_names(&tokens).join(", ");
        }
        return Item {
            name: name.to_string(),
            generics_decl,
            generics_use,
        };
    }
    panic!("serde stub derive: could not find a struct/enum/union to derive for");
}

/// Extracts the bare generic parameter names (lifetimes and type/const
/// idents) from a parameter list, dropping bounds and defaults.
fn param_names(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0usize;
    let mut at_param_start = true;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => at_param_start = true,
                '\'' if depth == 0 && at_param_start => {
                    if let Some(TokenTree::Ident(id)) = tokens.get(i + 1) {
                        names.push(format!("'{id}"));
                        at_param_start = false;
                        i += 1;
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 && at_param_start => {
                let s = id.to_string();
                if s == "const" {
                    // const parameter: the name is the next ident.
                    if let Some(TokenTree::Ident(name)) = tokens.get(i + 1) {
                        names.push(name.to_string());
                        i += 1;
                    }
                } else {
                    names.push(s);
                }
                at_param_start = false;
            }
            _ => {}
        }
        i += 1;
    }
    names
}

fn empty_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let item = parse_item(input);
    let mut decl_parts: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        decl_parts.push(lt.to_string());
    }
    if !item.generics_decl.is_empty() {
        decl_parts.push(item.generics_decl.clone());
    }
    let decl = if decl_parts.is_empty() {
        String::new()
    } else {
        format!("<{}>", decl_parts.join(", "))
    };
    let ty = if item.generics_use.is_empty() {
        item.name.clone()
    } else {
        format!("{}<{}>", item.name, item.generics_use)
    };
    format!("#[automatically_derived] impl{decl} {trait_path} for {ty} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}

/// Mirror of `#[derive(serde::Serialize)]`; emits an empty marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize", None)
}

/// Mirror of `#[derive(serde::Deserialize)]`; emits an empty marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize<'de>", Some("'de"))
}
