//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset of the rand API it actually uses:
//!
//! * [`RngCore`] — the raw generator interface,
//! * [`SeedableRng`] — seeding, including the SplitMix64-based
//!   [`SeedableRng::seed_from_u64`] expansion (same construction as upstream
//!   rand, so seeds diffuse well even for small consecutive values),
//! * [`Rng`] — the user-facing extension trait with `gen`, `gen_range` and
//!   `gen_bool`, blanket-implemented for every `RngCore`.
//!
//! Integer `gen_range` uses unbiased rejection sampling (Lemire-style
//! widening multiply); float ranges use the standard 53-bit mantissa
//! construction. The value streams are deterministic for a given seed but
//! are **not** bit-identical to upstream rand — everything in this
//! workspace that depends on determinism seeds its own generator, so only
//! self-consistency matters.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64 so
    /// that nearby seeds produce unrelated states.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG, mirroring rand's
/// `Standard` distribution (floats land in `[0, 1)`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts, mirroring rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening-multiply rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's method: accept unless the low product word falls in the
    // biased zone, which happens with probability < span / 2^64.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/usize domain.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// User-facing extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution (floats in
    /// `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
