//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! integer-range and [`bool::ANY`] strategies, and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros. Each generated `#[test]`
//! runs `cases` deterministic random cases (seeded from the test name, so
//! failures reproduce run-to-run) and panics with the offending inputs on
//! the first failed assertion. No shrinking is performed — on failure the
//! reported inputs are the raw failing case.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Seeds the RNG from a test name via FNV-1a, so every test gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(ChaCha8Rng::seed_from_u64(hash))
    }

    /// Access to the underlying generator for strategies.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }
}

/// A source of random values for one macro-bound variable.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut super::TestRng) -> bool {
            use rand::Rng as _;
            rng.rng().gen_bool(0.5)
        }
    }
}

/// Error type carried out of a failing case body by the `prop_assert!`
/// family.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: String) -> Self {
        Self(message)
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a proptest-based test file normally imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies,
/// mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                let __inputs = format!(
                    concat!("" $(, stringify!($arg), " = {:?}, ")*)
                    $(, $arg)*
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        err,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}
