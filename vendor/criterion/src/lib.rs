//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock harness: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples, and the per-iteration median/min/max are printed
//! to stdout. There is no statistical analysis, HTML report, or CLI
//! filtering; command-line arguments passed by `cargo bench` are ignored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this stub ignores CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks. Group-level configuration
    /// overrides are scoped to the group, as in upstream criterion.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: self.clone(),
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let report = run_bench(self, &name.into(), |b| f(b));
        println!("{report}");
    }
}

/// A named collection of benchmarks sharing a [`Criterion`] configuration.
///
/// Holds its own copy of the configuration so that group-level overrides do
/// not leak into the parent [`Criterion`] (matching upstream semantics). The
/// exclusive borrow of the parent is kept only to mirror upstream's aliasing
/// rules — one open group at a time.
pub struct BenchmarkGroup<'a> {
    config: Criterion,
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let report = run_bench(&self.config, &label, |b| f(b, input));
        println!("{report}");
        self
    }

    /// Benchmarks a nullary closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let report = run_bench(&self.config, &label, |b| f(b));
        println!("{report}");
        self
    }

    /// Ends the group. (The stub prints results eagerly, so this is a no-op.)
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function`-style calls.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl<T: Display> IntoBenchmarkId for T {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

/// Timing callback handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then recording `sample_size`
    /// samples (each possibly batching several iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);

        // Batch so that all samples together roughly fill measurement_time.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let batch = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn run_bench(config: &Criterion, label: &str, mut f: impl FnMut(&mut Bencher)) -> String {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: config.sample_size,
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        return format!("{label:<60} (no samples)");
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty samples");
    format!("{label:<60} median {median:>12.3?}   [min {min:.3?}, max {max:.3?}]")
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
