//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator
//! implementing the vendored [`rand`] traits.
//!
//! The block function is the standard ChaCha quarter-round construction
//! (Bernstein 2008) with 8 rounds and a 64-bit block counter. Output is
//! deterministic for a given seed but not bit-identical to upstream
//! `rand_chacha` (which consumes words in a different order); the workspace
//! only relies on self-consistent determinism.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// A ChaCha generator with 8 rounds, mirroring `rand_chacha::ChaCha8Rng`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; WORDS_PER_BLOCK],
    /// Current keystream block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed word in `buffer`; `WORDS_PER_BLOCK` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, out) in self.buffer.iter_mut().enumerate() {
            *out = working[i].wrapping_add(self.state[i]);
        }
        // Advance the 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        Self {
            state,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn blocks_differ_as_counter_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
