//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible subset of serde: the two
//! marker traits and the `#[derive(Serialize, Deserialize)]` macros. The
//! derives register the `#[serde(...)]` helper attribute so annotations such
//! as `#[serde(transparent)]` parse, but no serialization logic is generated
//! — nothing in this workspace serializes at runtime yet. Swapping in the
//! real serde later is a one-line change in `[workspace.dependencies]`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
