//! Conversion of an entity graph into a relational view, as required by the
//! YPS09 adaptation (Sec. 6.1.1 of the paper under reproduction).
//!
//! For each entity type `τ` a relational table is created whose first column
//! holds the entities of `τ` and which has one additional column per
//! relationship type incident on `τ` in the schema graph. The values of such a
//! column are the entities adjacent through that relationship type. (The paper
//! materialises the Cartesian product of the columns into tuples; for
//! importance and similarity computation only the per-column statistics are
//! needed, so this view stores column value multisets rather than exploded
//! tuples.)

use std::collections::HashMap;

use entity_graph::{Direction, EntityGraph, EntityId, SchemaGraph, TypeId};

/// One column of a relational table derived from an entity type.
#[derive(Debug, Clone)]
pub struct RelationalColumn {
    /// Human-readable column name, e.g. `"Director"` or `"name"` for the key
    /// column.
    pub name: String,
    /// Index of the schema edge this column was derived from, or `None` for
    /// the key column.
    pub schema_edge: Option<usize>,
    /// Orientation of the relationship relative to the table's entity type
    /// (meaningless for the key column).
    pub direction: Direction,
    /// How many distinct values appear in the column.
    pub distinct_values: usize,
    /// Total number of (row, value) pairs — i.e. the number of edges feeding
    /// the column, or the number of entities for the key column.
    pub total_values: usize,
    /// Shannon entropy (base 2) of the column's value distribution — the
    /// column's information content in YPS09's model.
    pub entropy: f64,
}

/// A relational table derived from one entity type.
#[derive(Debug, Clone)]
pub struct RelationalTable {
    /// The entity type this table was derived from.
    pub entity_type: TypeId,
    /// Name of the entity type.
    pub type_name: String,
    /// Number of rows (entities of the type).
    pub rows: usize,
    /// The key column followed by one column per incident relationship type.
    pub columns: Vec<RelationalColumn>,
}

impl RelationalTable {
    /// Total information content of the table: the sum of its columns'
    /// entropies, as in YPS09's table-importance definition.
    pub fn information_content(&self) -> f64 {
        self.columns.iter().map(|c| c.entropy).sum()
    }
}

/// The relational view of an entity graph: one table per entity type.
#[derive(Debug, Clone)]
pub struct RelationalView {
    tables: Vec<RelationalTable>,
}

impl RelationalView {
    /// Builds the relational view of `graph` using `schema` (normally
    /// `graph.schema_graph()`).
    pub fn build(graph: &EntityGraph, schema: &SchemaGraph) -> Self {
        let tables = schema
            .types()
            .map(|ty| build_table(graph, schema, ty))
            .collect();
        Self { tables }
    }

    /// The tables, indexed by [`TypeId`].
    pub fn tables(&self) -> &[RelationalTable] {
        &self.tables
    }

    /// The table for one entity type.
    pub fn table(&self, ty: TypeId) -> &RelationalTable {
        &self.tables[ty.index()]
    }

    /// Number of tables (= number of entity types).
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the view has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

fn build_table(graph: &EntityGraph, schema: &SchemaGraph, ty: TypeId) -> RelationalTable {
    let type_name = schema.type_name(ty).to_string();
    let graph_ty = graph.type_by_name(&type_name);
    let entities: &[EntityId] = graph_ty.map(|t| graph.entities_of_type(t)).unwrap_or(&[]);
    let rows = entities.len();

    let mut columns = Vec::new();
    // Key column: every entity is distinct, so its entropy is log2(rows).
    columns.push(RelationalColumn {
        name: "name".to_string(),
        schema_edge: None,
        direction: Direction::Outgoing,
        distinct_values: rows,
        total_values: rows,
        entropy: if rows > 1 { (rows as f64).log2() } else { 0.0 },
    });

    for &edge_idx in schema.incident_edges(ty) {
        let edge = schema.edge(edge_idx);
        let directions: &[Direction] = if edge.src == edge.dst {
            &[Direction::Outgoing, Direction::Incoming]
        } else if edge.src == ty {
            &[Direction::Outgoing]
        } else {
            &[Direction::Incoming]
        };
        for &direction in directions {
            columns.push(build_column(graph, schema, edge_idx, direction, entities));
        }
    }

    RelationalTable {
        entity_type: ty,
        type_name,
        rows,
        columns,
    }
}

fn build_column(
    graph: &EntityGraph,
    schema: &SchemaGraph,
    edge_idx: usize,
    direction: Direction,
    entities: &[EntityId],
) -> RelationalColumn {
    let edge = schema.edge(edge_idx);
    let rel = graph
        .type_by_name(schema.type_name(edge.src))
        .zip(graph.type_by_name(schema.type_name(edge.dst)))
        .and_then(|(src, dst)| graph.rel_type_by_key(&edge.name, src, dst));

    let mut value_counts: HashMap<EntityId, usize> = HashMap::new();
    let mut total = 0usize;
    if let Some(rel) = rel {
        for &entity in entities {
            for &value in graph.neighbors_via(entity, rel, direction) {
                *value_counts.entry(value).or_insert(0) += 1;
                total += 1;
            }
        }
    }
    let entropy = if total > 0 {
        // Deterministic summation order (see `nonkey::orientation_entropy`):
        // HashMap iteration order would perturb the float sum by ulps.
        let mut counts: Vec<usize> = value_counts.values().copied().collect();
        counts.sort_unstable();
        counts
            .into_iter()
            .map(|c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    } else {
        0.0
    };
    RelationalColumn {
        name: edge.name.clone(),
        schema_edge: Some(edge_idx),
        direction,
        distinct_values: value_counts.len(),
        total_values: total,
        entropy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures::{self, types};

    fn view() -> (EntityGraph, SchemaGraph, RelationalView) {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph().clone();
        let v = RelationalView::build(&g, &s);
        (g, s, v)
    }

    #[test]
    fn one_table_per_entity_type() {
        let (_, s, v) = view();
        assert_eq!(v.len(), s.type_count());
        assert!(!v.is_empty());
    }

    #[test]
    fn film_table_shape() {
        let (_, s, v) = view();
        let film = s.type_by_name(types::FILM).unwrap();
        let t = v.table(film);
        assert_eq!(t.type_name, "FILM");
        assert_eq!(t.rows, 4);
        // Key column + 5 incident relationship types.
        assert_eq!(t.columns.len(), 6);
        // Key column entropy = log2(4) = 2.
        assert!((t.columns[0].entropy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn director_column_statistics() {
        let (_, s, v) = view();
        let film = s.type_by_name(types::FILM).unwrap();
        let t = v.table(film);
        let director = t.columns.iter().find(|c| c.name == "Director").unwrap();
        // Four Director edges, three distinct directors.
        assert_eq!(director.total_values, 4);
        assert_eq!(director.distinct_values, 3);
        // Entropy of {Barry: 2, Berg: 1, Proyas: 1} = 1.5 bits.
        assert!((director.entropy - 1.5).abs() < 1e-12);
    }

    #[test]
    fn information_content_is_positive_for_rich_tables() {
        let (_, s, v) = view();
        let film = s.type_by_name(types::FILM).unwrap();
        let genre = s.type_by_name(types::FILM_GENRE).unwrap();
        assert!(v.table(film).information_content() > v.table(genre).information_content());
    }

    #[test]
    fn empty_type_has_zero_entropy_columns() {
        use entity_graph::EntityGraphBuilder;
        let mut b = EntityGraphBuilder::new();
        let a = b.entity_type("A");
        let c = b.entity_type("B");
        b.relationship_type("r", a, c);
        // No entities, no edges.
        let g = b.build();
        let s = g.schema_graph();
        let v = RelationalView::build(&g, s);
        assert_eq!(v.len(), 2);
        for t in v.tables() {
            assert_eq!(t.rows, 0);
            assert_eq!(t.information_content(), 0.0);
        }
    }
}
