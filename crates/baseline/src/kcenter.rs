//! Weighted k-center clustering (the final step of YPS09).
//!
//! YPS09 places the database's tables into `k` clusters with a weighted
//! k-center algorithm, where a table's weight is its importance; the cluster
//! centres form the summary. This module implements the standard greedy
//! 2-approximation: start from the heaviest table, then repeatedly add the
//! table maximising its weighted distance to the nearest chosen centre, and
//! finally assign every table to its closest centre.

use entity_graph::TypeId;

/// Result of the clustering: chosen centres and the assignment of every table
/// to a centre.
#[derive(Debug, Clone, PartialEq)]
pub struct KCenterResult {
    /// The `k` cluster centres, in the order they were chosen.
    pub centers: Vec<TypeId>,
    /// `assignment[t]` is the index (into `centers`) of the centre that table
    /// `t` belongs to.
    pub assignment: Vec<usize>,
}

impl KCenterResult {
    /// The members of each cluster, indexed like `centers`.
    pub fn clusters(&self) -> Vec<Vec<TypeId>> {
        let mut clusters = vec![Vec::new(); self.centers.len()];
        for (table, &center) in self.assignment.iter().enumerate() {
            clusters[center].push(TypeId::from_usize(table));
        }
        clusters
    }
}

/// Greedy weighted k-center over `n` tables.
///
/// * `distances[i][j]` — pairwise table distance (symmetric, zero diagonal),
/// * `weights[i]` — table importance,
/// * `k` — number of clusters (clamped to `n`).
///
/// Returns `None` when there are no tables or `k == 0`.
pub fn weighted_k_center(
    distances: &[Vec<f64>],
    weights: &[f64],
    k: usize,
) -> Option<KCenterResult> {
    let n = weights.len();
    if n == 0 || k == 0 {
        return None;
    }
    let k = k.min(n);

    // First centre: the heaviest table.
    let first = (0..n)
        .max_by(|&a, &b| {
            weights[a]
                .partial_cmp(&weights[b])
                .expect("weights must not be NaN")
        })
        .expect("n > 0");
    let mut centers = vec![first];
    // dist_to_nearest[i]: distance from table i to its nearest chosen centre.
    let mut dist_to_nearest: Vec<f64> = (0..n).map(|i| distances[i][first]).collect();

    while centers.len() < k {
        let next = (0..n).filter(|i| !centers.contains(i)).max_by(|&a, &b| {
            let wa = weights[a] * dist_to_nearest[a];
            let wb = weights[b] * dist_to_nearest[b];
            wa.partial_cmp(&wb)
                .expect("weighted distances must not be NaN")
                .then_with(|| b.cmp(&a))
        });
        let next = match next {
            Some(i) => i,
            None => break,
        };
        centers.push(next);
        for i in 0..n {
            if distances[i][next] < dist_to_nearest[i] {
                dist_to_nearest[i] = distances[i][next];
            }
        }
    }

    let assignment = (0..n)
        .map(|i| {
            centers
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    distances[i][a]
                        .partial_cmp(&distances[i][b])
                        .expect("distances must not be NaN")
                })
                .map(|(idx, _)| idx)
                .expect("at least one centre")
        })
        .collect();

    Some(KCenterResult {
        centers: centers.into_iter().map(TypeId::from_usize).collect(),
        assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated groups of points on a line: {0, 1} near 0 and
    /// {2, 3} near 10.
    fn line_distances() -> Vec<Vec<f64>> {
        let pos = [0.0, 1.0, 10.0, 11.0];
        pos.iter()
            .map(|&a| pos.iter().map(|&b| a - b).map(f64::abs).collect())
            .collect()
    }

    #[test]
    fn separates_two_obvious_clusters() {
        let d = line_distances();
        let w = vec![1.0, 0.5, 0.9, 0.4];
        let result = weighted_k_center(&d, &w, 2).unwrap();
        assert_eq!(result.centers.len(), 2);
        let clusters = result.clusters();
        let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2]);
        // Tables 0 and 1 end up together, as do 2 and 3.
        assert_eq!(result.assignment[0], result.assignment[1]);
        assert_eq!(result.assignment[2], result.assignment[3]);
        assert_ne!(result.assignment[0], result.assignment[2]);
    }

    #[test]
    fn first_center_is_heaviest_table() {
        let d = line_distances();
        let w = vec![0.1, 0.2, 5.0, 0.3];
        let result = weighted_k_center(&d, &w, 1).unwrap();
        assert_eq!(result.centers, vec![TypeId::new(2)]);
        assert!(result.assignment.iter().all(|&c| c == 0));
    }

    #[test]
    fn k_is_clamped_to_table_count() {
        let d = line_distances();
        let w = vec![1.0; 4];
        let result = weighted_k_center(&d, &w, 10).unwrap();
        assert_eq!(result.centers.len(), 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(weighted_k_center(&[], &[], 3).is_none());
        let d = line_distances();
        let w = vec![1.0; 4];
        assert!(weighted_k_center(&d, &w, 0).is_none());
    }

    #[test]
    fn every_table_is_assigned_to_an_existing_center() {
        let d = line_distances();
        let w = vec![1.0, 2.0, 3.0, 4.0];
        let result = weighted_k_center(&d, &w, 3).unwrap();
        for &c in &result.assignment {
            assert!(c < result.centers.len());
        }
    }
}
