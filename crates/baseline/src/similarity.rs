//! Table similarity / distance for the YPS09 adaptation.
//!
//! YPS09 clusters tables by a distance that reflects how strongly two tables
//! are related through joins. Our adaptation defines the similarity between
//! two entity types as the strength of their direct connection (entity-graph
//! edges between them, normalised by the smaller table) and propagates it
//! along schema paths, so that tables joined only indirectly are "further
//! apart" than directly joined ones but closer than unrelated ones.

use entity_graph::{SchemaGraph, TypeId};

/// Pairwise similarity matrix between entity types, values in `[0, 1]`.
///
/// Direct similarity of types `a` and `b` is
/// `w(a, b) / min(|a|, |b|)` clamped to 1, where `w` is the number of
/// entity-graph edges between them and `|·|` the entity counts; the similarity
/// of a type with itself is 1. Indirect similarity along a path is the product
/// of the direct similarities on its hops, and the matrix holds the maximum
/// over all paths (computed with a Floyd–Warshall-style max-product pass).
pub fn similarity_matrix(schema: &SchemaGraph) -> Vec<Vec<f64>> {
    let n = schema.type_count();
    let mut sim = vec![vec![0.0f64; n]; n];
    for (i, row) in sim.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for edge in schema.edges() {
        let (a, b) = (edge.src.index(), edge.dst.index());
        if a == b {
            continue;
        }
        let ca = schema.entity_count_of(TypeId::from_usize(a)).max(1) as f64;
        let cb = schema.entity_count_of(TypeId::from_usize(b)).max(1) as f64;
        let s = (edge.edge_count as f64 / ca.min(cb)).min(1.0);
        if s > sim[a][b] {
            sim[a][b] = s;
            sim[b][a] = s;
        }
    }
    // Max-product closure: indirect connections contribute the product of the
    // similarities along the best path.
    for k in 0..n {
        for i in 0..n {
            if sim[i][k] == 0.0 {
                continue;
            }
            for j in 0..n {
                let via = sim[i][k] * sim[k][j];
                if via > sim[i][j] {
                    sim[i][j] = via;
                }
            }
        }
    }
    sim
}

/// Distance between two tables: `1 − similarity`.
pub fn table_distance(similarity: &[Vec<f64>], a: TypeId, b: TypeId) -> f64 {
    1.0 - similarity[a.index()][b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures::{self, types};

    fn matrix() -> (SchemaGraph, Vec<Vec<f64>>) {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph().clone();
        let m = similarity_matrix(&s);
        (s, m)
    }

    #[test]
    fn self_similarity_is_one() {
        let (s, m) = matrix();
        for ty in s.types() {
            assert_eq!(m[ty.index()][ty.index()], 1.0);
            assert_eq!(table_distance(&m, ty, ty), 0.0);
        }
    }

    #[test]
    fn matrix_is_symmetric_and_bounded() {
        let (s, m) = matrix();
        for a in s.types() {
            for b in s.types() {
                let v = m[a.index()][b.index()];
                assert!((0.0..=1.0).contains(&v));
                assert!((v - m[b.index()][a.index()]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn directly_joined_types_are_closer_than_indirect_ones() {
        let (s, m) = matrix();
        let film = s.type_by_name(types::FILM).unwrap();
        let actor = s.type_by_name(types::FILM_ACTOR).unwrap();
        let award = s.type_by_name(types::AWARD).unwrap();
        // FILM–FILM ACTOR are directly joined; FILM–AWARD only through
        // FILM ACTOR / FILM DIRECTOR.
        assert!(table_distance(&m, film, actor) <= table_distance(&m, film, award));
    }

    #[test]
    fn disconnected_types_have_distance_one() {
        use entity_graph::EntityGraphBuilder;
        let mut b = EntityGraphBuilder::new();
        let a = b.entity_type("A");
        let c = b.entity_type("B");
        let iso = b.entity_type("ISOLATED");
        let r = b.relationship_type("r", a, c);
        let x = b.entity("x", &[a]);
        let y = b.entity("y", &[c]);
        let _z = b.entity("z", &[iso]);
        b.edge(x, r, y).unwrap();
        let g = b.build();
        let s = g.schema_graph();
        let m = similarity_matrix(s);
        let a_ty = s.type_by_name("A").unwrap();
        let iso_ty = s.type_by_name("ISOLATED").unwrap();
        assert_eq!(table_distance(&m, a_ty, iso_ty), 1.0);
    }
}
