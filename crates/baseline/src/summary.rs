//! The end-to-end YPS09 summariser used as the paper's competitor.

use entity_graph::{EntityGraph, SchemaGraph, TypeId};

use crate::importance::{ranked_by_importance, table_importance, ImportanceConfig};
use crate::kcenter::weighted_k_center;
use crate::relational::RelationalView;
use crate::similarity::similarity_matrix;

/// A database summary in the YPS09 sense: `k` cluster centres over the tables
/// derived from the entity types, plus the per-table importance used to pick
/// them.
#[derive(Debug, Clone)]
pub struct Yps09Summary {
    /// The cluster centres (entity types), in selection order.
    pub centers: Vec<TypeId>,
    /// The members of each cluster, parallel to `centers`.
    pub clusters: Vec<Vec<TypeId>>,
    /// Importance of every entity type, indexed by [`TypeId`].
    pub importance: Vec<f64>,
    /// All entity types ranked by descending importance.
    pub ranked: Vec<TypeId>,
}

/// The YPS09 summariser adapted to entity graphs (Sec. 6.1.1).
#[derive(Debug, Clone, Default)]
pub struct Yps09Summarizer {
    config: ImportanceConfig,
}

impl Yps09Summarizer {
    /// Creates a summariser with the default importance configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a summariser with a custom importance configuration.
    pub fn with_config(config: ImportanceConfig) -> Self {
        Self { config }
    }

    /// Ranks the entity types of a graph by YPS09 table importance — the
    /// ranking the paper compares against in Figs. 5–7 and Table 4.
    pub fn ranked_tables(&self, graph: &EntityGraph, schema: &SchemaGraph) -> Vec<TypeId> {
        let view = RelationalView::build(graph, schema);
        let importance = table_importance(&view, schema, &self.config);
        ranked_by_importance(&importance)
    }

    /// Produces the `k`-cluster summary of a graph (the "YPS09" arm of the
    /// user study). Returns `None` for an empty schema or `k == 0`.
    pub fn summarize(
        &self,
        graph: &EntityGraph,
        schema: &SchemaGraph,
        k: usize,
    ) -> Option<Yps09Summary> {
        let view = RelationalView::build(graph, schema);
        let importance = table_importance(&view, schema, &self.config);
        if importance.is_empty() {
            return None;
        }
        let sim = similarity_matrix(schema);
        let distances: Vec<Vec<f64>> = sim
            .iter()
            .map(|row| row.iter().map(|s| 1.0 - s).collect())
            .collect();
        let clustering = weighted_k_center(&distances, &importance, k)?;
        let ranked = ranked_by_importance(&importance);
        let clusters = clustering.clusters();
        Some(Yps09Summary {
            centers: clustering.centers,
            clusters,
            importance,
            ranked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures::{self, types};

    #[test]
    fn ranked_tables_cover_every_type_once() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let ranked = Yps09Summarizer::new().ranked_tables(&g, s);
        assert_eq!(ranked.len(), s.type_count());
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), s.type_count());
    }

    #[test]
    fn summary_has_k_centers_and_full_assignment() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let summary = Yps09Summarizer::new().summarize(&g, s, 3).unwrap();
        assert_eq!(summary.centers.len(), 3);
        let total: usize = summary.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, s.type_count());
        // FILM, the most important table, is one of the centres.
        let film = s.type_by_name(types::FILM).unwrap();
        assert!(summary.centers.contains(&film));
    }

    #[test]
    fn summarize_rejects_degenerate_inputs() {
        use entity_graph::EntityGraphBuilder;
        let g = EntityGraphBuilder::new().build();
        let s = g.schema_graph();
        assert!(Yps09Summarizer::new().summarize(&g, s, 3).is_none());

        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        assert!(Yps09Summarizer::new().summarize(&g, s, 0).is_none());
    }

    #[test]
    fn custom_config_is_honoured() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let config = ImportanceConfig {
            restart: 0.5,
            ..ImportanceConfig::default()
        };
        let ranked = Yps09Summarizer::with_config(config).ranked_tables(&g, s);
        assert_eq!(ranked.len(), s.type_count());
    }
}
