//! YPS09 table importance: information content diffused over join strength.
//!
//! YPS09 defines the importance of a relational table by combining its
//! information content (entropy of its columns) with the strength of its join
//! relationships: importance "flows" along joins, and the stable distribution
//! of that flow ranks the tables. Our adaptation to entity graphs treats every
//! relationship type as a join between the two tables derived from its
//! endpoint types, with join strength proportional to the number of
//! participating edges.

use entity_graph::{SchemaGraph, TypeId};
use serde::{Deserialize, Serialize};

use crate::relational::RelationalView;

/// Parameters of the importance random walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImportanceConfig {
    /// Probability of restarting at a table chosen proportionally to its
    /// information content (keeps the walk well-defined on disconnected join
    /// graphs and biases importance towards information-rich tables).
    pub restart: f64,
    /// L1 convergence tolerance.
    pub tolerance: f64,
    /// Maximum number of power-iteration steps.
    pub max_iterations: usize,
}

impl Default for ImportanceConfig {
    fn default() -> Self {
        Self {
            restart: 0.15,
            tolerance: 1e-12,
            max_iterations: 10_000,
        }
    }
}

/// Computes the YPS09-style importance of every table (entity type).
///
/// The walk moves from table `R` to table `S` with probability proportional to
/// the join strength between them (number of entity-graph edges between the
/// two types), and restarts with probability `restart` at a table chosen
/// proportionally to information content. The returned vector is indexed by
/// [`TypeId`] and sums to 1 (unless the view is empty).
pub fn table_importance(
    view: &RelationalView,
    schema: &SchemaGraph,
    config: &ImportanceConfig,
) -> Vec<f64> {
    let n = schema.type_count();
    if n == 0 {
        return Vec::new();
    }

    // Restart distribution: information content, normalised. Falls back to
    // uniform when every table is empty.
    let ic: Vec<f64> = view
        .tables()
        .iter()
        .map(|t| t.information_content())
        .collect();
    let ic_total: f64 = ic.iter().sum();
    let restart_dist: Vec<f64> = if ic_total > 0.0 {
        ic.iter().map(|v| v / ic_total).collect()
    } else {
        vec![1.0 / n as f64; n]
    };

    // Join-strength transition matrix (row-stochastic; empty rows fall back to
    // the restart distribution).
    let mut weights = vec![vec![0.0f64; n]; n];
    for edge in schema.edges() {
        let (s, d) = (edge.src.index(), edge.dst.index());
        let w = edge.edge_count as f64;
        weights[s][d] += w;
        if s != d {
            weights[d][s] += w;
        }
    }

    let mut pi = restart_dist.clone();
    let mut next = vec![0.0f64; n];
    for _ in 0..config.max_iterations {
        for (j, v) in next.iter_mut().enumerate() {
            *v = config.restart * restart_dist[j];
        }
        for i in 0..n {
            let mass = (1.0 - config.restart) * pi[i];
            if mass == 0.0 {
                continue;
            }
            let row_sum: f64 = weights[i].iter().sum();
            if row_sum > 0.0 {
                for j in 0..n {
                    if weights[i][j] > 0.0 {
                        next[j] += mass * weights[i][j] / row_sum;
                    }
                }
            } else {
                for (j, v) in next.iter_mut().enumerate() {
                    *v += mass * restart_dist[j];
                }
            }
        }
        let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if diff < config.tolerance {
            break;
        }
    }
    pi
}

/// Ranks entity types by descending importance (ties broken by type id).
pub fn ranked_by_importance(importance: &[f64]) -> Vec<TypeId> {
    let mut order: Vec<TypeId> = (0..importance.len()).map(TypeId::from_usize).collect();
    order.sort_by(|a, b| {
        importance[b.index()]
            .partial_cmp(&importance[a.index()])
            .expect("importance must not be NaN")
            .then_with(|| a.cmp(b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures::{self, types};

    fn importance() -> (SchemaGraph, Vec<f64>) {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph().clone();
        let v = RelationalView::build(&g, &s);
        let imp = table_importance(&v, &s, &ImportanceConfig::default());
        (s, imp)
    }

    #[test]
    fn importance_is_a_distribution() {
        let (s, imp) = importance();
        assert_eq!(imp.len(), s.type_count());
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(imp.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn film_is_most_important_in_figure1() {
        let (s, imp) = importance();
        let ranked = ranked_by_importance(&imp);
        assert_eq!(s.type_name(ranked[0]), types::FILM);
    }

    #[test]
    fn ranked_covers_all_types() {
        let (s, imp) = importance();
        let ranked = ranked_by_importance(&imp);
        assert_eq!(ranked.len(), s.type_count());
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranked.len());
    }

    #[test]
    fn empty_graph_gives_empty_importance() {
        use entity_graph::EntityGraphBuilder;
        let g = EntityGraphBuilder::new().build();
        let s = g.schema_graph();
        let v = RelationalView::build(&g, s);
        assert!(table_importance(&v, s, &ImportanceConfig::default()).is_empty());
    }
}
