//! YPS09 baseline: *Summarizing Relational Databases* (Yang, Procopiuc,
//! Srivastava; VLDB 2009), adapted to entity graphs.
//!
//! The paper under reproduction compares its preview-table scoring against an
//! adaptation of YPS09 (Sec. 6.1.1): each entity type becomes a relational
//! table whose first column holds the entities of that type and whose other
//! columns hold the entities reachable through each incident relationship
//! type. YPS09 then
//!
//! 1. assigns every table an **importance** score combining its information
//!    content with the strength of its join relationships (a random walk over
//!    the join graph, [`importance`]),
//! 2. measures pairwise table **similarity** from the join structure
//!    ([`similarity`]), and
//! 3. clusters the tables with **weighted k-center** and reports the cluster
//!    centres as the database summary ([`kcenter`]).
//!
//! The ranked-by-importance table list is what Figs. 5–7 and Table 4 of the
//! paper use as the "YPS09" competitor for key-attribute ranking; the k-center
//! summary is the "YPS09" arm of the user study.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod importance;
pub mod kcenter;
pub mod relational;
pub mod similarity;
mod summary;

pub use importance::{table_importance, ImportanceConfig};
pub use kcenter::weighted_k_center;
pub use relational::{RelationalColumn, RelationalTable, RelationalView};
pub use similarity::{similarity_matrix, table_distance};
pub use summary::{Yps09Summarizer, Yps09Summary};
