//! Pearson correlation coefficient (Eq. 4 of the paper).

/// Computes the Pearson Correlation Coefficient between two equal-length
/// samples:
///
/// `PCC = (E[XY] − E[X]E[Y]) / (sqrt(E[X²] − E[X]²) · sqrt(E[Y²] − E[Y]²))`
///
/// Returns `None` if the slices have different lengths, are empty, or either
/// sample has zero variance (the coefficient is undefined in those cases).
///
/// The paper interprets PCC in `[0.5, 1.0]` as a strong, `[0.3, 0.5)` as a
/// medium and `[0.1, 0.3)` as a small positive correlation (Sec. 6.1.3).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.is_empty() {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Qualitative interpretation of a PCC value following Cohen (1988), as cited
/// by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationStrength {
    /// PCC in `[0.5, 1.0]`.
    Strong,
    /// PCC in `[0.3, 0.5)`.
    Medium,
    /// PCC in `[0.1, 0.3)`.
    Small,
    /// PCC in `(-0.1, 0.1)`.
    Negligible,
    /// PCC ≤ −0.1 (any negative correlation of at least small magnitude).
    Negative,
}

/// Classifies a PCC value into the paper's qualitative bands.
pub fn classify(pcc: f64) -> CorrelationStrength {
    if pcc >= 0.5 {
        CorrelationStrength::Strong
    } else if pcc >= 0.3 {
        CorrelationStrength::Medium
    } else if pcc >= 0.1 {
        CorrelationStrength::Small
    } else if pcc > -0.1 {
        CorrelationStrength::Negligible
    } else {
        CorrelationStrength::Negative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_and_scale_invariant() {
        let x = [1.0, 2.0, 3.0, 5.0, 8.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.5);
    }

    #[test]
    fn known_value() {
        // Hand-computed: x = [1,2,3], y = [1,2,4] -> r = cov / (sx*sy)
        // mean_x=2, mean_y=7/3; cov = (1)(4/3)*? compute directly:
        // dx = [-1,0,1], dy = [-4/3, -1/3, 5/3]; cov = 4/3 + 0 + 5/3 = 3
        // var_x = 2, var_y = 16/9 + 1/9 + 25/9 = 42/9
        // r = 3 / (sqrt(2) * sqrt(42/9)) = 3 / sqrt(84/9) = 3 / (sqrt(84)/3) = 9/sqrt(84)
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 4.0];
        let expected = 9.0 / 84f64.sqrt();
        assert!((pearson(&x, &y).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn classification_bands() {
        assert_eq!(classify(0.7), CorrelationStrength::Strong);
        assert_eq!(classify(0.5), CorrelationStrength::Strong);
        assert_eq!(classify(0.4), CorrelationStrength::Medium);
        assert_eq!(classify(0.2), CorrelationStrength::Small);
        assert_eq!(classify(0.0), CorrelationStrength::Negligible);
        assert_eq!(classify(-0.3), CorrelationStrength::Negative);
    }
}
