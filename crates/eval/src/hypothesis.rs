//! Two-proportion one-tailed z-tests (Sec. 6.3.1, Table 7 and Tables 13–16).
//!
//! The paper compares the conversion rates (fraction of existence-test
//! questions answered correctly) of pairs of approaches with a two-proportion
//! z-test at significance level `α = 0.1`, using a right-tailed test when the
//! observed difference is positive and a left-tailed test otherwise.

use serde::{Deserialize, Serialize};

/// Which tail of the normal distribution the p-value is computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tail {
    /// `Ha: pA > pB` — p-value is `P(Z ≥ z)`.
    Right,
    /// `Ha: pA < pB` — p-value is `P(Z ≤ z)`.
    Left,
}

/// Result of a two-proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZTestResult {
    /// The z statistic.
    pub z: f64,
    /// One-tailed p-value.
    pub p_value: f64,
    /// Which tail was used (chosen from the sign of the observed difference,
    /// as in the paper).
    pub tail: Tail,
}

impl ZTestResult {
    /// Whether the null hypothesis is rejected at the given significance
    /// level (the paper uses `α = 0.1`).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// Implemented via the complementary error function with the Abramowitz &
/// Stegun 7.1.26 polynomial approximation (absolute error < 1.5e-7), which is
/// ample for reproducing two-decimal p-values.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function approximation (Abramowitz & Stegun 7.1.26).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf_abs = 1.0 - poly * (-x_abs * x_abs).exp();
    let erf = if sign_negative { -erf_abs } else { erf_abs };
    1.0 - erf
}

/// Two-proportion one-tailed z-test comparing success probabilities of two
/// Bernoulli samples.
///
/// * `successes_a` / `n_a` — successes and sample size of approach A,
/// * `successes_b` / `n_b` — successes and sample size of approach B.
///
/// The z statistic uses the pooled proportion
/// `p = (xA + xB) / (nA + nB)` and standard error
/// `sqrt(p (1 − p) (1/nA + 1/nB))`.
///
/// Returns `None` if either sample is empty or the pooled proportion is 0 or 1
/// (zero standard error).
pub fn two_proportion_z_test(
    successes_a: u64,
    n_a: u64,
    successes_b: u64,
    n_b: u64,
) -> Option<ZTestResult> {
    if n_a == 0 || n_b == 0 || successes_a > n_a || successes_b > n_b {
        return None;
    }
    let pa = successes_a as f64 / n_a as f64;
    let pb = successes_b as f64 / n_b as f64;
    let pooled = (successes_a + successes_b) as f64 / (n_a + n_b) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / n_a as f64 + 1.0 / n_b as f64)).sqrt();
    if se == 0.0 {
        return None;
    }
    let z = (pa - pb) / se;
    let (tail, p_value) = if z >= 0.0 {
        (Tail::Right, 1.0 - standard_normal_cdf(z))
    } else {
        (Tail::Left, standard_normal_cdf(z))
    };
    Some(ZTestResult { z, p_value, tail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!((standard_normal_cdf(2.5758) - 0.995).abs() < 1e-3);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
        assert!(standard_normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn equal_proportions_give_z_zero() {
        let r = two_proportion_z_test(10, 20, 25, 50).unwrap();
        assert!(r.z.abs() < 1e-12);
        assert!((r.p_value - 0.5).abs() < 1e-7);
        assert!(!r.significant(0.1));
    }

    #[test]
    fn higher_first_proportion_gives_positive_z() {
        let r = two_proportion_z_test(45, 50, 30, 50).unwrap();
        assert!(r.z > 0.0);
        assert_eq!(r.tail, Tail::Right);
        assert!(r.significant(0.1));
    }

    #[test]
    fn lower_first_proportion_gives_negative_z() {
        let r = two_proportion_z_test(30, 50, 45, 50).unwrap();
        assert!(r.z < 0.0);
        assert_eq!(r.tail, Tail::Left);
        assert!(r.significant(0.1));
    }

    #[test]
    fn symmetric_in_sign() {
        let a = two_proportion_z_test(40, 52, 35, 48).unwrap();
        let b = two_proportion_z_test(35, 48, 40, 52).unwrap();
        assert!((a.z + b.z).abs() < 1e-12);
        assert!((a.p_value - b.p_value).abs() < 1e-9);
    }

    #[test]
    fn reproduces_paper_table7_magnitude() {
        // Table 5/7, domain "music": Tight (c=0.979, n=48) vs Diverse
        // (c=0.730, n=52) reports z = 3.48 (sign depends on orientation).
        // 0.979*48 = 47 successes; 0.730... of 52 -> the paper's 0.730 is
        // 38/52 = 0.7307.
        let r = two_proportion_z_test(47, 48, 38, 52).unwrap();
        assert!((r.z - 3.48).abs() < 0.15, "z = {}", r.z);
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(two_proportion_z_test(0, 0, 1, 2).is_none());
        assert!(two_proportion_z_test(1, 2, 0, 0).is_none());
        // successes > n
        assert!(two_proportion_z_test(3, 2, 1, 2).is_none());
        // pooled proportion 0 or 1 -> zero standard error.
        assert!(two_proportion_z_test(0, 10, 0, 10).is_none());
        assert!(two_proportion_z_test(10, 10, 10, 10).is_none());
    }
}
