//! Likert-scale questionnaire aggregation (Tables 8, 9 and 17–21).
//!
//! The paper's user-experience questionnaire (Table 8) uses a 1–5 Likert
//! scale; per-approach scores are the average over all participants using that
//! approach, and Table 9 ranks approaches by the average across domains.

use serde::{Deserialize, Serialize};

/// A 1–5 Likert scale response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LikertScale {
    /// Least favourable experience (score 1).
    StronglyNegative,
    /// Score 2.
    Negative,
    /// Score 3.
    Neutral,
    /// Score 4.
    Positive,
    /// Most favourable experience (score 5).
    StronglyPositive,
}

impl LikertScale {
    /// Numeric score in `1..=5`.
    pub fn score(self) -> u8 {
        match self {
            LikertScale::StronglyNegative => 1,
            LikertScale::Negative => 2,
            LikertScale::Neutral => 3,
            LikertScale::Positive => 4,
            LikertScale::StronglyPositive => 5,
        }
    }

    /// Builds a response from a numeric score.
    ///
    /// Returns `None` if the score is outside `1..=5`.
    pub fn from_score(score: u8) -> Option<Self> {
        match score {
            1 => Some(LikertScale::StronglyNegative),
            2 => Some(LikertScale::Negative),
            3 => Some(LikertScale::Neutral),
            4 => Some(LikertScale::Positive),
            5 => Some(LikertScale::StronglyPositive),
            _ => None,
        }
    }
}

/// Average numeric score of a set of responses; `None` for an empty set.
pub fn average_score(responses: &[LikertScale]) -> Option<f64> {
    if responses.is_empty() {
        return None;
    }
    let sum: u32 = responses.iter().map(|r| u32::from(r.score())).sum();
    Some(f64::from(sum) / responses.len() as f64)
}

/// Distribution of responses over the five scale points, as counts indexed by
/// `score − 1`.
pub fn distribution(responses: &[LikertScale]) -> [usize; 5] {
    let mut counts = [0usize; 5];
    for r in responses {
        counts[usize::from(r.score()) - 1] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_roundtrip() {
        for s in 1..=5u8 {
            assert_eq!(LikertScale::from_score(s).unwrap().score(), s);
        }
        assert!(LikertScale::from_score(0).is_none());
        assert!(LikertScale::from_score(6).is_none());
    }

    #[test]
    fn ordering_follows_score() {
        assert!(LikertScale::Negative < LikertScale::Positive);
        assert!(LikertScale::StronglyNegative < LikertScale::StronglyPositive);
    }

    #[test]
    fn average_matches_hand_computation() {
        let responses = [
            LikertScale::Positive,
            LikertScale::Positive,
            LikertScale::Neutral,
            LikertScale::StronglyPositive,
        ];
        assert!((average_score(&responses).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(average_score(&[]), None);
    }

    #[test]
    fn distribution_counts() {
        let responses = [
            LikertScale::Neutral,
            LikertScale::Neutral,
            LikertScale::StronglyPositive,
        ];
        assert_eq!(distribution(&responses), [0, 0, 2, 0, 1]);
    }
}
