//! Ranking-accuracy metrics: P@K, Average Precision, nDCG and MRR.
//!
//! These are the measures the paper uses to compare ranked lists of candidate
//! key/non-key attributes against the Freebase gold standard (Sec. 6.1.2,
//! Figs. 5–7, Table 3, Tables 22–23). All functions are generic over the item
//! type; relevance is expressed as a set of gold-standard items.

use std::collections::HashSet;
use std::hash::Hash;

/// Precision-at-K: the fraction of the top-`k` ranked items that appear in the
/// gold standard.
///
/// If the ranking has fewer than `k` items, the available prefix is used but
/// the denominator stays `k` (missing items count as misses), matching the
/// paper's "Optimal P@K" curves which cap at `|gold| / k`.
///
/// Returns `0.0` when `k == 0`.
pub fn precision_at_k<T: Eq + Hash>(ranked: &[T], gold: &HashSet<T>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|item| gold.contains(item))
        .count();
    hits as f64 / k as f64
}

/// Average Precision of the top-`k` results, as defined in Sec. 6.1.2:
///
/// `AvgP = ( Σ_{i=1..k} P@i × rel_i ) / |gold|`
///
/// where `rel_i` is 1 if the item at rank `i` is in the gold standard.
/// Returns `0.0` if the gold standard is empty.
pub fn average_precision<T: Eq + Hash>(ranked: &[T], gold: &HashSet<T>, k: usize) -> f64 {
    if gold.is_empty() || k == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, item) in ranked.iter().take(k).enumerate() {
        if gold.contains(item) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / gold.len() as f64
}

/// Normalised Discounted Cumulative Gain of the top-`k` results with binary
/// relevance, as defined in Sec. 6.1.2:
///
/// `DCG_k = rel_1 + Σ_{i=2..k} rel_i / log2(i)` and `nDCG_k = DCG_k / IDCG_k`,
/// where `IDCG_k` is the DCG of an ideal ranking placing all gold items first.
///
/// Returns `0.0` if the gold standard is empty or `k == 0`.
pub fn ndcg_at_k<T: Eq + Hash>(ranked: &[T], gold: &HashSet<T>, k: usize) -> f64 {
    if gold.is_empty() || k == 0 {
        return 0.0;
    }
    let gain = |rank: usize| -> f64 {
        // rank is 1-based.
        if rank == 1 {
            1.0
        } else {
            1.0 / (rank as f64).log2()
        }
    };
    let mut dcg = 0.0;
    for (i, item) in ranked.iter().take(k).enumerate() {
        if gold.contains(item) {
            dcg += gain(i + 1);
        }
    }
    let ideal_hits = gold.len().min(k);
    let idcg: f64 = (1..=ideal_hits).map(gain).sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Reciprocal rank: `1 / rank` of the first gold-standard item in the ranking,
/// or `0.0` if none appears.
pub fn reciprocal_rank<T: Eq + Hash>(ranked: &[T], gold: &HashSet<T>) -> f64 {
    for (i, item) in ranked.iter().enumerate() {
        if gold.contains(item) {
            return 1.0 / (i + 1) as f64;
        }
    }
    0.0
}

/// Mean Reciprocal Rank over a collection of `(ranking, gold)` pairs
/// (Table 3 averages the reciprocal rank across entity types).
///
/// Returns `0.0` for an empty collection.
pub fn mean_reciprocal_rank<T: Eq + Hash>(cases: &[(Vec<T>, HashSet<T>)]) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    let sum: f64 = cases
        .iter()
        .map(|(ranked, gold)| reciprocal_rank(ranked, gold))
        .sum();
    sum / cases.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gold(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn ranked(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn precision_at_k_basic() {
        let g = gold(&["a", "b", "c"]);
        let r = ranked(&["a", "x", "b", "y", "c"]);
        assert_eq!(precision_at_k(&r, &g, 1), 1.0);
        assert_eq!(precision_at_k(&r, &g, 2), 0.5);
        assert!((precision_at_k(&r, &g, 5) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k_caps_at_gold_size() {
        // Paper: "P@10 can be at most 0.6, since there are only 6 gold standard
        // key attributes" — with a perfect ranking of 6 golds, P@10 = 0.6.
        let g = gold(&["a", "b", "c", "d", "e", "f"]);
        let r = ranked(&["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]);
        assert!((precision_at_k(&r, &g, 10) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn precision_with_short_ranking() {
        let g = gold(&["a"]);
        let r = ranked(&["a"]);
        assert_eq!(precision_at_k(&r, &g, 4), 0.25);
        assert_eq!(precision_at_k(&r, &g, 0), 0.0);
    }

    #[test]
    fn average_precision_perfect_ranking_is_one() {
        let g = gold(&["a", "b"]);
        let r = ranked(&["a", "b", "x"]);
        assert!((average_precision(&r, &g, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_penalises_late_hits() {
        let g = gold(&["a", "b"]);
        let early = ranked(&["a", "b", "x", "y"]);
        let late = ranked(&["x", "y", "a", "b"]);
        assert!(average_precision(&early, &g, 4) > average_precision(&late, &g, 4));
        // late: hits at ranks 3 (P=1/3) and 4 (P=2/4) -> (1/3 + 1/2)/2.
        assert!((average_precision(&late, &g, 4) - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_empty_gold_is_zero() {
        let g: HashSet<String> = HashSet::new();
        assert_eq!(average_precision(&ranked(&["a"]), &g, 3), 0.0);
    }

    #[test]
    fn ndcg_perfect_is_one_and_order_matters() {
        let g = gold(&["a", "b"]);
        let perfect = ranked(&["a", "b", "x"]);
        let worse = ranked(&["a", "x", "b"]);
        assert!((ndcg_at_k(&perfect, &g, 3) - 1.0).abs() < 1e-12);
        let w = ndcg_at_k(&worse, &g, 3);
        assert!(w < 1.0 && w > 0.0);
    }

    #[test]
    fn ndcg_matches_hand_computation() {
        // gold = {a}, ranking = [x, a]: DCG = 1/log2(2) = 1, IDCG = 1 -> 1.0? No:
        // rank-2 gain = 1/log2(2) = 1.0, so nDCG = 1.0 only because log2(2)=1.
        // Use rank 3 instead: ranking = [x, y, a]: DCG = 1/log2(3), IDCG = 1.
        let g = gold(&["a"]);
        let r = ranked(&["x", "y", "a"]);
        let expected = 1.0 / 3f64.log2();
        assert!((ndcg_at_k(&r, &g, 3) - expected).abs() < 1e-12);
    }

    #[test]
    fn ndcg_zero_when_no_hits() {
        let g = gold(&["a"]);
        let r = ranked(&["x", "y"]);
        assert_eq!(ndcg_at_k(&r, &g, 2), 0.0);
    }

    #[test]
    fn reciprocal_rank_basic() {
        let g = gold(&["b"]);
        assert_eq!(reciprocal_rank(&ranked(&["b", "a"]), &g), 1.0);
        assert_eq!(reciprocal_rank(&ranked(&["a", "b"]), &g), 0.5);
        assert_eq!(reciprocal_rank(&ranked(&["a", "c"]), &g), 0.0);
    }

    #[test]
    fn mrr_averages_cases() {
        let cases = vec![
            (ranked(&["a", "b"]), gold(&["a"])), // RR = 1
            (ranked(&["x", "a"]), gold(&["a"])), // RR = 0.5
        ];
        assert!((mean_reciprocal_rank(&cases) - 0.75).abs() < 1e-12);
        let empty: Vec<(Vec<String>, HashSet<String>)> = vec![];
        assert_eq!(mean_reciprocal_rank(&empty), 0.0);
    }
}
