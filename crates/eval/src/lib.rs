//! Evaluation toolkit used to regenerate the paper's tables and figures.
//!
//! * [`ranking`] — Precision-at-K, Average Precision, nDCG and Mean Reciprocal
//!   Rank (Sec. 6.1.2 of the paper; Figs. 5–7 and Table 3).
//! * [`correlation`] — Pearson Correlation Coefficient (Table 4).
//! * [`hypothesis`] — two-proportion one-tailed z-tests (Table 7 and
//!   Tables 13–16).
//! * [`descriptive`] — means, medians, quartiles and five-number summaries
//!   (Table 6 and the box plots of Figs. 10–14).
//! * [`likert`] — aggregation of Likert-scale questionnaire responses
//!   (Tables 8, 9 and 17–21).
//!
//! Everything here is plain `f64` numerics over slices; the crate has no
//! dependency on the graph or preview machinery so it can be reused for any
//! ranking/user-study style evaluation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod correlation;
pub mod descriptive;
pub mod hypothesis;
pub mod likert;
pub mod ranking;

pub use correlation::pearson;
pub use descriptive::{five_number_summary, mean, median, FiveNumberSummary};
pub use hypothesis::{two_proportion_z_test, Tail, ZTestResult};
pub use likert::{average_score, LikertScale};
pub use ranking::{
    average_precision, mean_reciprocal_rank, ndcg_at_k, precision_at_k, reciprocal_rank,
};
