//! Descriptive statistics: means, medians, quartiles and box-plot summaries.
//!
//! Used to reproduce Table 6 (approaches sorted by median existence-test time)
//! and the box plots of Figs. 10–14.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty sample.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample median (average of the two middle elements for even sizes);
/// `None` for an empty sample.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Linear-interpolation percentile (the common "type 7" / numpy default
/// definition); `p` is in `[0, 100]`. `None` for an empty sample or `p`
/// outside the range.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Sample standard deviation (with Bessel's correction); `None` when the
/// sample has fewer than two elements.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// The five numbers of a box plot: minimum, lower quartile, median, upper
/// quartile, maximum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumberSummary {
    /// Smallest observation.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

impl FiveNumberSummary {
    /// Inter-quartile range `q3 − q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Computes the five-number summary of a sample; `None` for an empty sample.
pub fn five_number_summary(values: &[f64]) -> Option<FiveNumberSummary> {
    if values.is_empty() {
        return None;
    }
    Some(FiveNumberSummary {
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        q1: percentile(values, 25.0)?,
        median: percentile(values, 50.0)?,
        q3: percentile(values, 75.0)?,
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
        assert_eq!(percentile(&v, 25.0), Some(17.5));
        assert_eq!(percentile(&v, 101.0), None);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn std_dev_known_value() {
        // Sample std-dev of [2, 4, 4, 4, 5, 5, 7, 9] with Bessel = sqrt(32/7).
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let expected = (32.0f64 / 7.0).sqrt();
        assert!((std_dev(&v).unwrap() - expected).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn five_number_summary_basic() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = five_number_summary(&v).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.iqr(), 2.0);
        assert!(five_number_summary(&[]).is_none());
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = [5.0, 3.0, 1.0, 4.0, 2.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(five_number_summary(&a), five_number_summary(&b));
    }
}
