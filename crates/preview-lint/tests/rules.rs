//! Per-rule fixture suite: every rule must fire on its `firing*.rs`
//! fixtures and stay silent (no unsuppressed findings) on its `clean*.rs`
//! fixtures.
//!
//! Fixtures live under `tests/fixtures/<rule-id>/` and start with a
//! `//@ path: <virtual workspace path>` directive: rules scope themselves
//! by crate and file class, so the lint sees each fixture at the path the
//! directive claims, not where the fixture file actually sits.

use std::fs;
use std::path::{Path, PathBuf};

use preview_lint::{analyze, Report, SourceFile};

/// Every rule with a fixture directory, kept in sync with `all_rules()`.
const RULES: &[&str] = &[
    "hash-iter-float-sink",
    "wall-clock",
    "ambient-randomness",
    "atomic-ordering-annotation",
    "lock-order-cycle",
    "trace-in-fjpool-closure",
    "request-path-unwrap",
    "forbid-unsafe",
    "deny-missing-docs",
    "no-println",
];

fn fixture_dir(rule: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
}

/// Loads one fixture, honouring its `//@ path:` directive, and analyses
/// it in isolation.
fn analyze_fixture(path: &Path) -> Report {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let (first, rest) = text
        .split_once('\n')
        .unwrap_or_else(|| panic!("{path:?} is empty"));
    let virtual_path = first
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{path:?} must start with a `//@ path:` directive"))
        .trim()
        .to_string();
    // Replace the directive with a blank line so fixture line numbers
    // stay 1:1 with what the analyzer reports.
    analyze(vec![SourceFile::new(virtual_path, format!("\n{rest}"))])
}

fn fixtures_matching(rule: &str, prefix: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(fixture_dir(rule))
        .unwrap_or_else(|e| panic!("fixture dir for `{rule}` missing: {e}"))
        .map(|entry| entry.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".rs"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn every_rule_has_firing_and_clean_fixtures() {
    for rule in RULES {
        assert!(
            !fixtures_matching(rule, "firing").is_empty(),
            "rule `{rule}` has no firing fixture"
        );
        assert!(
            !fixtures_matching(rule, "clean").is_empty(),
            "rule `{rule}` has no clean fixture"
        );
    }
}

#[test]
fn firing_fixtures_fire() {
    for rule in RULES {
        for fixture in fixtures_matching(rule, "firing") {
            let report = analyze_fixture(&fixture);
            let hits: Vec<_> = report.unsuppressed().filter(|f| f.rule == *rule).collect();
            assert!(
                !hits.is_empty(),
                "expected `{rule}` to fire on {fixture:?}, found: {:?}",
                report.unsuppressed().map(|f| f.rule).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn clean_fixtures_stay_silent() {
    for rule in RULES {
        for fixture in fixtures_matching(rule, "clean") {
            let report = analyze_fixture(&fixture);
            let hits: Vec<_> = report
                .unsuppressed()
                .filter(|f| f.rule == *rule)
                .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
                .collect();
            assert!(
                hits.is_empty(),
                "`{rule}` fired on clean fixture {fixture:?}: {hits:?}"
            );
        }
    }
}

/// Findings carry an exact file:line:col plus the offending source line.
#[test]
fn findings_have_accurate_spans() {
    let fixture = fixture_dir("no-println").join("firing.rs");
    let report = analyze_fixture(&fixture);
    let finding = report
        .unsuppressed()
        .find(|f| f.rule == "no-println")
        .expect("no-println fires on its firing fixture");
    assert_eq!(finding.path, "crates/entity-graph/src/loader.rs");
    assert_eq!(finding.line, 8);
    assert!(finding.col >= 1);
    assert!(
        finding.snippet.contains("println!"),
        "snippet should show the offending line: {:?}",
        finding.snippet
    );
}

/// A suppression comment turns a finding into a suppressed (non-failing)
/// one, and an unmatched suppression is inventoried as unused.
#[test]
fn suppressions_resolve_and_unused_ones_are_reported() {
    let suppressed = analyze(vec![SourceFile::new(
        "crates/entity-graph/src/x.rs".to_string(),
        "/// Doc.\npub fn f() {\n    // lint: allow(no-println, deliberate diagnostic)\n    println!(\"hi\");\n}\n"
            .to_string(),
    )]);
    assert!(suppressed.clean(), "suppressed finding must not fail");
    let finding = suppressed
        .of_rule("no-println")
        .next()
        .expect("finding still recorded");
    assert_eq!(finding.suppressed.as_deref(), Some("deliberate diagnostic"));

    let unused = analyze(vec![SourceFile::new(
        "crates/entity-graph/src/x.rs".to_string(),
        "/// Doc.\npub fn f() {\n    // lint: allow(no-println, nothing here needs it)\n    let _x = 1;\n}\n"
            .to_string(),
    )]);
    assert_eq!(unused.unused_suppressions.len(), 1);
    assert_eq!(unused.unused_suppressions[0].rule, "no-println");
}
