//! The lint's own acceptance gate as a test: the live workspace must be
//! clean — every finding either fixed or carrying an in-source reason —
//! and every suppression must be load-bearing.

use std::path::Path;

use preview_lint::analyze_workspace;

fn workspace_root() -> &'static Path {
    // crates/preview-lint -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn live_workspace_is_clean() {
    let report = analyze_workspace(workspace_root()).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    let remaining: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("{}: {}:{}:{} {}", f.rule, f.path, f.line, f.col, f.message))
        .collect();
    assert!(
        remaining.is_empty(),
        "workspace has unsuppressed lint findings:\n{}",
        remaining.join("\n")
    );
}

#[test]
fn live_workspace_has_no_unused_suppressions() {
    let report = analyze_workspace(workspace_root()).expect("scan workspace");
    let unused: Vec<String> = report
        .unused_suppressions
        .iter()
        .map(|u| format!("{}:{} allow({})", u.path, u.line, u.rule))
        .collect();
    assert!(
        unused.is_empty(),
        "stale lint suppressions (remove them):\n{}",
        unused.join("\n")
    );
}

#[test]
fn all_ten_rules_are_registered() {
    let report = analyze_workspace(workspace_root()).expect("scan workspace");
    assert!(
        report.rules.len() >= 8,
        "expected at least 8 rules, found {}",
        report.rules.len()
    );
    // The report's JSON must parse-ably serialise even on the full tree.
    let json = report.to_json();
    assert!(json.contains("\"rules\""));
    assert!(json.contains("\"findings\""));
}
