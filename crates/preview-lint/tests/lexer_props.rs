//! Property tests for the lexer: tokens must tile the input exactly
//! (contiguous, in order, covering every byte), so re-rendering the token
//! stream reproduces the source byte-for-byte — on arbitrary inputs, not
//! just on Rust that parses.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use preview_lint::lexer::lex;

/// Concatenating every token's text must rebuild the input exactly.
fn assert_round_trip(src: &str) {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for t in &tokens {
        assert_eq!(t.start, cursor, "gap or overlap before {t:?} in {src:?}");
        assert!(t.end >= t.start, "negative span in {src:?}");
        rebuilt.push_str(t.text(src));
        cursor = t.end;
    }
    assert_eq!(cursor, src.len(), "tokens do not cover {src:?}");
    assert_eq!(rebuilt, src);
}

/// Snippets of the constructs the lexer special-cases; the generators
/// splice them so raw strings, nested comments and lifetimes collide in
/// unplanned ways.
const SNIPPETS: &[&str] = &[
    "fn main() {}",
    "r#\"raw \" string\"#",
    "r\"plain raw\"",
    "br#\"byte raw\"#",
    "b\"bytes\\\"\"",
    "b'x'",
    "/* nested /* block */ comment */",
    "// line comment\n",
    "'a",
    "'a'",
    "'\\n'",
    "\"str with \\\" escape\"",
    "0..n",
    "1.5e-3",
    "0x_ff",
    "ident_1",
    "::",
    "=>",
    "#![deny(missing_docs)]",
    "// lint: ordering-ok(reason)\n",
    "\t \n",
    "…", // multi-byte
    "'",
    "\"unterminated",
    "r#\"unterminated raw",
    "/* unterminated block",
];

/// Characters for the "arbitrary soup" generator: ASCII printables plus
/// the lexer's hot bytes and a couple of multi-byte code points.
const SOUP: &[char] = &[
    'a', 'Z', '_', '0', '9', ' ', '\n', '\t', '\'', '"', '#', 'r', 'b', '/', '*', '\\', '.', ':',
    '!', '(', ')', '{', '}', '[', ']', '<', '>', ',', ';', '=', '-', '…', 'é',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random splices of tricky snippets round-trip.
    #[test]
    fn spliced_snippets_round_trip(seed in 0u64..1_000_000, len in 0usize..12) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut src = String::new();
        for _ in 0..len {
            let idx = rng.gen_range(0..SNIPPETS.len());
            src.push_str(SNIPPETS[idx]);
        }
        assert_round_trip(&src);
    }

    /// Character soup leans on the punctuation, literal and comment
    /// paths with inputs that mostly do not parse as Rust: the lexer
    /// must neither panic nor drop a byte.
    #[test]
    fn character_soup_round_trips(seed in 0u64..1_000_000, len in 0usize..80) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut src = String::new();
        for _ in 0..len {
            let idx = rng.gen_range(0..SOUP.len());
            src.push(SOUP[idx]);
        }
        assert_round_trip(&src);
    }
}

/// Significant-token spans must be non-empty and lie inside the source.
#[test]
fn significant_tokens_have_sane_spans() {
    let src = "fn f<'a>(x: &'a str) -> u32 { x.len() as u32 /* c */ }";
    for t in lex(src) {
        assert!(t.end <= src.len());
        if t.kind.is_significant() {
            assert!(t.end > t.start, "empty significant token {t:?}");
        }
    }
}
