//@ path: crates/preview-core/src/lib.rs
//! Fixture: missing docs are denied at the definition site.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Documented, as the attribute demands.
pub fn noop() {}
