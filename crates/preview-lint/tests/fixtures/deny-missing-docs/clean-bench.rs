//@ path: crates/bench/src/lib.rs
//! Fixture: the bench crate is exempt from the missing-docs mandate.

#![forbid(unsafe_code)]

pub fn run() {}
