//@ path: crates/preview-core/src/lib.rs
//! Fixture: a crate root that only warns on missing docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Warnings scroll past; the rustdoc gate fails late instead of at the
/// definition site.
pub fn noop() {}
