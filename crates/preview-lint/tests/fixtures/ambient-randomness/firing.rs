//@ path: crates/datagen/src/jitter.rs
//! Fixture: ambient entropy sources that cannot be replayed.

/// Draws from the thread-local RNG: every run generates a different
/// graph, so goldens and A/B comparisons are meaningless.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}

/// `rand::random` is the same ambient source in free-function clothing.
pub fn coin_flip() -> bool {
    rand::random()
}
