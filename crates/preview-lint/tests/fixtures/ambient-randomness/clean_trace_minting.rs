//@ path: crates/preview-service/src/engine.rs
//! Fixture: trace-id minting from the ingress sequence number. Trace
//! identity is a pure function of arrival order — deterministic,
//! replayable, and invisible to the ambient-randomness rule.

use std::sync::atomic::{AtomicU64, Ordering};

/// A request-scoped trace identifier (zero is reserved for "no trace").
pub struct TraceId(u64);

impl TraceId {
    /// Derives the id for the `seq`-th accepted request.
    pub fn from_seq(seq: u64) -> TraceId {
        TraceId(seq.wrapping_add(1).max(1))
    }
}

/// Ingress counter: each submission takes the next sequence number.
pub struct Ingress {
    seq: AtomicU64,
}

impl Ingress {
    /// Mints the next trace id — no entropy source anywhere in the path.
    pub fn mint(&self) -> TraceId {
        // lint: ordering-ok(monotonic id mint; only uniqueness matters, not ordering with other state)
        TraceId::from_seq(self.seq.fetch_add(1, Ordering::Relaxed))
    }
}
