//@ path: crates/datagen/src/jitter.rs
//! Fixture: explicitly seeded randomness is replayable and allowed.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// All randomness flows from a caller-supplied seed.
pub fn jitter(seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rand::Rng::gen(&mut rng)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_ambient_entropy() {
        // Exploratory tests are allowed to draw real entropy.
        let _flip: bool = rand::random();
    }
}
