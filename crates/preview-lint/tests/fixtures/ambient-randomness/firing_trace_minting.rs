//@ path: crates/preview-service/src/engine.rs
//! Fixture: trace ids drawn from the thread-local RNG. Random ids look
//! harmless but break replay — the same request sequence yields different
//! trace identities every run, so retained trees, exemplars, and goldens
//! cannot be compared across runs.

/// A request-scoped trace identifier.
pub struct TraceId(u64);

/// Mints a "unique" id from ambient entropy — unreplayable.
pub fn mint() -> TraceId {
    let mut rng = rand::thread_rng();
    TraceId(rand::Rng::gen(&mut rng))
}
