//@ path: crates/preview-core/src/lib.rs
//! Fixture: the hygienic crate root.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Unsafe code is a compile error anywhere in this crate.
pub fn noop() {}
