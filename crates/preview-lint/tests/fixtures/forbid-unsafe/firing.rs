//@ path: crates/preview-core/src/lib.rs
//! Fixture: a crate root without the unsafe-code hygiene attribute.

#![deny(missing_docs)]

/// Nothing unsafe here yet — but nothing stops it arriving either.
pub fn noop() {}
