//@ path: crates/preview-core/src/algo/budget.rs
//! Fixture: wall-clock reads inside an engine crate.

use std::time::Instant;

/// Times a search phase with the wall clock: results now depend on how
/// fast the machine is, which breaks run-to-run determinism.
pub fn search_with_deadline(limit_ms: u64) -> u64 {
    let start = Instant::now();
    let mut nodes = 0u64;
    while start.elapsed().as_millis() < u128::from(limit_ms) {
        nodes += 1;
    }
    nodes
}
