//@ path: crates/preview-core/src/algo/budget.rs
//! Fixture: a legitimate anytime-budget clock, annotated with its reason.

use std::time::Instant;

/// Anytime mode trades determinism for a deadline on purpose; the
/// annotation records that decision where a reviewer will see it.
pub fn search_with_deadline(limit_ms: u64) -> u64 {
    // lint: allow(wall-clock, anytime mode deliberately trades determinism for a caller deadline)
    let start = Instant::now();
    let mut nodes = 0u64;
    while start.elapsed().as_millis() < u128::from(limit_ms) {
        nodes += 1;
    }
    nodes
}
