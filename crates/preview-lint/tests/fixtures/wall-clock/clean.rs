//@ path: crates/preview-obs/src/timing.rs
//! Fixture: the observability crate owns the wall clock — exempt.

use std::time::Instant;

/// Latency measurement belongs in preview-obs; `Instant` is fine here.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_micros())
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_things_anywhere() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
