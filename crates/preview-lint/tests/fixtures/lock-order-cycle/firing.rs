//@ path: crates/preview-obs/src/ledger.rs
//! Fixture: two paths acquire the same pair of locks in opposite orders.

use std::sync::Mutex;

/// Two independent ledgers guarded by separate locks.
pub struct Ledger {
    accounts: Mutex<Vec<u64>>,
    journal: Mutex<Vec<String>>,
}

impl Ledger {
    /// Acquires `accounts` then `journal`.
    pub fn post(&self) {
        let accounts = self.accounts.lock();
        let journal = self.journal.lock();
        drop((accounts, journal));
    }

    /// Acquires `journal` then `accounts` — the reverse order: with
    /// `post` running concurrently this can deadlock.
    pub fn audit(&self) {
        let journal = self.journal.lock();
        let accounts = self.accounts.lock();
        drop((journal, accounts));
    }
}
