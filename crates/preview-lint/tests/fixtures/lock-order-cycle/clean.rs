//@ path: crates/preview-obs/src/ledger.rs
//! Fixture: both paths honour one global acquisition order — no cycle.

use std::sync::Mutex;

/// Two independent ledgers guarded by separate locks.
pub struct Ledger {
    accounts: Mutex<Vec<u64>>,
    journal: Mutex<Vec<String>>,
}

impl Ledger {
    /// Acquires `accounts` then `journal`.
    pub fn post(&self) {
        let accounts = self.accounts.lock();
        let journal = self.journal.lock();
        drop((accounts, journal));
    }

    /// Same order as `post`: `accounts` strictly before `journal`.
    pub fn audit(&self) {
        let accounts = self.accounts.lock();
        let journal = self.journal.lock();
        drop((accounts, journal));
    }
}
