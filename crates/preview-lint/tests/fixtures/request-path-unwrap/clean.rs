//@ path: crates/preview-service/src/dispatch.rs
//! Fixture: the serving path degrades instead of aborting.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// Recovers from lock poison and reports missing handlers as errors.
pub fn dispatch(handlers: &Mutex<HashMap<u32, String>>, id: u32) -> Result<String, String> {
    let map = handlers.lock().unwrap_or_else(PoisonError::into_inner);
    map.get(&id)
        .cloned()
        .ok_or_else(|| format!("no handler registered for {id}"))
}

/// A genuinely unreachable case carries its invariant as an annotation.
pub fn capacity_label(capacity: usize) -> String {
    let capacity = capacity.max(1);
    // lint: allow(request-path-unwrap, capacity is clamped to >= 1 on the previous line)
    let last = (0..capacity).last().expect("range is non-empty");
    format!("slots: {last}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap() {
        let handlers = Mutex::new(HashMap::new());
        assert!(dispatch(&handlers, 1).is_err());
        let _ = handlers.lock().unwrap();
    }
}
