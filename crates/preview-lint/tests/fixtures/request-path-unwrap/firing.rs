//@ path: crates/preview-service/src/dispatch.rs
//! Fixture: panics on the serving path.

use std::collections::HashMap;
use std::sync::Mutex;

/// Looks up a handler, aborting the worker on a missing entry and
/// poisoning the shared lock for everyone else.
pub fn dispatch(handlers: &Mutex<HashMap<u32, String>>, id: u32) -> String {
    let map = handlers.lock().unwrap();
    match map.get(&id) {
        Some(h) => h.clone(),
        None => panic!("no handler registered for {id}"),
    }
}

/// `expect` is the same abort with a nicer epitaph.
pub fn first(items: &[u64]) -> u64 {
    *items.first().expect("at least one item")
}
