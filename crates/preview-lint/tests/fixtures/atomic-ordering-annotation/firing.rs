//@ path: crates/preview-obs/src/counters.rs
//! Fixture: memory-ordering sites without a reviewer-facing reason.

use std::sync::atomic::{AtomicU64, Ordering};

/// A counter whose orderings carry no justification — exactly the shape
/// that rots into cargo-culted `Relaxed`.
pub struct HitCounter {
    hits: AtomicU64,
}

impl HitCounter {
    /// Records one hit.
    pub fn record(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current count.
    pub fn get(&self) -> u64 {
        self.hits.load(Ordering::Acquire)
    }
}
