//@ path: crates/preview-obs/src/counters.rs
//! Fixture: every ordering site carries an `ordering-ok(<reason>)`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A counter whose orderings are justified at each site.
pub struct HitCounter {
    hits: AtomicU64,
}

impl HitCounter {
    /// Records one hit.
    pub fn record(&self) {
        // lint: ordering-ok(independent monotonic counter; readers tolerate skew)
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current count.
    pub fn get(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // lint: ordering-ok(statistical read; no ordering with other state needed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let c = HitCounter {
            hits: AtomicU64::new(0),
        };
        c.hits.store(3, Ordering::SeqCst);
        assert_eq!(c.get(), 3);
    }
}
