//@ path: crates/preview-core/src/scoring/batch.rs
//! Fixture: tracing wraps the pool call at the orchestration level.

/// One span around the whole parallel region; the worker closure stays
/// trace-free.
pub fn score_all(pool: &FjPool, items: &[u64]) -> Vec<u64> {
    let _guard = preview_obs::span!(Stage::Scoring);
    pool.map(items, |x| x * 2)
}

/// A non-pool receiver may trace inside `.map(..)` freely: iterator map
/// closures run on the calling thread.
pub fn annotate(items: &[u64]) -> Vec<u64> {
    items
        .iter()
        .map(|x| {
            let _guard = preview_obs::span!(Stage::Scoring);
            x * 2
        })
        .collect()
}
