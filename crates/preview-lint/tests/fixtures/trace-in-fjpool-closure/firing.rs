//@ path: crates/preview-core/src/scoring/batch.rs
//! Fixture: tracing from inside fork-join worker closures.

/// Scores every item on the pool, opening a span per work item: the span
/// takes the recorder lock, serialising the very workers the pool exists
/// to parallelise.
pub fn score_all(pool: &FjPool, items: &[u64]) -> Vec<u64> {
    pool.map(items, |x| {
        let _guard = preview_obs::span!(Stage::Scoring);
        x * 2
    })
}

/// The chunked variant has the same bug via a counter.
pub fn score_chunked(pool: &FjPool, items: &[u64]) -> Vec<u64> {
    pool.map_chunked(items, 64, |x| {
        recorder.counter_add(Counter::Scored, 1);
        x + 1
    })
}
