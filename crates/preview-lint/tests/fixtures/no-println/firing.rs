//@ path: crates/entity-graph/src/loader.rs
//! Fixture: console output from library code.

/// Reports progress straight to stdout — invisible to the observability
/// layer and garbage for any caller that owns the terminal.
pub fn load(paths: &[String]) -> usize {
    for p in paths {
        println!("loading {p}");
    }
    eprintln!("loaded {} files", paths.len());
    paths.len()
}
