//@ path: crates/entity-graph/src/loader.rs
//! Fixture: a deliberate stderr diagnostic carries its reason.

/// A last-resort diagnostic, annotated at the site.
pub fn warn_corrupt(path: &str) {
    // lint: allow(no-println, corruption diagnostic must reach stderr even if the recorder is down)
    eprintln!("corrupt input skipped: {path}");
}
