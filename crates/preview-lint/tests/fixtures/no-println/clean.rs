//@ path: crates/eval/src/main.rs
//! Fixture: binaries own their stdout — printing there is fine.

/// A CLI entry point printing its own report.
pub fn main() {
    println!("evaluation complete");
}
