//@ path: crates/preview-core/src/scoring/weights.rs
//! Fixture: a HashMap iteration chain feeding a float sum directly.

use std::collections::HashMap;

/// Sums entity weights straight off the map iterator: iteration order is
/// nondeterministic and float addition is order-sensitive.
pub fn total_weight(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum()
}

/// A longer chain that still reaches the sink without materialising.
pub fn scaled_weight(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().map(|w| w * 0.5).sum()
}
