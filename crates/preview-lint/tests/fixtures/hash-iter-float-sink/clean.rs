//@ path: crates/preview-core/src/scoring/weights.rs
//! Fixture: the deterministic version — materialise, sort, then sum.

use std::collections::HashMap;

/// Collects into a sorted buffer first, so the float accumulation runs in
/// a fixed order regardless of the map's iteration order.
pub fn total_weight(weights: &HashMap<u32, f64>) -> f64 {
    let mut all: Vec<f64> = weights.values().copied().collect();
    all.sort_by(f64::total_cmp);
    all.iter().sum()
}

/// Order-insensitive terminal adapters end the chain without a finding.
pub fn weight_count(weights: &HashMap<u32, f64>) -> usize {
    weights.values().count()
}
