//! Concurrency rules: atomic-ordering discipline, lock-acquisition-order
//! cycle detection, and the "never trace inside `FjPool` closures" rule.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::{FileClass, FileContext};
use crate::rules::{Family, Finding, Rule, Severity, ATOMIC_ORDERING_RULE};

/// Memory-ordering variant names of `std::sync::atomic::Ordering`.
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Path suffixes whose atomic-ordering sites are exempt from the
/// annotation requirement. Kept empty on purpose: every live site in the
/// workspace carries an `ordering-ok` reason, and new code should too.
const ORDERING_ALLOWLIST: &[&str] = &[];

/// `atomic-ordering-annotation`: every `Ordering::Relaxed` / `Acquire` /
/// `Release` / `AcqRel` / `SeqCst` site in library or binary code must
/// carry a `// lint: ordering-ok(<reason>)` annotation on the same line
/// or the line above, or sit in the `ORDERING_ALLOWLIST`. The reason
/// is the reviewer-facing correctness argument; orderings without one
/// rot into cargo-culted `Relaxed`.
pub struct AtomicOrderingAnnotation;

impl Rule for AtomicOrderingAnnotation {
    fn id(&self) -> &'static str {
        ATOMIC_ORDERING_RULE
    }
    fn family(&self) -> Family {
        Family::Concurrency
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "atomic memory-ordering site without an ordering-ok(<reason>) annotation"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if !matches!(ctx.meta.class, FileClass::Lib | FileClass::Bin) {
            return;
        }
        if ORDERING_ALLOWLIST
            .iter()
            .any(|sfx| ctx.file.path.ends_with(sfx))
        {
            return;
        }
        for i in 0..ctx.sig_len() {
            if ctx.sig_text(i) != "Ordering"
                || ctx.sig_text(i + 1) != ":"
                || ctx.sig_text(i + 2) != ":"
                || !MEMORY_ORDERINGS.contains(&ctx.sig_text(i + 3))
            {
                continue;
            }
            let Some(tok) = ctx.sig_token(i + 3) else {
                continue;
            };
            let offset = tok.start;
            if ctx.in_test(offset) || ctx.in_use_decl(offset) {
                continue;
            }
            out.push(Finding::at(
                ctx,
                self.id(),
                self.severity(),
                offset,
                format!(
                    "`Ordering::{}` needs `// lint: ordering-ok(<why this ordering is \
                     sufficient>)` on this line or the line above",
                    ctx.sig_text(i + 3)
                ),
            ));
        }
    }
}

/// Where one lock edge was observed, for diagnostics.
#[derive(Debug, Clone)]
struct EdgeSite {
    path: String,
    line: usize,
    col: usize,
    snippet: String,
    function: String,
}

/// `lock-order-cycle`: builds a lock-acquisition-order graph from
/// `<name>.lock()` / `<name>.read()` / `<name>.write()` sites (empty
/// argument lists only, which excludes `io::Read::read(&mut buf)` and
/// friends) and flags cycles. Within one function, acquiring `a` before
/// `b` adds the edge `a -> b`; a cycle across the workspace means two
/// code paths can acquire the same locks in opposite orders — a
/// potential deadlock.
///
/// Heuristics, by design: locks are identified by the last identifier of
/// the receiver path (`self.state.lock()` -> `state`), guards are
/// assumed held for the rest of the function, and same-name self-edges
/// (e.g. locking each shard `s` in a loop) are skipped.
#[derive(Default)]
pub struct LockOrderCycle {
    /// Edge -> first site where the *second* lock of the pair was taken.
    edges: BTreeMap<(String, String), EdgeSite>,
}

impl Rule for LockOrderCycle {
    fn id(&self) -> &'static str {
        "lock-order-cycle"
    }
    fn family(&self) -> Family {
        Family::Concurrency
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "two code paths acquire the same locks in opposite orders"
    }

    fn check_file(&mut self, ctx: &FileContext, _out: &mut Vec<Finding>) {
        if !matches!(ctx.meta.class, FileClass::Lib | FileClass::Bin) {
            return;
        }
        let n = ctx.sig_len();
        let mut i = 0usize;
        while i < n {
            if ctx.sig_text(i) != "fn" {
                i += 1;
                continue;
            }
            let function = ctx.sig_text(i + 1).to_string();
            // Find the body: first `{` at zero paren/bracket depth.
            let mut j = i + 2;
            let mut depth = 0usize;
            while j < n {
                match ctx.sig_text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => break, // trait method without body
                    _ => {}
                }
                j += 1;
            }
            if j >= n || ctx.sig_text(j) == ";" {
                i = j.max(i + 1);
                continue;
            }
            // Scan the body (to the matching `}`) for acquisition sites.
            let mut brace = 1usize;
            let mut k = j + 1;
            let mut acquired: Vec<(String, usize)> = Vec::new();
            while k < n && brace > 0 {
                match ctx.sig_text(k) {
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    "." => {
                        let method = ctx.sig_text(k + 1);
                        if matches!(method, "lock" | "read" | "write")
                            && ctx.sig_text(k + 2) == "("
                            && ctx.sig_text(k + 3) == ")"
                            && k >= 1
                            && ctx.sig_kind(k - 1) == Some(crate::lexer::TokenKind::Ident)
                        {
                            let name = ctx.sig_text(k - 1).to_string();
                            let offset = ctx.sig_token(k + 1).map(|t| t.start).unwrap_or(0);
                            if !ctx.in_test(offset) {
                                acquired.push((name, offset));
                            }
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            for a in 0..acquired.len() {
                for b in (a + 1)..acquired.len() {
                    let (from, _) = &acquired[a];
                    let (to, offset) = &acquired[b];
                    if from == to {
                        continue;
                    }
                    let key = (from.clone(), to.clone());
                    self.edges.entry(key).or_insert_with(|| {
                        let (line, col) = ctx.file.line_col(*offset);
                        EdgeSite {
                            path: ctx.file.path.clone(),
                            line,
                            col,
                            snippet: ctx.file.line_text(line).trim().to_string(),
                            function: function.clone(),
                        }
                    });
                }
            }
            i = k.max(i + 1);
        }
    }

    fn finish(&mut self, out: &mut Vec<Finding>) {
        // Strongly connected components over the lock graph; any SCC with
        // more than one node contains a cycle.
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (from, to) in self.edges.keys() {
            adj.entry(from).or_default().insert(to);
            adj.entry(to).or_default();
        }
        let scc = tarjan(&adj);
        let mut component: BTreeMap<&str, usize> = BTreeMap::new();
        for (idx, members) in scc.iter().enumerate() {
            for m in members {
                component.insert(m, idx);
            }
        }
        for ((from, to), site) in &self.edges {
            let same = component.get(from.as_str()) == component.get(to.as_str());
            if !same || scc[component[from.as_str()]].len() < 2 {
                continue;
            }
            let members = scc[component[from.as_str()]].join(", ");
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: site.path.clone(),
                line: site.line,
                col: site.col,
                snippet: site.snippet.clone(),
                message: format!(
                    "lock `{to}` acquired while `{from}` may be held (fn `{}`), but the \
                     reverse order also exists; cycle among locks: {{{members}}}",
                    site.function
                ),
                file_scope: false,
                suppressed: None,
            });
        }
    }
}

/// Iterative Tarjan SCC over a borrowed adjacency map. Returns components
/// as sorted name lists, in a deterministic order.
fn tarjan<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        lowlink: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        out: Vec<Vec<&'a str>>,
    }
    let mut st = State {
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    // Explicit work stack: (node, neighbour iterator position).
    for &root in adj.keys() {
        if st.index.contains_key(root) {
            continue;
        }
        let mut work: Vec<(&str, Vec<&str>, usize)> = Vec::new();
        let neighbours: Vec<&str> = adj[root].iter().copied().collect();
        st.index.insert(root, st.next);
        st.lowlink.insert(root, st.next);
        st.next += 1;
        st.stack.push(root);
        st.on_stack.insert(root);
        work.push((root, neighbours, 0));
        while let Some((node, neigh, mut pos)) = work.pop() {
            let mut descended = false;
            while pos < neigh.len() {
                let w = neigh[pos];
                pos += 1;
                if !st.index.contains_key(w) {
                    st.index.insert(w, st.next);
                    st.lowlink.insert(w, st.next);
                    st.next += 1;
                    st.stack.push(w);
                    st.on_stack.insert(w);
                    let wn: Vec<&str> = adj
                        .get(w)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    work.push((node, neigh, pos));
                    work.push((w, wn, 0));
                    descended = true;
                    break;
                } else if st.on_stack.contains(w) {
                    let low = st.lowlink[node].min(st.index[w]);
                    st.lowlink.insert(node, low);
                }
            }
            if descended {
                continue;
            }
            if st.lowlink[node] == st.index[node] {
                let mut comp = Vec::new();
                while let Some(w) = st.stack.pop() {
                    st.on_stack.remove(w);
                    comp.push(w);
                    if w == node {
                        break;
                    }
                }
                comp.sort_unstable();
                st.out.push(comp);
            }
            if let Some(&(parent, _, _)) = work.last() {
                let low = st.lowlink[parent].min(st.lowlink[node]);
                st.lowlink.insert(parent, low);
            }
        }
    }
    st.out
}

/// Tracing entry points that must never run inside `FjPool` closures:
/// spans allocate and take the recorder lock, which both skews the
/// per-item timings and serialises the pool workers.
const TRACE_CALLS: &[&str] = &["counter_add", "enter", "enter_with"];

/// `trace-in-fjpool-closure`: flags `span!` / `enter` / `enter_with` /
/// `counter_add` inside the argument list of `.map(..)` or
/// `.map_chunked(..)` when the receiver is an `FjPool` (a chain rooted
/// at an `FjPool` path or a variable named `pool`). Tracing belongs at
/// the orchestration level around the pool call, never per work item —
/// PR 7 established this rule in a comment; this makes it machine-checked.
pub struct TraceInFjPoolClosure;

impl Rule for TraceInFjPoolClosure {
    fn id(&self) -> &'static str {
        "trace-in-fjpool-closure"
    }
    fn family(&self) -> Family {
        Family::Concurrency
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "span!/enter/counter_add inside an FjPool map/map_chunked closure"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if !matches!(ctx.meta.class, FileClass::Lib | FileClass::Bin) {
            return;
        }
        let n = ctx.sig_len();
        for i in 0..n {
            if ctx.sig_text(i) != "."
                || !matches!(ctx.sig_text(i + 1), "map" | "map_chunked")
                || ctx.sig_text(i + 2) != "("
            {
                continue;
            }
            if !receiver_is_fjpool(ctx, i) {
                continue;
            }
            // Scan the balanced argument list for tracing calls.
            let mut depth = 1usize;
            let mut k = i + 3;
            while k < n && depth > 0 {
                match ctx.sig_text(k) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "span" if ctx.sig_text(k + 1) == "!" => {
                        self.flag(ctx, k, "span!", out);
                    }
                    t if TRACE_CALLS.contains(&t)
                        && ctx.sig_text(k + 1) == "("
                        && k >= 1
                        && matches!(ctx.sig_text(k - 1), "." | ":") =>
                    {
                        self.flag(ctx, k, t, out);
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
}

impl TraceInFjPoolClosure {
    fn flag(&self, ctx: &FileContext, sig_idx: usize, what: &str, out: &mut Vec<Finding>) {
        let offset = ctx.sig_token(sig_idx).map(|t| t.start).unwrap_or(0);
        if ctx.in_test(offset) {
            return;
        }
        out.push(Finding::at(
            ctx,
            self.id(),
            self.severity(),
            offset,
            format!(
                "`{what}` inside an FjPool closure: tracing serialises pool workers and \
                 skews per-item timings; trace around the pool call instead"
            ),
        ));
    }
}

/// Walks the receiver chain backwards from the `.` at significant index
/// `dot` and decides whether it is an `FjPool`. Recognised shapes:
/// `FjPool::global().map(..)`, `FjPool::with_threads(n).map(..)`,
/// longer chains rooted at `FjPool`, and a plain variable named `pool`.
fn receiver_is_fjpool(ctx: &FileContext, dot: usize) -> bool {
    let mut i = dot; // walk left from the `.`
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        match ctx.sig_text(i) {
            ")" => {
                // Skip the balanced group backwards.
                let mut depth = 1usize;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match ctx.sig_text(i) {
                        ")" | "]" | "}" => depth += 1,
                        "(" | "[" | "{" => depth -= 1,
                        _ => {}
                    }
                }
                if depth > 0 {
                    return false;
                }
            }
            // A variable or field named `pool` — by workspace convention
            // FjPool handles are called `pool` (`pool.map(..)`,
            // `self.pool.map_chunked(..)`).
            "pool" => return true,
            "FjPool" => return true,
            t if ctx.sig_kind(i) == Some(crate::lexer::TokenKind::Ident) => {
                // Part of a path/chain: keep walking if preceded by `.`
                // or `::`, otherwise this ident is the chain root.
                let before = if i > 0 { ctx.sig_text(i - 1) } else { "" };
                let _ = t;
                if before != "." && before != ":" {
                    return false;
                }
            }
            "." | ":" => {}
            _ => return false,
        }
    }
}
