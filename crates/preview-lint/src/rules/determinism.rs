//! Determinism rules: the paper's exact-optimality guarantees (Theorems
//! 4.1/5.1) only hold because every engine is bitwise-deterministic, so
//! these rules ban the usual sources of run-to-run drift.

use crate::context::{FileClass, FileContext};
use crate::rules::{Family, Finding, Rule, Severity};

/// Crates whose scoring/algorithm paths must be bitwise-deterministic.
const SCORING_CRATES: &[&str] = &["preview-core", "baseline", "entity-graph"];

/// Iterator adapters that are order-insensitive or that materialise the
/// stream, ending the order-sensitivity of a map-iteration chain.
const CHAIN_BREAKERS: &[&str] = &[
    "collect",
    "count",
    "len",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "all",
    "any",
    "find",
    "position",
    "unzip",
    "partition",
];

/// Float-accumulation sinks that make iteration order observable in the
/// result (float addition is not associative).
const FLOAT_SINKS: &[&str] = &["sum", "product", "fold", "reduce"];

/// `hash-iter-float-sink`: flags `.values()` / `.keys()` /
/// `.into_values()` / `.into_keys()` chains that reach a float
/// accumulation sink (`sum`/`product`/`fold`/`reduce`) without first
/// materialising through an order-insensitive adapter, in the scoring
/// crates. `HashMap` iteration order varies run to run, and float
/// addition is non-associative, so such a chain silently breaks bitwise
/// determinism — the exact bug shape goldens caught late in PR 3.
///
/// The check is lexical (no type information), so `BTreeMap::values()`
/// chains match too; if one is genuinely deterministic, annotate it with
/// `// lint: allow(hash-iter-float-sink, <reason>)`.
pub struct HashIterFloatSink;

impl Rule for HashIterFloatSink {
    fn id(&self) -> &'static str {
        "hash-iter-float-sink"
    }
    fn family(&self) -> Family {
        Family::Determinism
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "map-iteration chain feeds a float accumulation sink in a scoring crate"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if !SCORING_CRATES.contains(&ctx.meta.crate_name.as_str())
            || ctx.meta.class != FileClass::Lib
        {
            return;
        }
        let n = ctx.sig_len();
        let mut i = 0usize;
        while i + 3 < n {
            let starts_chain = ctx.sig_text(i) == "."
                && matches!(
                    ctx.sig_text(i + 1),
                    "values" | "keys" | "into_values" | "into_keys"
                )
                && ctx.sig_text(i + 2) == "("
                && ctx.sig_text(i + 3) == ")";
            if !starts_chain || ctx.in_test(ctx.sig_token(i).map(|t| t.start).unwrap_or(0)) {
                i += 1;
                continue;
            }
            // Walk the method chain: `.name(<balanced>)` repeated.
            let mut j = i + 4;
            while j + 2 < n && ctx.sig_text(j) == "." && ctx.sig_text(j + 2) == "(" {
                let name = ctx.sig_text(j + 1).to_string();
                if FLOAT_SINKS.contains(&name.as_str()) {
                    let offset = ctx.sig_token(j + 1).map(|t| t.start).unwrap_or(0);
                    out.push(Finding::at(
                        ctx,
                        self.id(),
                        self.severity(),
                        offset,
                        format!(
                            "map iteration (`.{}()`) reaches `.{}()` without materialising; \
                             HashMap order is nondeterministic and float accumulation is \
                             order-sensitive — collect and sort first",
                            ctx.sig_text(i + 1),
                            name
                        ),
                    ));
                    break;
                }
                if CHAIN_BREAKERS.contains(&name.as_str()) {
                    break;
                }
                // Skip the balanced argument list of this adapter.
                let mut depth = 1usize;
                let mut k = j + 3;
                while k < n && depth > 0 {
                    match ctx.sig_text(k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                j = k;
            }
            i += 4;
        }
    }
}

/// `wall-clock`: flags `Instant` / `SystemTime` mentions outside the
/// `preview-obs` and `bench` crates (and outside tests, benches,
/// examples, and `use` declarations). Wall-clock reads in engine code
/// make outputs timing-dependent; legitimate uses (latency stats,
/// anytime budgets) must carry `// lint: allow(wall-clock, <reason>)`.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }
    fn family(&self) -> Family {
        Family::Determinism
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "Instant/SystemTime use outside preview-obs and bench"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if matches!(ctx.meta.crate_name.as_str(), "preview-obs" | "bench")
            || !matches!(ctx.meta.class, FileClass::Lib | FileClass::Bin)
        {
            return;
        }
        for i in 0..ctx.sig_len() {
            let t = ctx.sig_text(i);
            if t != "Instant" && t != "SystemTime" {
                continue;
            }
            let offset = ctx.sig_token(i).map(|tok| tok.start).unwrap_or(0);
            if ctx.in_test(offset) || ctx.in_use_decl(offset) {
                continue;
            }
            out.push(Finding::at(
                ctx,
                self.id(),
                self.severity(),
                offset,
                format!(
                    "`{t}` outside preview-obs/bench: wall-clock reads make engine \
                     behaviour timing-dependent"
                ),
            ));
        }
    }
}

/// `ambient-randomness`: flags `thread_rng`, `from_entropy`, `OsRng`,
/// and `rand::random` — ambient entropy sources that cannot be replayed.
/// All randomness must flow from an explicitly seeded generator.
pub struct AmbientRandomness;

impl Rule for AmbientRandomness {
    fn id(&self) -> &'static str {
        "ambient-randomness"
    }
    fn family(&self) -> Family {
        Family::Determinism
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "ambient entropy source (thread_rng/from_entropy/OsRng/rand::random)"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if !matches!(ctx.meta.class, FileClass::Lib | FileClass::Bin) {
            return;
        }
        for i in 0..ctx.sig_len() {
            let t = ctx.sig_text(i);
            let hit = matches!(t, "thread_rng" | "from_entropy" | "OsRng")
                || (t == "random"
                    && i >= 3
                    && ctx.sig_text(i - 1) == ":"
                    && ctx.sig_text(i - 2) == ":"
                    && ctx.sig_text(i - 3) == "rand");
            if !hit {
                continue;
            }
            let offset = ctx.sig_token(i).map(|tok| tok.start).unwrap_or(0);
            if ctx.in_test(offset) || ctx.in_use_decl(offset) {
                continue;
            }
            out.push(Finding::at(
                ctx,
                self.id(),
                self.severity(),
                offset,
                format!("`{t}` draws ambient entropy; seed an explicit RNG instead"),
            ));
        }
    }
}
