//! Policy rules: panic discipline on the serving path, crate-root
//! hygiene attributes, and stray console output in library code.

use crate::context::{FileClass, FileContext};
use crate::rules::{Family, Finding, Rule, Severity};

/// `request-path-unwrap`: flags `.unwrap(` / `.expect(` / `panic!` in
/// `preview-service` library code outside tests. The serving path must
/// degrade (shed, error out) rather than abort: a panic in a worker
/// poisons shared locks and can take the whole process down. Genuinely
/// unreachable cases (startup-time spawns, freshly created slots) carry
/// `// lint: allow(request-path-unwrap, <invariant>)`.
///
/// `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` are distinct
/// identifiers and do not match — they are the encouraged alternatives.
pub struct RequestPathUnwrap;

impl Rule for RequestPathUnwrap {
    fn id(&self) -> &'static str {
        "request-path-unwrap"
    }
    fn family(&self) -> Family {
        Family::Policy
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "unwrap/expect/panic! in preview-service request-path code"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.meta.crate_name != "preview-service" || ctx.meta.class != FileClass::Lib {
            return;
        }
        for i in 0..ctx.sig_len() {
            let t = ctx.sig_text(i);
            let hit = (matches!(t, "unwrap" | "expect")
                && ctx.sig_text(i + 1) == "("
                && i >= 1
                && ctx.sig_text(i - 1) == ".")
                || (t == "panic" && ctx.sig_text(i + 1) == "!");
            if !hit {
                continue;
            }
            let offset = ctx.sig_token(i).map(|tok| tok.start).unwrap_or(0);
            if ctx.in_test(offset) {
                continue;
            }
            out.push(Finding::at(
                ctx,
                self.id(),
                self.severity(),
                offset,
                format!(
                    "`{t}` can abort the serving path; recover (unwrap_or_else, poison \
                     recovery, error return) or annotate the unreachable-case invariant"
                ),
            ));
        }
    }
}

/// Checks whether a crate root's inner attributes contain
/// `#![<level>(<lint_name>)]` for any of `levels`.
fn has_inner_attr(ctx: &FileContext, levels: &[&str], lint_name: &str) -> bool {
    for i in 0..ctx.sig_len() {
        if ctx.sig_text(i) == "#"
            && ctx.sig_text(i + 1) == "!"
            && ctx.sig_text(i + 2) == "["
            && levels.contains(&ctx.sig_text(i + 3))
            && ctx.sig_text(i + 4) == "("
            && ctx.sig_text(i + 5) == lint_name
        {
            return true;
        }
    }
    false
}

/// `forbid-unsafe`: every non-bench crate root must carry
/// `#![forbid(unsafe_code)]`. The workspace `[lints]` table forbids it
/// too, but the in-source attribute survives a crate being built outside
/// the workspace and is visible at the point of review.
pub struct ForbidUnsafe;

impl Rule for ForbidUnsafe {
    fn id(&self) -> &'static str {
        "forbid-unsafe"
    }
    fn family(&self) -> Family {
        Family::Policy
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "crate root missing #![forbid(unsafe_code)]"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if !ctx.meta.is_crate_root || ctx.meta.crate_name == "bench" {
            return;
        }
        if has_inner_attr(ctx, &["forbid", "deny"], "unsafe_code") {
            return;
        }
        let mut f = Finding::at(
            ctx,
            self.id(),
            self.severity(),
            0,
            "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        );
        f.file_scope = true;
        out.push(f);
    }
}

/// `deny-missing-docs`: every non-bench crate root must carry
/// `#![deny(missing_docs)]` (or a documented exemption via
/// `// lint: allow(deny-missing-docs, <reason>)` anywhere in the file).
/// Public API without docs fails the rustdoc CI gate late; denying at
/// the crate root fails it at the definition site.
pub struct DenyMissingDocs;

impl Rule for DenyMissingDocs {
    fn id(&self) -> &'static str {
        "deny-missing-docs"
    }
    fn family(&self) -> Family {
        Family::Policy
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn description(&self) -> &'static str {
        "crate root missing #![deny(missing_docs)]"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if !ctx.meta.is_crate_root || ctx.meta.crate_name == "bench" {
            return;
        }
        if has_inner_attr(ctx, &["deny", "forbid"], "missing_docs") {
            return;
        }
        let mut f = Finding::at(
            ctx,
            self.id(),
            self.severity(),
            0,
            "crate root lacks `#![deny(missing_docs)]`".to_string(),
        );
        f.file_scope = true;
        out.push(f);
    }
}

/// Console-output macros banned from library code.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// `no-println`: flags `println!` / `eprintln!` / `print!` / `eprint!`
/// in library code outside tests (binaries, benches, and examples own
/// their stdout; libraries do not). Observability goes through
/// `preview-obs`; a deliberate stderr diagnostic carries
/// `// lint: allow(no-println, <reason>)`.
pub struct NoPrintln;

impl Rule for NoPrintln {
    fn id(&self) -> &'static str {
        "no-println"
    }
    fn family(&self) -> Family {
        Family::Policy
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn description(&self) -> &'static str {
        "println!/eprintln! in library code"
    }

    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.meta.class != FileClass::Lib || ctx.meta.crate_name == "bench" {
            return;
        }
        for i in 0..ctx.sig_len() {
            let t = ctx.sig_text(i);
            if !PRINT_MACROS.contains(&t) || ctx.sig_text(i + 1) != "!" {
                continue;
            }
            let offset = ctx.sig_token(i).map(|tok| tok.start).unwrap_or(0);
            if ctx.in_test(offset) {
                continue;
            }
            out.push(Finding::at(
                ctx,
                self.id(),
                self.severity(),
                offset,
                format!("`{t}!` in library code; route output through preview-obs or a bin"),
            ));
        }
    }
}
