//! The rule framework: typed rules, findings, and the registry.

pub mod concurrency;
pub mod determinism;
pub mod policy;

use crate::context::FileContext;

/// Rule id of the atomic-ordering annotation rule; the
/// `// lint: ordering-ok(<reason>)` shorthand maps to it.
pub const ATOMIC_ORDERING_RULE: &str = "atomic-ordering-annotation";

/// How serious an unsuppressed finding is. `--check` fails on any
/// unsuppressed finding regardless of severity; the distinction is
/// informational (errors break invariants outright, warnings are
/// hygiene).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks a determinism/concurrency/policy invariant.
    Error,
    /// Hygiene issue.
    Warning,
}

impl Severity {
    /// Lower-case name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Which invariant family a rule belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Bitwise-reproducibility invariants.
    Determinism,
    /// Atomics, locks, and tracing-in-parallel invariants.
    Concurrency,
    /// Project policy (panics, crate hygiene, stray output).
    Policy,
}

impl Family {
    /// Lower-case name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Family::Determinism => "determinism",
            Family::Concurrency => "concurrency",
            Family::Policy => "policy",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Id of the rule that fired.
    pub rule: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
    /// File-scope findings (crate-root attribute checks) accept a
    /// suppression anywhere in the file, not just adjacent lines.
    pub file_scope: bool,
    /// Set by the driver when a suppression matched; carries the reason.
    pub suppressed: Option<String>,
}

impl Finding {
    /// Builds a finding anchored at byte `offset` of `ctx`'s file.
    pub fn at(
        ctx: &FileContext,
        rule: &'static str,
        severity: Severity,
        offset: usize,
        message: String,
    ) -> Self {
        let (line, col) = ctx.file.line_col(offset);
        Self {
            rule,
            severity,
            path: ctx.file.path.clone(),
            line,
            col,
            snippet: ctx.file.line_text(line).trim().to_string(),
            message,
            file_scope: false,
            suppressed: None,
        }
    }
}

/// A lint rule. Rules see every file once via [`Rule::check_file`];
/// rules that need whole-workspace state (the lock-order graph) emit
/// their findings from [`Rule::finish`].
pub trait Rule {
    /// Stable kebab-case identifier, used in reports and suppressions.
    fn id(&self) -> &'static str;
    /// Invariant family.
    fn family(&self) -> Family;
    /// Severity of findings.
    fn severity(&self) -> Severity;
    /// One-line description for `--list-rules` and the report.
    fn description(&self) -> &'static str;
    /// Analyses one file, appending findings.
    fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>);
    /// Emits whole-workspace findings after every file has been seen.
    fn finish(&mut self, out: &mut Vec<Finding>) {
        let _ = out;
    }
}

/// Instantiates the full rule set, in stable report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::HashIterFloatSink),
        Box::new(determinism::WallClock),
        Box::new(determinism::AmbientRandomness),
        Box::new(concurrency::AtomicOrderingAnnotation),
        Box::new(concurrency::LockOrderCycle::default()),
        Box::new(concurrency::TraceInFjPoolClosure),
        Box::new(policy::RequestPathUnwrap),
        Box::new(policy::ForbidUnsafe),
        Box::new(policy::DenyMissingDocs),
        Box::new(policy::NoPrintln),
    ]
}
