//! CLI for the workspace lint pass.
//!
//! ```text
//! preview-lint [--root <dir>] [--check] [--out <file>] [--list-rules]
//! ```
//!
//! * `--root <dir>` — workspace root to analyse (default `.`).
//! * `--check` — exit non-zero if any unsuppressed finding remains (the
//!   CI mode; `ci.sh` runs this before the bench gates).
//! * `--out <file>` — write the JSON report to `<file>`.
//! * `--list-rules` — print the rule table and exit.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut check = false;
    let mut out: Option<PathBuf> = None;
    let mut list_rules = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage("--out needs a value"),
            },
            "--check" => check = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("preview-lint [--root <dir>] [--check] [--out <file>] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        println!(
            "{:<28} {:<12} {:<8} description",
            "id", "family", "severity"
        );
        for rule in preview_lint::rules::all_rules() {
            println!(
                "{:<28} {:<12} {:<8} {}",
                rule.id(),
                rule.family().name(),
                rule.severity().name(),
                rule.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    let report = match preview_lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "preview-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("preview-lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let open: Vec<_> = report.unsuppressed().collect();
    for f in &open {
        println!(
            "{}: {}:{}:{}: {}\n    {}",
            f.rule, f.path, f.line, f.col, f.message, f.snippet
        );
    }
    let suppressed = report.findings.len() - open.len();
    println!(
        "preview-lint: {} files, {} rules, {} findings ({} annotated/suppressed), {} unused suppressions",
        report.files_scanned,
        report.rules.len(),
        open.len(),
        suppressed,
        report.unused_suppressions.len()
    );

    if check && !open.is_empty() {
        eprintln!(
            "preview-lint: --check failed: {} unsuppressed finding(s)",
            open.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("preview-lint: {msg}\nusage: preview-lint [--root <dir>] [--check] [--out <file>] [--list-rules]");
    ExitCode::FAILURE
}
