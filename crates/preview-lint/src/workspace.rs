//! Workspace walking and the analysis driver.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::context::FileContext;
use crate::report::{Report, RuleSummary, UnusedSuppression};
use crate::rules::{all_rules, Finding};
use crate::source::SourceFile;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules"];

/// Path fragments excluded from analysis: lint fixtures intentionally
/// violate the rules.
const SKIP_FRAGMENTS: &[&str] = &["tests/fixtures/"];

/// Collects every workspace-relative `.rs` path under `root`, skipping
/// `target/`, `vendor/` (vendored stand-ins are out of policy scope),
/// and the lint fixture corpus. Paths are returned sorted with `/`
/// separators for deterministic reports.
pub fn collect_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, &mut paths)?;
    let mut rels: Vec<String> = paths
        .iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).ok()?;
            let s = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Some(s)
        })
        .filter(|s| !SKIP_FRAGMENTS.iter().any(|f| s.contains(f)))
        .collect();
    rels.sort();
    let mut out = Vec::with_capacity(rels.len());
    for rel in rels {
        let text = fs::read_to_string(root.join(&rel))?;
        out.push(SourceFile::new(rel, text));
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.clone());
        }
    }
    Ok(())
}

/// Runs every rule over the given sources and resolves suppressions.
///
/// This is the pure core shared by the CLI and the fixture tests: it
/// takes in-memory sources (path + text), so tests can lint synthetic
/// files under virtual paths like `crates/preview-core/src/fixture.rs`
/// to exercise path-scoped rules.
pub fn analyze(sources: Vec<SourceFile>) -> Report {
    let contexts: Vec<FileContext> = sources.into_iter().map(FileContext::build).collect();
    let mut rules = all_rules();
    let mut findings: Vec<Finding> = Vec::new();
    for rule in rules.iter_mut() {
        for ctx in &contexts {
            rule.check_file(ctx, &mut findings);
        }
        rule.finish(&mut findings);
    }

    // Resolve suppressions: a finding is suppressed by a comment naming
    // its rule on the same line or the line above (anywhere in the file
    // for file-scope findings). One comment may suppress several
    // findings (e.g. two orderings in one `compare_exchange`).
    let mut used = vec![false; contexts.iter().map(|c| c.suppressions.len()).sum()];
    let mut base = Vec::with_capacity(contexts.len());
    let mut acc = 0usize;
    for c in &contexts {
        base.push(acc);
        acc += c.suppressions.len();
    }
    for f in findings.iter_mut() {
        let Some((ci, ctx)) = contexts
            .iter()
            .enumerate()
            .find(|(_, c)| c.file.path == f.path)
        else {
            continue;
        };
        for (si, s) in ctx.suppressions.iter().enumerate() {
            if s.rule != f.rule {
                continue;
            }
            let adjacent = s.line == f.line || s.line + 1 == f.line;
            if f.file_scope || adjacent {
                f.suppressed = Some(s.reason.clone());
                used[base[ci] + si] = true;
                break;
            }
        }
    }

    let mut unused_suppressions: Vec<UnusedSuppression> = Vec::new();
    for (ci, c) in contexts.iter().enumerate() {
        for (si, s) in c.suppressions.iter().enumerate() {
            if !used[base[ci] + si] {
                unused_suppressions.push(UnusedSuppression {
                    path: c.file.path.clone(),
                    line: s.line,
                    rule: s.rule.clone(),
                    reason: s.reason.clone(),
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    let rule_summaries: Vec<RuleSummary> = rules
        .iter()
        .map(|r| RuleSummary {
            id: r.id(),
            family: r.family().name(),
            severity: r.severity().name(),
            description: r.description(),
            findings: findings
                .iter()
                .filter(|f| f.rule == r.id() && f.suppressed.is_none())
                .count(),
            suppressed: findings
                .iter()
                .filter(|f| f.rule == r.id() && f.suppressed.is_some())
                .count(),
        })
        .collect();

    Report {
        files_scanned: contexts.len(),
        rules: rule_summaries,
        findings,
        unused_suppressions,
    }
}

/// Walks `root` and analyses every workspace source file.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    Ok(analyze(collect_files(root)?))
}
