//! A minimal, dependency-free Rust lexer.
//!
//! The lint pass needs token-level structure (idents, punctuation,
//! comments, string literals) but not a full parse tree, so this module
//! implements a small hand-rolled tokenizer instead of pulling in `syn`
//! (the workspace vendors every dependency, and `syn`'s transitive
//! surface is far larger than what the rules require).
//!
//! Guarantees:
//!
//! * Tokens are contiguous: `token[i].end == token[i + 1].start`, the
//!   first token starts at byte 0 and the last ends at `src.len()`.
//!   Concatenating every token's text therefore reproduces the input
//!   exactly (the round-trip property the lexer proptest exercises).
//! * Comments and string/char literals are single tokens, so rules that
//!   scan for identifiers can never match text inside a literal or a
//!   comment by accident.
//! * Malformed input (unterminated strings or comments) never panics;
//!   the open token simply extends to end of file.
//!
//! Known simplifications, acceptable for linting purposes: a float like
//! `1.` (trailing dot, no fraction digits) lexes as `Int` + `Punct('.')`
//! so that range expressions like `0..n` tokenize correctly, and numeric
//! type suffixes are folded into the number token.

/// The class of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `Ordering`).
    Ident,
    /// A lifetime or loop label including the leading quote (`'a`).
    Lifetime,
    /// An integer literal including any suffix (`42`, `0xFF_u32`).
    Int,
    /// A float literal including any suffix (`1.5`, `2e-3`, `1.0f64`).
    Float,
    /// A (possibly byte-) string literal including quotes (`"x"`, `b"x"`).
    Str,
    /// A raw (possibly byte-) string literal (`r#"x"#`, `br"x"`).
    RawStr,
    /// A (possibly byte-) character literal (`'x'`, `b'\n'`).
    Char,
    /// A line comment without the trailing newline (`// ...`, `/// ...`).
    LineComment,
    /// A block comment, nesting handled (`/* /* .. */ */`).
    BlockComment,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, ...).
    Punct,
    /// A maximal run of whitespace.
    Whitespace,
}

impl TokenKind {
    /// Whether this token carries syntactic meaning (not whitespace or a
    /// comment). Rules iterate significant tokens only.
    pub fn is_significant(self) -> bool {
        !matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// One token: a kind plus the half-open byte span `[start, end)` into the
/// source it was lexed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The text of this token within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Tokenizes `src` completely. Never fails: unrecognised bytes become
/// single-byte [`TokenKind::Punct`] tokens and unterminated literals run
/// to end of input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    out: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.out.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        self.out
    }

    fn at(&self, offset: usize) -> u8 {
        self.src.get(self.pos + offset).copied().unwrap_or(0)
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.at(0);
        if b.is_ascii_whitespace() {
            while self.at(0).is_ascii_whitespace() && self.pos < self.src.len() {
                self.pos += 1;
            }
            return TokenKind::Whitespace;
        }
        if b == b'/' && self.at(1) == b'/' {
            while self.pos < self.src.len() && self.at(0) != b'\n' {
                self.pos += 1;
            }
            return TokenKind::LineComment;
        }
        if b == b'/' && self.at(1) == b'*' {
            self.pos += 2;
            let mut depth = 1usize;
            while self.pos < self.src.len() && depth > 0 {
                if self.at(0) == b'/' && self.at(1) == b'*' {
                    depth += 1;
                    self.pos += 2;
                } else if self.at(0) == b'*' && self.at(1) == b'/' {
                    depth -= 1;
                    self.pos += 2;
                } else {
                    self.pos += 1;
                }
            }
            return TokenKind::BlockComment;
        }
        // Raw strings: r"..", r#".."#, br".." with any number of hashes.
        if b == b'r' || (b == b'b' && self.at(1) == b'r') {
            let prefix = if b == b'r' { 1 } else { 2 };
            let mut hashes = 0usize;
            while self.at(prefix + hashes) == b'#' {
                hashes += 1;
            }
            if self.at(prefix + hashes) == b'"' {
                self.pos += prefix + hashes + 1;
                'scan: while self.pos < self.src.len() {
                    if self.at(0) == b'"' {
                        for h in 0..hashes {
                            if self.at(1 + h) != b'#' {
                                self.pos += 1;
                                continue 'scan;
                            }
                        }
                        self.pos += 1 + hashes;
                        return TokenKind::RawStr;
                    }
                    self.pos += 1;
                }
                return TokenKind::RawStr; // unterminated: runs to EOF
            }
        }
        // Plain and byte strings.
        if b == b'"' || (b == b'b' && self.at(1) == b'"') {
            self.pos += if b == b'"' { 1 } else { 2 };
            while self.pos < self.src.len() {
                match self.at(0) {
                    b'\\' => self.pos = (self.pos + 2).min(self.src.len()),
                    b'"' => {
                        self.pos += 1;
                        return TokenKind::Str;
                    }
                    _ => self.pos += 1,
                }
            }
            return TokenKind::Str; // unterminated
        }
        // Char literals vs lifetimes. `'a` with no closing quote after one
        // ident char is a lifetime; `'a'`, `'\n'`, `'Δ'` are chars.
        if b == b'\'' || (b == b'b' && self.at(1) == b'\'') {
            let quote = if b == b'\'' { 0 } else { 1 };
            let first = self.at(quote + 1);
            if quote == 0 && is_ident_start(first) && self.at(2) != b'\'' {
                self.pos += 1;
                while is_ident_continue(self.at(0)) && self.pos < self.src.len() {
                    self.pos += 1;
                }
                return TokenKind::Lifetime;
            }
            self.pos += quote + 1;
            while self.pos < self.src.len() {
                match self.at(0) {
                    b'\\' => self.pos = (self.pos + 2).min(self.src.len()),
                    b'\'' => {
                        self.pos += 1;
                        return TokenKind::Char;
                    }
                    _ => self.pos += 1,
                }
            }
            return TokenKind::Char; // unterminated
        }
        if is_ident_start(b) {
            while is_ident_continue(self.at(0)) && self.pos < self.src.len() {
                self.pos += 1;
            }
            return TokenKind::Ident;
        }
        if b.is_ascii_digit() {
            return self.number();
        }
        self.pos += 1;
        TokenKind::Punct
    }

    fn number(&mut self) -> TokenKind {
        if self.at(0) == b'0' && matches!(self.at(1), b'x' | b'o' | b'b') {
            // Radix-prefixed integer: fold digits, underscores and the
            // type suffix into one token.
            self.pos += 2;
            while is_ident_continue(self.at(0)) && self.pos < self.src.len() {
                self.pos += 1;
            }
            return TokenKind::Int;
        }
        let mut is_float = false;
        while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
            self.pos += 1;
        }
        if self.at(0) == b'.' && self.at(1).is_ascii_digit() {
            is_float = true;
            self.pos += 1;
            while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
                self.pos += 1;
            }
        }
        if matches!(self.at(0), b'e' | b'E') {
            let sign = matches!(self.at(1), b'+' | b'-');
            let exp_digit = if sign { self.at(2) } else { self.at(1) };
            if exp_digit.is_ascii_digit() {
                is_float = true;
                self.pos += if sign { 2 } else { 1 };
                while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (`u32`, `f64`, ...). `1f32` stays Int by this rule,
        // which is fine for linting: suffix floats are not scanned for.
        while is_ident_continue(self.at(0)) && self.pos < self.src.len() {
            self.pos += 1;
        }
        if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .iter()
            .filter(|t| t.kind.is_significant())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn assert_round_trip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
        for pair in toks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "tokens must be contiguous");
        }
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("fn main() {}"),
            vec![
                (TokenKind::Ident, "fn"),
                (TokenKind::Ident, "main"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
                (TokenKind::Punct, "{"),
                (TokenKind::Punct, "}"),
            ]
        );
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "a /* x /* y */ z */ b";
        assert_eq!(
            kinds(src),
            vec![(TokenKind::Ident, "a"), (TokenKind::Ident, "b")]
        );
        assert_round_trip(src);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"quote " inside"# ; let t = br##"x"# still"## ;"####;
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::RawStr && s.contains("quote")));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::RawStr && s.contains("still")));
        assert_round_trip(src);
    }

    #[test]
    fn lifetime_vs_char() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let s = 'static; }";
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && *s == "'a"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Char && *s == "'x'"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Char && *s == "'\\n'"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && *s == "'static"));
        assert_round_trip(src);
    }

    #[test]
    fn byte_literals() {
        let src = r#"let a = b"bytes"; let b = b'\0'; let c = br"raw";"#;
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && *s == "b\"bytes\""));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Char && *s == "b'\\0'"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::RawStr && *s == "br\"raw\""));
        assert_round_trip(src);
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "0..n; 1.5; 2e-3; 0xFF_u32; 10_000usize; 1..=2";
        let got = kinds(src);
        assert!(got.iter().any(|(k, s)| *k == TokenKind::Int && *s == "0"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Float && *s == "1.5"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Float && *s == "2e-3"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Int && *s == "0xFF_u32"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Int && *s == "10_000usize"));
        assert_round_trip(src);
    }

    #[test]
    fn string_with_escaped_quote_does_not_leak() {
        let src = r#"let s = "say \"Ordering::Relaxed\""; x"#;
        let got = kinds(src);
        // The ident scan must not see tokens inside the literal.
        assert!(!got
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && *s == "Relaxed"));
        assert!(got.iter().any(|(k, s)| *k == TokenKind::Ident && *s == "x"));
        assert_round_trip(src);
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        for src in ["\"open", "r#\"open", "/* open", "'\\", "b\"open"] {
            let toks = lex(src);
            assert_eq!(toks.last().unwrap().end, src.len());
            assert_round_trip(src);
        }
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// println!(\"hi\")\nfn f() {}\n//! inner\n";
        let got = kinds(src);
        assert!(!got
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && *s == "println"));
        assert_round_trip(src);
    }
}
