//! The machine-readable lint report and its JSON serialisation.
//!
//! The writer is hand-rolled (~60 lines) so the tool stays std-only; the
//! output is plain JSON that future PRs can diff (`LINT_REPORT.json` is
//! committed by CI).

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Per-rule roll-up for the report header.
#[derive(Debug, Clone)]
pub struct RuleSummary {
    /// Rule id.
    pub id: &'static str,
    /// Invariant family name.
    pub family: &'static str,
    /// Severity name.
    pub severity: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Count of unsuppressed findings.
    pub findings: usize,
    /// Count of suppressed (annotated) findings.
    pub suppressed: usize,
}

/// A suppression comment that matched no finding — usually a leftover
/// after the offending code was removed, or a typo in the rule id.
/// Reported for inventory purposes; does not fail `--check`.
#[derive(Debug, Clone)]
pub struct UnusedSuppression {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// Rule id named by the comment.
    pub rule: String,
    /// Reason text from the comment.
    pub reason: String,
}

/// The full result of analysing a workspace.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-rule summaries, in registry order.
    pub rules: Vec<RuleSummary>,
    /// Every finding, suppressed or not, in (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// Suppression comments that matched nothing.
    pub unused_suppressions: Vec<UnusedSuppression>,
}

impl Report {
    /// Whether the workspace is clean: zero unsuppressed findings.
    pub fn clean(&self) -> bool {
        self.findings.iter().all(|f| f.suppressed.is_some())
    }

    /// Unsuppressed findings only.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Findings of a given rule (suppressed or not).
    pub fn of_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Serialises the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"clean\": {},\n", self.clean()));

        s.push_str("  \"rules\": [\n");
        for (i, r) in self.rules.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"family\": {}, \"severity\": {}, \"description\": {}, \
                 \"findings\": {}, \"suppressed\": {}}}{}\n",
                json_str(r.id),
                json_str(r.family),
                json_str(r.severity),
                json_str(r.description),
                r.findings,
                r.suppressed,
                comma(i, self.rules.len())
            ));
        }
        s.push_str("  ],\n");

        let open: Vec<&Finding> = self.unsuppressed().collect();
        s.push_str("  \"findings\": [\n");
        for (i, f) in open.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \
                 \"col\": {}, \"snippet\": {}, \"message\": {}}}{}\n",
                json_str(f.rule),
                json_str(f.severity.name()),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.snippet),
                json_str(&f.message),
                comma(i, open.len())
            ));
        }
        s.push_str("  ],\n");

        let annotated: Vec<&Finding> = self
            .findings
            .iter()
            .filter(|f| f.suppressed.is_some())
            .collect();
        s.push_str("  \"suppressions\": [\n");
        for (i, f) in annotated.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(f.suppressed.as_deref().unwrap_or("")),
                comma(i, annotated.len())
            ));
        }
        s.push_str("  ],\n");

        // Suppression counts per rule, for at-a-glance diffing.
        let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &annotated {
            *per_rule.entry(f.rule).or_insert(0) += 1;
        }
        s.push_str("  \"suppression_counts\": {");
        let mut first = true;
        for (rule, count) in &per_rule {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("{}: {}", json_str(rule), count));
        }
        s.push_str("},\n");

        s.push_str("  \"unused_suppressions\": [\n");
        for (i, u) in self.unused_suppressions.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                json_str(&u.rule),
                json_str(&u.path),
                u.line,
                json_str(&u.reason),
                comma(i, self.unused_suppressions.len())
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn clean_report_serialises() {
        let r = Report {
            files_scanned: 2,
            rules: vec![RuleSummary {
                id: "x",
                family: "policy",
                severity: "error",
                description: "d",
                findings: 0,
                suppressed: 1,
            }],
            findings: vec![Finding {
                rule: "x",
                severity: Severity::Error,
                path: "a.rs".into(),
                line: 3,
                col: 1,
                snippet: "let x;".into(),
                message: "m".into(),
                file_scope: false,
                suppressed: Some("fine".into()),
            }],
            unused_suppressions: vec![],
        };
        assert!(r.clean());
        let js = r.to_json();
        assert!(js.contains("\"clean\": true"));
        assert!(js.contains("\"suppression_counts\": {\"x\": 1}"));
    }
}
