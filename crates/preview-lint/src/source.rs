//! Source files with line/column lookup for span-accurate diagnostics.

/// One source file under analysis: a workspace-relative path, the full
/// text, and a precomputed line table.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub path: String,
    /// Full file contents.
    pub text: String,
    /// Byte offset of the first byte of every line (line 1 is index 0).
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Builds a source file, computing the line table.
    pub fn new(path: String, text: String) -> Self {
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self {
            path,
            text,
            line_starts,
        }
    }

    /// Maps a byte offset to a 1-based `(line, column)` pair. Columns are
    /// byte columns, which match character columns for ASCII source.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The text of a 1-based line, without its trailing newline. Returns
    /// an empty string for out-of-range lines.
    pub fn line_text(&self, line: usize) -> &str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&next| next - 1)
            .unwrap_or(self.text.len());
        self.text
            .get(start..end)
            .unwrap_or("")
            .trim_end_matches('\r')
    }

    /// Number of lines in the file (a trailing newline does not add one).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_round_trip() {
        let f = SourceFile::new("x.rs".into(), "ab\ncde\n\nf".into());
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(1), (1, 2));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(5), (2, 3));
        assert_eq!(f.line_col(7), (3, 1));
        assert_eq!(f.line_col(8), (4, 1));
        assert_eq!(f.line_text(1), "ab");
        assert_eq!(f.line_text(2), "cde");
        assert_eq!(f.line_text(3), "");
        assert_eq!(f.line_text(4), "f");
        assert_eq!(f.line_text(99), "");
    }
}
