//! Per-file analysis context: crate classification, `#[cfg(test)]` /
//! `#[test]` region detection, and suppression-comment parsing.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Which target class a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`src/**`, excluding `src/bin/**` and `src/main.rs`).
    Lib,
    /// Binary source (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`).
    Tests,
    /// Benchmarks (`benches/**`).
    Benches,
    /// Examples (`examples/**`).
    Examples,
    /// A `build.rs` build script.
    Build,
}

/// Path-derived metadata for one file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Crate name from the path (`crates/<name>/...`), or the facade
    /// crate name for files at the workspace root.
    pub crate_name: String,
    /// Target class, see [`FileClass`].
    pub class: FileClass,
    /// Whether the file is a crate root (`src/lib.rs` or `src/main.rs`).
    pub is_crate_root: bool,
}

/// The name used for files belonging to the workspace-root facade crate.
pub const ROOT_CRATE: &str = "preview-tables";

impl FileMeta {
    /// Classifies a workspace-relative path (with `/` separators).
    pub fn from_path(path: &str) -> Self {
        let (crate_name, rest) = match path.strip_prefix("crates/") {
            Some(tail) => match tail.split_once('/') {
                Some((name, rest)) => (name.to_string(), rest.to_string()),
                None => (tail.to_string(), String::new()),
            },
            None => (ROOT_CRATE.to_string(), path.to_string()),
        };
        let class = if rest == "build.rs" {
            FileClass::Build
        } else if rest == "src/main.rs" || rest.starts_with("src/bin/") {
            FileClass::Bin
        } else if rest.starts_with("src/") {
            FileClass::Lib
        } else if rest.starts_with("tests/") {
            FileClass::Tests
        } else if rest.starts_with("benches/") {
            FileClass::Benches
        } else if rest.starts_with("examples/") {
            FileClass::Examples
        } else {
            FileClass::Lib
        };
        let is_crate_root = rest == "src/lib.rs" || rest == "src/main.rs";
        Self {
            crate_name,
            class,
            is_crate_root,
        }
    }
}

/// A parsed suppression comment.
///
/// Two forms are recognised, each applying to findings on the same line
/// as the comment or on the line immediately below it:
///
/// * `// lint: allow(<rule-id>, <reason>)` — suppress `<rule-id>`.
/// * `// lint: ordering-ok(<reason>)` — shorthand accepted by the
///   `atomic-ordering-annotation` rule; annotating an atomic-ordering
///   site with its correctness argument *is* the compliance mechanism.
///
/// For file-scope rules (crate-root attribute checks) a suppression
/// anywhere in the file applies.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id being suppressed.
    pub rule: String,
    /// Free-text justification captured from the comment.
    pub reason: String,
    /// 1-based line the comment starts on.
    pub line: usize,
}

/// Everything rules need to analyse one file.
#[derive(Debug)]
pub struct FileContext {
    /// The file being analysed.
    pub file: SourceFile,
    /// Full token stream, including whitespace and comments.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Path-derived metadata.
    pub meta: FileMeta,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Byte ranges of `use ...;` declarations.
    pub use_ranges: Vec<(usize, usize)>,
    /// Suppression comments found in the file.
    pub suppressions: Vec<Suppression>,
}

impl FileContext {
    /// Lexes and classifies `file`.
    pub fn build(file: SourceFile) -> Self {
        let tokens = crate::lexer::lex(&file.text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.is_significant())
            .map(|(i, _)| i)
            .collect();
        let meta = FileMeta::from_path(&file.path);
        let test_regions = find_test_regions(&file.text, &tokens, &sig);
        let use_ranges = find_use_ranges(&file.text, &tokens, &sig);
        let suppressions = find_suppressions(&file, &tokens);
        Self {
            file,
            tokens,
            sig,
            meta,
            test_regions,
            use_ranges,
            suppressions,
        }
    }

    /// Whether a byte offset falls inside a test-only region.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Whether a byte offset falls inside a `use ...;` declaration.
    pub fn in_use_decl(&self, offset: usize) -> bool {
        self.use_ranges
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// The text of the significant token at `sig[i]`, or `""` out of range.
    pub fn sig_text(&self, i: usize) -> &str {
        match self.sig.get(i) {
            Some(&t) => self.tokens[t].text(&self.file.text),
            None => "",
        }
    }

    /// The kind of the significant token at `sig[i]`.
    pub fn sig_kind(&self, i: usize) -> Option<TokenKind> {
        self.sig.get(i).map(|&t| self.tokens[t].kind)
    }

    /// The token behind significant index `i`.
    pub fn sig_token(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&t| &self.tokens[t])
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }
}

/// Finds byte ranges of items gated by a test attribute: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, ...))]` and similar. An attribute
/// counts as test-gated when the identifier `test` appears in it outside
/// any `not(...)` group, so `#[cfg(not(test))]` does *not* create a test
/// region. The region runs from the attribute to the end of the item it
/// decorates: the matching `}` of the first `{` block, or the first `;`
/// if one appears before any block.
fn find_test_regions(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let text = |i: usize| tokens[sig[i]].text(src);
    let mut i = 0usize;
    while i < sig.len() {
        if text(i) != "#" {
            i += 1;
            continue;
        }
        // Inner attributes (`#![...]`) configure the enclosing item, not a
        // following one; skip them.
        let mut j = i + 1;
        if j < sig.len() && text(j) == "!" {
            i += 1;
            continue;
        }
        if j >= sig.len() || text(j) != "[" {
            i += 1;
            continue;
        }
        // Scan the attribute body, tracking bracket depth and `not(...)`
        // paren groups.
        let mut depth = 1usize; // count of open ( and [
        let mut not_depths: Vec<usize> = Vec::new();
        let mut is_test_attr = false;
        j += 1;
        while j < sig.len() && depth > 0 {
            let t = text(j);
            match t {
                "[" | "(" => {
                    depth += 1;
                }
                "]" | ")" => {
                    if not_depths.last() == Some(&depth) {
                        not_depths.pop();
                    }
                    depth -= 1;
                }
                "not" if text(j + 1) == "(" => {
                    // The group being opened next has depth `depth + 1`.
                    not_depths.push(depth + 1);
                }
                "test" if not_depths.is_empty() => {
                    is_test_attr = true;
                }
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // `j` now points just past the closing `]`. Skip any further
        // attributes, then extend over the decorated item.
        let region_start = tokens[sig[i]].start;
        let mut k = j;
        while k + 1 < sig.len() && text(k) == "#" && text(k + 1) == "[" {
            let mut d = 1usize;
            k += 2;
            while k < sig.len() && d > 0 {
                match text(k) {
                    "[" | "(" => d += 1,
                    "]" | ")" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        let mut brace_depth = 0usize;
        let mut entered = false;
        // A decorated struct/enum field has no `;` and no body of its own —
        // it ends at a top-level `,` (or at the enclosing `}`). Item
        // keywords mean a `,` is part of a signature (params, where clauses)
        // instead, and `,` inside `(...)`/`[...]` groups never terminates.
        let mut seen_item_kw = false;
        let mut paren_depth = 0usize;
        let mut region_end = src.len();
        while k < sig.len() {
            match text(k) {
                "fn" | "struct" | "enum" | "union" | "trait" | "impl" | "mod" | "macro_rules" => {
                    seen_item_kw = true;
                }
                "(" | "[" => {
                    paren_depth += 1;
                }
                ")" | "]" => {
                    paren_depth = paren_depth.saturating_sub(1);
                }
                "{" => {
                    brace_depth += 1;
                    entered = true;
                }
                "}" => {
                    if !entered {
                        // Enclosing block's close: the decorated field ended
                        // just before it.
                        region_end = tokens[sig[k]].start;
                        break;
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                    if brace_depth == 0 {
                        region_end = tokens[sig[k]].end;
                        k += 1;
                        break;
                    }
                }
                ";" if !entered => {
                    region_end = tokens[sig[k]].end;
                    k += 1;
                    break;
                }
                "," if !entered && !seen_item_kw && paren_depth == 0 => {
                    region_end = tokens[sig[k]].end;
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((region_start, region_end));
        i = k;
    }
    regions
}

/// Finds byte ranges of `use ...;` declarations so that, e.g., the
/// wall-clock rule does not flag `use std::time::Instant;` import lines.
fn find_use_ranges(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let text = |i: usize| tokens[sig[i]].text(src);
    let mut i = 0usize;
    while i < sig.len() {
        if text(i) == "use" {
            let start = tokens[sig[i]].start;
            let mut j = i + 1;
            while j < sig.len() && text(j) != ";" {
                j += 1;
            }
            let end = if j < sig.len() {
                tokens[sig[j]].end
            } else {
                src.len()
            };
            ranges.push((start, end));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Parses suppression comments. Only comments whose text (after the
/// comment markers) starts with `lint:` are considered, so prose that
/// merely mentions the syntax is ignored.
fn find_suppressions(file: &SourceFile, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let raw = t.text(&file.text);
        let body = raw
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (line, _) = file.line_col(t.start);
        if let Some(args) = strip_call(rest, "allow") {
            let (rule, reason) = match args.split_once(',') {
                Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
                None => (args.trim().to_string(), String::new()),
            };
            if !rule.is_empty() {
                out.push(Suppression { rule, reason, line });
            }
        } else if let Some(reason) = strip_call(rest, "ordering-ok") {
            out.push(Suppression {
                rule: crate::rules::ATOMIC_ORDERING_RULE.to_string(),
                reason: reason.trim().to_string(),
                line,
            });
        }
    }
    out
}

/// If `s` looks like `name(<args>)...`, returns `<args>` up to the
/// matching close paren.
fn strip_call<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    let tail = s.strip_prefix(name)?;
    let tail = tail.trim_start();
    let inner = tail.strip_prefix('(')?;
    let mut depth = 1usize;
    for (i, c) in inner.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&inner[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileContext {
        FileContext::build(SourceFile::new(path.into(), src.into()))
    }

    #[test]
    fn classifies_paths() {
        let m = FileMeta::from_path("crates/preview-core/src/par.rs");
        assert_eq!(m.crate_name, "preview-core");
        assert_eq!(m.class, FileClass::Lib);
        assert!(!m.is_crate_root);

        let m = FileMeta::from_path("crates/bench/src/bin/graph-bench.rs");
        assert_eq!(m.class, FileClass::Bin);

        let m = FileMeta::from_path("crates/preview-obs/src/lib.rs");
        assert!(m.is_crate_root);

        let m = FileMeta::from_path("src/lib.rs");
        assert_eq!(m.crate_name, ROOT_CRATE);
        assert!(m.is_crate_root);

        let m = FileMeta::from_path("crates/eval/tests/harness.rs");
        assert_eq!(m.class, FileClass::Tests);
        let m = FileMeta::from_path("examples/quickstart.rs");
        assert_eq!(m.class, FileClass::Examples);
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let c = ctx("crates/x/src/a.rs", src);
        let inner = src.find("inner").unwrap();
        let live = src.find("live").unwrap();
        let after = src.find("after").unwrap();
        assert!(c.in_test(inner));
        assert!(!c.in_test(live));
        assert!(!c.in_test(after));
    }

    #[test]
    fn test_fn_and_not_test_cfg() {
        let src = "#[test]\nfn t() { body(); }\n#[cfg(not(test))]\nfn live() { x(); }\n";
        let c = ctx("crates/x/src/a.rs", src);
        assert!(c.in_test(src.find("body").unwrap()));
        assert!(!c.in_test(src.find("x()").unwrap()));
    }

    #[test]
    fn cfg_all_test_is_a_region() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m { fn g() {} }\nfn live() {}\n";
        let c = ctx("crates/x/src/a.rs", src);
        assert!(c.in_test(src.find("g()").unwrap()));
        assert!(!c.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn attr_then_statement_without_braces() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let c = ctx("crates/x/src/a.rs", src);
        assert!(c.in_test(src.find("bar").unwrap()));
        assert!(!c.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn use_ranges_found() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let c = ctx("crates/x/src/a.rs", src);
        assert!(c.in_use_decl(src.find("Instant").unwrap()));
        assert!(!c.in_use_decl(src.rfind("Instant").unwrap()));
    }

    #[test]
    fn parses_suppressions() {
        let src = "\
// lint: allow(wall-clock, latency budget needs wall time)
fn f() {}
let x = 1; // lint: ordering-ok(monotonic counter, no ordering needed)
// not a suppression: mentions lint: allow syntax in prose? no — prefix rule
";
        let c = ctx("crates/x/src/a.rs", src);
        assert_eq!(c.suppressions.len(), 2);
        assert_eq!(c.suppressions[0].rule, "wall-clock");
        assert_eq!(c.suppressions[0].line, 1);
        assert_eq!(c.suppressions[0].reason, "latency budget needs wall time");
        assert_eq!(c.suppressions[1].rule, crate::rules::ATOMIC_ORDERING_RULE);
        assert_eq!(c.suppressions[1].line, 3);
    }

    #[test]
    fn prose_mentioning_lint_is_not_a_suppression() {
        let src = "// use the form lint: allow(id, reason) to suppress\nfn f() {}\n";
        let c = ctx("crates/x/src/a.rs", src);
        assert!(c.suppressions.is_empty());
    }
}
