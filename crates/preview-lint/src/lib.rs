//! `preview-lint`: a workspace-aware static-analysis pass that proves
//! the determinism and concurrency invariants the rest of the workspace
//! only tests for.
//!
//! The paper's exact-optimality guarantees (Theorems 4.1/5.1 of Yan et
//! al., SIGMOD 2016) survive in this codebase only because every engine
//! is bitwise-deterministic. The invariants that make that true — no
//! iteration-order-sensitive float accumulation, no wall-clock reads in
//! engine code, disciplined atomic orderings in the seqlock recorder and
//! worker-token budget, no tracing inside `FjPool` closures — used to be
//! enforced by after-the-fact runtime goldens and comments. This crate
//! turns them into a machine-checked CI gate.
//!
//! # Design
//!
//! The tool is std-only: it lexes Rust with its own small tokenizer
//! ([`lexer`]) rather than `syn`, consistent with the workspace's
//! vendored-dependency constraint. Rules ([`rules`]) walk the token
//! stream with per-file context ([`context`]): crate classification from
//! the path, `#[cfg(test)]` / `#[test]` region detection, and
//! suppression comments. The driver ([`workspace`]) runs every rule over
//! every file, resolves suppressions, and produces a machine-readable
//! [`report::Report`] (`LINT_REPORT.json` in CI).
//!
//! # Suppression syntax
//!
//! * `// lint: allow(<rule-id>, <reason>)` — on the offending line or
//!   the line above.
//! * `// lint: ordering-ok(<reason>)` — shorthand for the
//!   `atomic-ordering-annotation` rule: annotating an atomic site with
//!   its correctness argument *is* the compliance mechanism.
//!
//! Crate-root rules (`forbid-unsafe`, `deny-missing-docs`) accept a
//! suppression anywhere in the file. Suppressions that match no finding
//! are listed in the report's `unused_suppressions` inventory.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use report::Report;
pub use source::SourceFile;
pub use workspace::{analyze, analyze_workspace};
