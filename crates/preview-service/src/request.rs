//! Typed request / response API of the preview service.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use preview_core::{
    brute_force_subset_count, AprioriDiscovery, BestFirstDiscovery, BruteForceDiscovery,
    DynamicProgrammingDiscovery, KeyScoring, NonKeyScoring, Preview, PreviewDiscovery,
    PreviewSpace, ScoringConfig,
};

/// Subset-count estimate above which [`Algorithm::Auto`] prefers the
/// best-first branch-and-bound over the Apriori join on distance-constrained
/// spaces. Below this, level-wise candidate growth over a small lattice is
/// cheap and cache-friendly; above it, enumeration-style growth dominates the
/// latency budget while best-first typically expands a small fraction of the
/// lattice before its optimality proof closes (`anytime-bench` enforces the
/// ratio).
pub const BEST_FIRST_AUTO_THRESHOLD: u128 = 20_000;

/// Which discovery algorithm a request asks for.
///
/// [`Algorithm::Auto`] picks the asymptotically best exact algorithm for the
/// requested space: dynamic programming for concise previews (Alg. 2 is
/// polynomial but concise-only), and for tight / diverse previews either
/// Apriori (Alg. 3, small spaces) or best-first branch-and-bound (large
/// spaces — see [`BEST_FIRST_AUTO_THRESHOLD`]). Explicit choices are
/// honoured verbatim, so a request can still pin the brute force for
/// cross-checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Algorithm {
    /// Pick the best exact algorithm for the requested space.
    #[default]
    Auto,
    /// Alg. 1: exhaustive enumeration, any space.
    BruteForce,
    /// Alg. 2: dynamic programming, concise spaces only.
    DynamicProgramming,
    /// Alg. 3: Apriori-style candidate growth, tight / diverse spaces.
    Apriori,
    /// Best-first branch-and-bound with admissible bounds, any space; the
    /// only engine that honours an anytime node budget
    /// ([`PreviewRequest::node_budget`]).
    BestFirst,
}

impl Algorithm {
    /// Resolves the request-level choice to a concrete algorithm for `space`,
    /// without a schema-size estimate: `Auto` keeps its legacy mapping
    /// (dynamic programming / Apriori). The serving engine resolves through
    /// [`resolve_for`](Self::resolve_for) with the registered graph's type
    /// count instead.
    pub fn resolve(self, space: &PreviewSpace) -> ResolvedAlgorithm {
        self.resolve_for(space, 0)
    }

    /// Resolves the request-level choice to a concrete algorithm for `space`,
    /// where `type_estimate` is an upper bound on the number of eligible
    /// entity types (the serving engine passes the schema's type count —
    /// cheap, deterministic per version, and available without scoring).
    ///
    /// `Auto` on a distance-constrained space prefers best-first once the
    /// `C(type_estimate, k)` subset count exceeds
    /// [`BEST_FIRST_AUTO_THRESHOLD`]; both resolutions are exact, so the
    /// heuristic only affects latency, never results.
    pub fn resolve_for(self, space: &PreviewSpace, type_estimate: usize) -> ResolvedAlgorithm {
        match self {
            Algorithm::Auto => match space {
                PreviewSpace::Concise(_) => ResolvedAlgorithm::DynamicProgramming,
                PreviewSpace::Tight(..) | PreviewSpace::Diverse(..) => {
                    let subsets = brute_force_subset_count(type_estimate, space.size().tables);
                    if subsets > BEST_FIRST_AUTO_THRESHOLD {
                        ResolvedAlgorithm::BestFirst
                    } else {
                        ResolvedAlgorithm::Apriori
                    }
                }
            },
            Algorithm::BruteForce => ResolvedAlgorithm::BruteForce,
            Algorithm::DynamicProgramming => ResolvedAlgorithm::DynamicProgramming,
            Algorithm::Apriori => ResolvedAlgorithm::Apriori,
            Algorithm::BestFirst => ResolvedAlgorithm::BestFirst,
        }
    }
}

/// A concrete discovery algorithm after [`Algorithm::Auto`] resolution.
///
/// This is what the result cache keys on, so `Auto` and an equivalent
/// explicit choice share cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResolvedAlgorithm {
    /// Alg. 1.
    BruteForce,
    /// Alg. 2.
    DynamicProgramming,
    /// Alg. 3.
    Apriori,
    /// Best-first branch-and-bound (this work).
    BestFirst,
}

impl ResolvedAlgorithm {
    /// Instantiates the discovery implementation.
    pub fn discovery(self) -> Box<dyn PreviewDiscovery> {
        match self {
            ResolvedAlgorithm::BruteForce => Box::new(BruteForceDiscovery::new()),
            ResolvedAlgorithm::DynamicProgramming => Box::new(DynamicProgrammingDiscovery::new()),
            ResolvedAlgorithm::Apriori => Box::new(AprioriDiscovery::new()),
            ResolvedAlgorithm::BestFirst => Box::new(BestFirstDiscovery::new()),
        }
    }

    /// The algorithm's stable name (matches [`PreviewDiscovery::name`]).
    pub fn name(self) -> &'static str {
        match self {
            ResolvedAlgorithm::BruteForce => "brute-force",
            ResolvedAlgorithm::DynamicProgramming => "dynamic-programming",
            ResolvedAlgorithm::Apriori => "apriori",
            ResolvedAlgorithm::BestFirst => "best-first",
        }
    }
}

/// One preview request against a registered graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreviewRequest {
    /// Name of the registered graph.
    pub graph: String,
    /// Specific version, or `None` for the latest registered version.
    pub version: Option<u32>,
    /// The constraint space (concise / tight / diverse with `(k, n)` bounds).
    pub space: PreviewSpace,
    /// Discovery algorithm choice.
    pub algorithm: Algorithm,
    /// Key / non-key scoring configuration.
    pub scoring: ScoringConfig,
    /// Anytime node budget: when set, discovery runs the best-first engine
    /// with this expansion budget (overriding [`algorithm`](Self::algorithm))
    /// and may return a sub-optimal incumbent — the response then carries
    /// [`PreviewResponse::optimality_gap`]. Budgeted requests bypass the
    /// result cache entirely, so a non-optimal incumbent is never served
    /// where an optimal preview is expected. `None` (the default) means
    /// exact discovery.
    pub node_budget: Option<u64>,
}

impl PreviewRequest {
    /// A concise request with default (coverage / coverage) scoring against
    /// the latest version of `graph`.
    pub fn new(graph: impl Into<String>, space: PreviewSpace) -> Self {
        Self {
            graph: graph.into(),
            version: None,
            space,
            algorithm: Algorithm::Auto,
            scoring: ScoringConfig::coverage(),
            node_budget: None,
        }
    }

    /// Makes this an anytime request with a best-first node budget (see
    /// [`PreviewRequest::node_budget`]).
    pub fn with_node_budget(mut self, nodes: u64) -> Self {
        self.node_budget = Some(nodes);
        self
    }

    /// Sets an explicit graph version.
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = Some(version);
        self
    }

    /// Sets an explicit algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the scoring configuration.
    pub fn with_scoring(mut self, scoring: ScoringConfig) -> Self {
        self.scoring = scoring;
        self
    }

    /// Sets the fork-join thread budget for scoring and discovery (`0` =
    /// auto, `1` = sequential, `t` = at most `t` workers).
    ///
    /// The budget is carried on [`ScoringConfig::threads`]; it never changes
    /// the served preview (parallel reductions merge in index order), so it
    /// is excluded from the result-cache key — a `threads = 4` request and a
    /// sequential one share cache entries.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.scoring.threads = threads;
        self
    }
}

/// Hashable canonicalisation of a [`ScoringConfig`].
///
/// `ScoringConfig` carries `f64` random-walk parameters, so it is not `Eq` /
/// `Hash`; the key stores their bit patterns instead. When key scoring is not
/// random walk the parameters are irrelevant to the result and are zeroed so
/// configurations that differ only in unused parameters share cache entries.
/// The `threads` knob is deliberately absent: the fork-join layer guarantees
/// byte-identical output at any thread count, so requests that differ only
/// in parallelism share cache entries and memoized scoring.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScoringKey {
    key: KeyScoring,
    non_key: NonKeyScoring,
    jump_bits: u64,
    tolerance_bits: u64,
    max_iterations: usize,
}

impl From<&ScoringConfig> for ScoringKey {
    fn from(config: &ScoringConfig) -> Self {
        let (jump_bits, tolerance_bits, max_iterations) = match config.key {
            KeyScoring::RandomWalk => (
                config.random_walk.jump.to_bits(),
                config.random_walk.tolerance.to_bits(),
                config.random_walk.max_iterations,
            ),
            KeyScoring::Coverage => (0, 0, 0),
        };
        Self {
            key: config.key,
            non_key: config.non_key,
            jump_bits,
            tolerance_bits,
            max_iterations,
        }
    }
}

/// Key of the result cache: everything that determines a discovery result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Graph name.
    pub graph: String,
    /// Concrete graph version (requests for "latest" are resolved first, so
    /// a new version naturally misses the old version's entries).
    pub version: u32,
    /// Canonicalised scoring configuration.
    pub scoring: ScoringKey,
    /// The constraint space.
    pub space: PreviewSpace,
    /// The resolved algorithm.
    pub algorithm: ResolvedAlgorithm,
}

/// An immutable discovery result as stored in the cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedPreview {
    /// The optimal preview, or `None` when the space is empty.
    pub preview: Option<Preview>,
    /// Its score under the request's scoring configuration (0.0 for `None`).
    pub score: f64,
}

/// The service's answer to one [`PreviewRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreviewResponse {
    /// Graph name the request resolved to.
    pub graph: String,
    /// Concrete graph version the request resolved to.
    pub version: u32,
    /// The algorithm that was (or would have been) run.
    pub algorithm: ResolvedAlgorithm,
    /// The optimal preview, or `None` when the space is empty.
    pub preview: Option<Preview>,
    /// The preview's score (Eq. 1), `0.0` when `preview` is `None`.
    pub score: f64,
    /// Whether the result was served without running discovery on this
    /// call: an LRU cache hit, or a concurrent identical request's
    /// in-flight computation that this request shared.
    pub cache_hit: bool,
    /// Time spent waiting in the request queue (zero for inline execution).
    pub queue_wait: Duration,
    /// Time spent resolving + computing (or fetching) the result.
    pub compute: Duration,
    /// `Some(gap)` for anytime (budgeted) results: the difference between
    /// the best-first upper bound on the optimal score and the served
    /// incumbent's score. `None` for exact results. A gap of `0.0` still
    /// means "not proven optimal" — the budget expired at the moment the
    /// frontier bound met the incumbent.
    pub optimality_gap: Option<f64>,
    /// The request's trace id, when it was served through the worker pool
    /// (inline execution has no ingress sequence number and carries
    /// `None`). Joins the response to its retained trace tree and to
    /// histogram exemplars in the observability snapshot.
    pub trace: Option<preview_obs::TraceId>,
}

impl PreviewResponse {
    /// Total latency observed by the client: queue wait plus compute.
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.compute
    }
}

/// Convenience alias for service results.
pub type ServiceResult<T> = std::result::Result<T, ServiceError>;

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The requested graph name / version is not registered.
    GraphNotFound {
        /// Requested graph name.
        graph: String,
        /// Requested version (`None` = latest).
        version: Option<u32>,
    },
    /// The bounded request queue is full (backpressure signal).
    QueueFull,
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker processing the request disappeared before replying.
    WorkerLost,
    /// Request handling panicked; the worker survived and the panic message
    /// is forwarded to the caller.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Scoring or discovery failed (e.g. dynamic programming asked to solve
    /// a distance-constrained space).
    Discovery(preview_core::Error),
    /// A published [`GraphDelta`](entity_graph::GraphDelta) was rejected by
    /// the graph layer (duplicate entity, entity still referenced, missing
    /// edge, …); the current version is left untouched.
    Delta(entity_graph::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::GraphNotFound { graph, version } => match version {
                Some(v) => write!(f, "graph {graph:?} version {v} is not registered"),
                None => write!(f, "graph {graph:?} is not registered"),
            },
            ServiceError::QueueFull => write!(f, "request queue is full"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::WorkerLost => write!(f, "worker terminated before replying"),
            ServiceError::Panicked { message } => {
                write!(f, "request handling panicked: {message}")
            }
            ServiceError::Discovery(e) => write!(f, "discovery failed: {e}"),
            ServiceError::Delta(e) => write!(f, "delta rejected: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Discovery(e) => Some(e),
            ServiceError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<preview_core::Error> for ServiceError {
    fn from(e: preview_core::Error) -> Self {
        ServiceError::Discovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_per_space() {
        let concise = PreviewSpace::concise(2, 6).unwrap();
        let tight = PreviewSpace::tight(2, 6, 2).unwrap();
        let diverse = PreviewSpace::diverse(2, 6, 3).unwrap();
        assert_eq!(
            Algorithm::Auto.resolve(&concise),
            ResolvedAlgorithm::DynamicProgramming
        );
        assert_eq!(Algorithm::Auto.resolve(&tight), ResolvedAlgorithm::Apriori);
        assert_eq!(
            Algorithm::Auto.resolve(&diverse),
            ResolvedAlgorithm::Apriori
        );
        assert_eq!(
            Algorithm::BruteForce.resolve(&concise),
            ResolvedAlgorithm::BruteForce
        );
    }

    #[test]
    fn resolved_names_match_discovery_impls() {
        for algo in [
            ResolvedAlgorithm::BruteForce,
            ResolvedAlgorithm::DynamicProgramming,
            ResolvedAlgorithm::Apriori,
            ResolvedAlgorithm::BestFirst,
        ] {
            assert_eq!(algo.discovery().name(), algo.name());
        }
    }

    #[test]
    fn auto_prefers_best_first_on_large_distance_spaces() {
        let diverse = PreviewSpace::diverse(3, 6, 2).unwrap();
        let concise = PreviewSpace::concise(3, 6).unwrap();
        // C(8, 3) = 56 ≤ threshold: small schemas stay on Apriori.
        assert_eq!(
            Algorithm::Auto.resolve_for(&diverse, 8),
            ResolvedAlgorithm::Apriori
        );
        // C(63, 3) = 39711 > threshold: large schemas route to best-first.
        assert_eq!(
            Algorithm::Auto.resolve_for(&diverse, 63),
            ResolvedAlgorithm::BestFirst
        );
        // Concise spaces keep dynamic programming regardless of size.
        assert_eq!(
            Algorithm::Auto.resolve_for(&concise, 63),
            ResolvedAlgorithm::DynamicProgramming
        );
        // Explicit choices are never overridden by the estimate.
        assert_eq!(
            Algorithm::Apriori.resolve_for(&diverse, 63),
            ResolvedAlgorithm::Apriori
        );
        assert_eq!(
            Algorithm::BestFirst.resolve_for(&diverse, 8),
            ResolvedAlgorithm::BestFirst
        );
        // The estimate-free legacy form never picks best-first.
        assert_eq!(
            Algorithm::Auto.resolve(&diverse),
            ResolvedAlgorithm::Apriori
        );
    }

    #[test]
    fn request_builder_sets_node_budget() {
        let space = PreviewSpace::diverse(2, 4, 2).unwrap();
        let request = PreviewRequest::new("wiki", space);
        assert_eq!(request.node_budget, None);
        let budgeted = request.with_node_budget(500);
        assert_eq!(budgeted.node_budget, Some(500));
    }

    #[test]
    fn scoring_key_ignores_unused_random_walk_params() {
        let mut a = ScoringConfig::coverage();
        let mut b = ScoringConfig::coverage();
        b.random_walk.jump = 0.123;
        assert_eq!(ScoringKey::from(&a), ScoringKey::from(&b));

        a.key = KeyScoring::RandomWalk;
        b.key = KeyScoring::RandomWalk;
        assert_ne!(ScoringKey::from(&a), ScoringKey::from(&b));
    }

    #[test]
    fn scoring_key_ignores_the_threads_knob() {
        // Parallelism never changes results, so a `threads = 4` request must
        // share cache entries and memoized scoring with a sequential one.
        let sequential = ScoringConfig::coverage();
        let parallel = ScoringConfig::coverage().with_threads(4);
        assert_ne!(sequential, parallel);
        assert_eq!(ScoringKey::from(&sequential), ScoringKey::from(&parallel));
    }

    #[test]
    fn request_builder_sets_threads() {
        let space = PreviewSpace::concise(1, 2).unwrap();
        let request = PreviewRequest::new("wiki", space).with_threads(8);
        assert_eq!(request.scoring.threads, 8);
    }

    #[test]
    fn request_builder_sets_fields() {
        let space = PreviewSpace::concise(1, 2).unwrap();
        let request = PreviewRequest::new("wiki", space)
            .with_version(3)
            .with_algorithm(Algorithm::BruteForce);
        assert_eq!(request.graph, "wiki");
        assert_eq!(request.version, Some(3));
        assert_eq!(request.algorithm, Algorithm::BruteForce);
    }

    #[test]
    fn errors_display_context() {
        let e = ServiceError::GraphNotFound {
            graph: "wiki".into(),
            version: Some(2),
        };
        assert!(e.to_string().contains("wiki"));
        assert!(e.to_string().contains('2'));
        assert!(ServiceError::QueueFull.to_string().contains("full"));
    }
}
