//! A concurrent, cached preview-serving engine on top of `entity-graph` and
//! `preview-core`.
//!
//! The paper ("Generating Preview Tables for Entity Graphs", SIGMOD 2016)
//! frames preview tables as something users request interactively over big
//! entity graphs. This crate turns the one-shot discovery pipeline into a
//! serving subsystem built on `std` threads only:
//!
//! * [`GraphRegistry`] — named, versioned graphs with per-configuration
//!   [`ScoredSchema`](preview_core::ScoredSchema)s memoized behind `Arc`,
//! * [`PreviewRequest`] / [`PreviewResponse`] — a typed API covering the
//!   concise / tight / diverse spaces, algorithm choice and scoring config,
//! * [`ShardedLruCache`] — a sharded LRU result cache keyed by
//!   `(graph, version, scoring, space, algorithm)` with hit / miss /
//!   eviction counters,
//! * [`PreviewService`] — a fixed-size worker pool with a bounded request
//!   queue, per-request latency capture and a [`ServiceStats`] snapshot
//!   (throughput, p50/p99, cache hit rate),
//! * [`PreviewService::publish_delta`] — batched live graph updates: a
//!   [`GraphDelta`] is spliced onto the latest version (no full rebuild),
//!   memoized scores are carried forward through incremental rescoring,
//!   provably unaffected cache entries survive the version bump, and
//!   superseded versions are pruned to a retention window,
//! * [`PreviewService::snapshot`] — a unified observability export built on
//!   `preview-obs`: per-stage span histograms, the exact service latency
//!   histogram, splice-vs-reshard publish counters, per-shard memory, and
//!   flight-recorder dumps captured on worker panics and slow requests.
//!
//! # Quick start: register a graph, spawn the pool, submit, read stats
//!
//! ```
//! use std::sync::Arc;
//!
//! use entity_graph::fixtures;
//! use preview_core::PreviewSpace;
//! use preview_service::{GraphRegistry, PreviewRequest, PreviewService, ServiceConfig};
//!
//! // 1. Register graphs (the paper's Fig. 1 example here); re-registering
//! //    the same name creates a new version, lookups default to the latest.
//! let registry = Arc::new(GraphRegistry::new());
//! registry.register("fig1", fixtures::figure1_graph());
//!
//! // 2. Spawn the worker pool (4 workers, bounded queue, sharded cache).
//! let service = PreviewService::start(ServiceConfig::default(), Arc::clone(&registry));
//!
//! // 3. Submit requests; identical requests are answered from the cache.
//! let request = PreviewRequest::new("fig1", PreviewSpace::concise(2, 6)?);
//! let response = service.submit(request.clone())?.wait()?;
//! assert!((response.score - 84.0).abs() < 1e-9);
//! let again = service.submit_wait(request)?;
//! assert!(again.cache_hit);
//!
//! // 4. Read the service statistics.
//! let stats = service.stats();
//! assert_eq!(stats.completed, 2);
//! assert_eq!(stats.cache.hits, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod engine;
pub mod registry;
pub mod request;
mod stats;
pub(crate) mod sync;
pub mod worker;

pub use cache::{CacheStats, ShardedLruCache};
pub use engine::{PendingResponse, PreviewService, PublishReport, ServiceConfig};
pub use registry::{DeltaPublish, GraphRegistry, RegisteredGraph, DEFAULT_VERSION_RETENTION};
pub use request::{
    Algorithm, CacheKey, CachedPreview, PreviewRequest, PreviewResponse, ResolvedAlgorithm,
    ScoringKey, ServiceError, ServiceResult,
};
pub use stats::ServiceStats;

// Re-exported so callers can build and publish deltas without importing
// `entity-graph` directly.
pub use entity_graph::{DeltaSummary, GraphDelta};

// Re-exported so callers can configure, enable and snapshot the service's
// observability recorder — and its trace-tree, windowed-metrics and SLO
// layers — without importing `preview-obs` directly.
pub use preview_obs::{
    ObsConfig, ObsSnapshot, Recorder, SloSpec, SloStatus, TimeSeriesConfig, TraceId, TraceTree,
};

/// Compile-time guarantees that everything shared across worker threads is
/// `Send + Sync` (and cheaply shareable where `Clone` is claimed). A failure
/// here is a build error, so thread-safety of the serving layer is enforced
/// by the type system rather than by tests.
mod static_assertions {
    #![allow(dead_code)]

    use super::*;

    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}

    const _: () = {
        // Service-layer types shared between the handle and the workers.
        assert_send_sync::<GraphRegistry>();
        assert_send_sync::<RegisteredGraph>();
        assert_send_sync::<PreviewService>();
        assert_send_sync::<ShardedLruCache<CacheKey, std::sync::Arc<CachedPreview>>>();
        // Request / response payloads crossing thread boundaries.
        assert_send_sync_clone::<PreviewRequest>();
        assert_send_sync_clone::<PreviewResponse>();
        assert_send_sync_clone::<CachedPreview>();
        assert_send_sync_clone::<ServiceError>();
        assert_send_sync_clone::<ServiceStats>();
        assert_send_sync_clone::<CacheStats>();
        // Observability: the recorder is shared by every worker thread and
        // snapshots cross thread boundaries to exporters.
        assert_send_sync::<Recorder>();
        assert_send_sync_clone::<ObsSnapshot>();
    };
}
