//! The graph registry: named, versioned entity graphs with memoized
//! per-configuration [`ScoredSchema`]s, all behind `Arc` so worker threads
//! share one copy of every precomputed structure.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use entity_graph::EntityGraph;
use preview_core::{ScoredSchema, ScoringConfig};

use crate::request::{ScoringKey, ServiceError, ServiceResult};

/// The memoized outcome of scoring one graph version under one configuration.
type ScoredSlot = Arc<OnceLock<Result<Arc<ScoredSchema>, preview_core::Error>>>;

/// One immutable registered graph version.
///
/// Scoring is memoized per [`ScoringConfig`]: the first request for a
/// configuration pays [`ScoredSchema::build`] once, every later request —
/// from any worker — shares the resulting `Arc`. A `OnceLock` per
/// configuration ensures concurrent first requests build at most once
/// without holding the registry-wide lock during the build.
#[derive(Debug)]
pub struct RegisteredGraph {
    name: String,
    version: u32,
    graph: Arc<EntityGraph>,
    scored: Mutex<HashMap<ScoringKey, ScoredSlot>>,
}

impl RegisteredGraph {
    fn new(name: String, version: u32, graph: Arc<EntityGraph>) -> Self {
        Self {
            name,
            version,
            graph,
            scored: Mutex::new(HashMap::new()),
        }
    }

    /// The graph's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The version number (starts at 1, increments per registration).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The underlying entity graph.
    pub fn graph(&self) -> &Arc<EntityGraph> {
        &self.graph
    }

    /// Number of scoring configurations already memoized.
    pub fn scored_config_count(&self) -> usize {
        self.scored.lock().expect("scored map lock").len()
    }

    /// Returns the shared [`ScoredSchema`] for `config`, building (and
    /// memoizing) it on first use.
    pub fn scored_for(&self, config: &ScoringConfig) -> ServiceResult<Arc<ScoredSchema>> {
        let key = ScoringKey::from(config);
        let slot = {
            let mut map = self.scored.lock().expect("scored map lock");
            Arc::clone(map.entry(key).or_default())
        };
        // Build outside the map lock: other configurations stay servable
        // while this one scores, and OnceLock still guarantees one build.
        let outcome = slot.get_or_init(|| ScoredSchema::build(&self.graph, config).map(Arc::new));
        match outcome {
            Ok(scored) => Ok(Arc::clone(scored)),
            Err(e) => Err(ServiceError::Discovery(e.clone())),
        }
    }
}

/// A concurrent registry of named, versioned graphs.
///
/// Registering the same name again creates a new version; lookups without an
/// explicit version resolve to the latest. All returned handles are `Arc`s,
/// so a version stays fully usable by in-flight requests even after newer
/// versions supersede it.
#[derive(Debug, Default)]
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, Vec<Arc<RegisteredGraph>>>>,
}

impl GraphRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` under `name`, returning the new version's handle.
    ///
    /// The graph's memoized schema derivation is warmed here, off the request
    /// path, so the first preview request against the new version never pays
    /// it.
    pub fn register(&self, name: impl Into<String>, graph: EntityGraph) -> Arc<RegisteredGraph> {
        let name = name.into();
        graph.schema_graph();
        let mut graphs = self.graphs.write().expect("registry lock");
        let versions = graphs.entry(name.clone()).or_default();
        let version = versions.last().map_or(1, |g| g.version + 1);
        let registered = Arc::new(RegisteredGraph::new(name, version, Arc::new(graph)));
        versions.push(Arc::clone(&registered));
        registered
    }

    /// Registers `graph` and eagerly scores it under each of `configs`, so
    /// the first live requests do not pay the scoring cost.
    pub fn register_precomputed(
        &self,
        name: impl Into<String>,
        graph: EntityGraph,
        configs: &[ScoringConfig],
    ) -> ServiceResult<Arc<RegisteredGraph>> {
        let registered = self.register(name, graph);
        for config in configs {
            registered.scored_for(config)?;
        }
        Ok(registered)
    }

    /// Looks up a graph by name and version (`None` = latest).
    pub fn get(&self, name: &str, version: Option<u32>) -> Option<Arc<RegisteredGraph>> {
        let graphs = self.graphs.read().expect("registry lock");
        let versions = graphs.get(name)?;
        match version {
            None => versions.last().cloned(),
            Some(v) => versions.iter().find(|g| g.version == v).cloned(),
        }
    }

    /// Like [`get`](Self::get) but with a typed error for the service path.
    pub fn resolve(&self, name: &str, version: Option<u32>) -> ServiceResult<Arc<RegisteredGraph>> {
        self.get(name, version)
            .ok_or_else(|| ServiceError::GraphNotFound {
                graph: name.to_string(),
                version,
            })
    }

    /// The latest version number registered under `name`.
    pub fn latest_version(&self, name: &str) -> Option<u32> {
        self.get(name, None).map(|g| g.version())
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .graphs
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Total number of registered (name, version) pairs.
    pub fn len(&self) -> usize {
        self.graphs
            .read()
            .expect("registry lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures;

    #[test]
    fn versions_increment_and_latest_wins() {
        let registry = GraphRegistry::new();
        let v1 = registry.register("fig1", fixtures::figure1_graph());
        let v2 = registry.register("fig1", fixtures::figure1_graph());
        assert_eq!(v1.version(), 1);
        assert_eq!(v2.version(), 2);
        assert_eq!(registry.latest_version("fig1"), Some(2));
        assert_eq!(registry.get("fig1", None).unwrap().version(), 2);
        assert_eq!(registry.get("fig1", Some(1)).unwrap().version(), 1);
        assert!(registry.get("fig1", Some(3)).is_none());
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["fig1".to_string()]);
    }

    #[test]
    fn resolve_reports_missing_graphs() {
        let registry = GraphRegistry::new();
        let err = registry.resolve("absent", Some(4)).unwrap_err();
        assert_eq!(
            err,
            ServiceError::GraphNotFound {
                graph: "absent".into(),
                version: Some(4),
            }
        );
    }

    #[test]
    fn scoring_is_memoized_per_config() {
        let registry = GraphRegistry::new();
        let graph = registry.register("fig1", fixtures::figure1_graph());
        let config = ScoringConfig::coverage();
        let a = graph.scored_for(&config).unwrap();
        let b = graph.scored_for(&config).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(graph.scored_config_count(), 1);

        let entropy = ScoringConfig::new(
            preview_core::KeyScoring::Coverage,
            preview_core::NonKeyScoring::Entropy,
        );
        let c = graph.scored_for(&entropy).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(graph.scored_config_count(), 2);
    }

    #[test]
    fn register_precomputed_scores_eagerly() {
        let registry = GraphRegistry::new();
        let graph = registry
            .register_precomputed(
                "fig1",
                fixtures::figure1_graph(),
                &[ScoringConfig::coverage()],
            )
            .unwrap();
        assert_eq!(graph.scored_config_count(), 1);
    }

    #[test]
    fn concurrent_scoring_converges_to_one_instance() {
        let registry = Arc::new(GraphRegistry::new());
        let graph = registry.register("fig1", fixtures::figure1_graph());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let graph = Arc::clone(&graph);
                std::thread::spawn(move || graph.scored_for(&ScoringConfig::coverage()).unwrap())
            })
            .collect();
        let schemas: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for pair in schemas.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }
}
