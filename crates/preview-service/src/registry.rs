//! The graph registry: named, versioned entity graphs with memoized
//! per-configuration [`ScoredSchema`]s, all behind `Arc` so worker threads
//! share one copy of every precomputed structure.
//!
//! Versions advance two ways: [`register`](GraphRegistry::register) swaps in
//! a fully rebuilt graph, while [`publish_delta`](GraphRegistry::publish_delta)
//! splices a [`GraphDelta`] onto the latest version — carrying every
//! memoized scoring configuration forward through the incremental
//! [`rescore_delta`](ScoredSchema::rescore_delta) path — and prunes
//! superseded versions down to the configured retention window so old
//! `Arc<RegisteredGraph>`s can actually drop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};

use entity_graph::{DeltaSummary, EntityGraph, GraphDelta, ShardedGraph, ShardingStrategy};
use preview_core::{ScoredSchema, ScoringConfig};

use crate::request::{ScoringKey, ServiceError, ServiceResult};

/// How many versions of a graph [`publish_delta`](GraphRegistry::publish_delta)
/// keeps by default (the new version included).
pub const DEFAULT_VERSION_RETENTION: usize = 4;

/// The memoized outcome of scoring one graph version under one configuration.
type ScoredSlot = Arc<OnceLock<Result<Arc<ScoredSchema>, preview_core::Error>>>;

/// One memoized scoring configuration: the slot plus the configuration that
/// produced it, kept so a delta publish can re-score it on the next version.
#[derive(Debug)]
struct ScoredEntry {
    config: ScoringConfig,
    slot: ScoredSlot,
}

/// One immutable registered graph version.
///
/// Scoring is memoized per [`ScoringConfig`]: the first request for a
/// configuration pays [`ScoredSchema::build`] once, every later request —
/// from any worker — shares the resulting `Arc`. A `OnceLock` per
/// configuration ensures concurrent first requests build at most once
/// without holding the registry-wide lock during the build.
#[derive(Debug)]
pub struct RegisteredGraph {
    name: String,
    version: u32,
    graph: Arc<EntityGraph>,
    /// Sharded storage for this version, when registered through
    /// [`GraphRegistry::register_sharded`]. The inner `Arc<EntityGraph>` is
    /// the same allocation as `graph`, so the logical graph is never held
    /// twice; scoring routes through the sharded path transparently.
    sharded: Option<Arc<ShardedGraph>>,
    scored: Mutex<HashMap<ScoringKey, ScoredEntry>>,
}

impl RegisteredGraph {
    fn new(
        name: String,
        version: u32,
        graph: Arc<EntityGraph>,
        sharded: Option<Arc<ShardedGraph>>,
    ) -> Self {
        Self {
            name,
            version,
            graph,
            sharded,
            scored: Mutex::new(HashMap::new()),
        }
    }

    /// The graph's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The version number (starts at 1, increments per registration).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The underlying entity graph.
    pub fn graph(&self) -> &Arc<EntityGraph> {
        &self.graph
    }

    /// The sharded storage backing this version, if it was registered
    /// sharded (see [`GraphRegistry::register_sharded`]).
    pub fn sharded(&self) -> Option<&Arc<ShardedGraph>> {
        self.sharded.as_ref()
    }

    /// Number of scoring configurations already memoized.
    pub fn scored_config_count(&self) -> usize {
        lock_unpoisoned(&self.scored).len()
    }

    /// Returns the shared [`ScoredSchema`] for `config`, building (and
    /// memoizing) it on first use.
    pub fn scored_for(&self, config: &ScoringConfig) -> ServiceResult<Arc<ScoredSchema>> {
        let key = ScoringKey::from(config);
        let slot = {
            let mut map = lock_unpoisoned(&self.scored);
            Arc::clone(
                &map.entry(key)
                    .or_insert_with(|| ScoredEntry {
                        config: *config,
                        slot: ScoredSlot::default(),
                    })
                    .slot,
            )
        };
        // Build outside the map lock: other configurations stay servable
        // while this one scores, and OnceLock still guarantees one build.
        // Sharded versions score through cross-shard aggregation, which is
        // bitwise identical to the unsharded path — callers cannot tell the
        // storage layouts apart.
        let outcome = slot.get_or_init(|| match &self.sharded {
            Some(sharded) => ScoredSchema::build_sharded(sharded, config).map(Arc::new),
            None => ScoredSchema::build(&self.graph, config).map(Arc::new),
        });
        match outcome {
            Ok(scored) => Ok(Arc::clone(scored)),
            Err(e) => Err(ServiceError::Discovery(e.clone())),
        }
    }

    /// Every successfully memoized `(config, scored)` pair, in unspecified
    /// order. In-flight (unfinished) builds are skipped.
    fn memoized_scored(&self) -> Vec<(ScoringConfig, Arc<ScoredSchema>)> {
        lock_unpoisoned(&self.scored)
            .values()
            .filter_map(|entry| {
                entry
                    .slot
                    .get()
                    .and_then(|outcome| outcome.as_ref().ok())
                    .map(|scored| (entry.config, Arc::clone(scored)))
            })
            .collect()
    }

    /// Pre-populates the memo with an already-built schema (the delta
    /// publish path seeds the new version with rescored configurations).
    fn seed_scored(&self, config: &ScoringConfig, scored: Arc<ScoredSchema>) {
        let slot = ScoredSlot::default();
        // lint: allow(request-path-unwrap, freshly constructed OnceLock cannot already hold a value)
        slot.set(Ok(scored)).expect("fresh slot accepts one value");
        lock_unpoisoned(&self.scored).insert(
            ScoringKey::from(config),
            ScoredEntry {
                config: *config,
                slot,
            },
        );
    }
}

/// The outcome of a [`GraphRegistry::publish_delta`] call.
#[derive(Debug, Clone)]
pub struct DeltaPublish {
    /// The version now serving "latest" requests — the freshly spliced one,
    /// or the unchanged current version when the delta was empty.
    pub registered: Arc<RegisteredGraph>,
    /// The version that was latest before the publish.
    pub previous_version: u32,
    /// Whether a new version was created (`false` iff the delta was empty).
    pub bumped: bool,
    /// What the delta changed (all-zero when not bumped).
    pub summary: DeltaSummary,
    /// Memoized scoring configurations carried to the new version through
    /// the incremental rescore path.
    pub rescored_configs: usize,
    /// The subset of those configurations whose scores are **bitwise
    /// unchanged** by the delta ([`ScoredSchema::scores_identical`]): any
    /// cached preview under these keys is provably still optimal.
    pub unaffected_configs: Vec<ScoringKey>,
    /// Superseded versions dropped by the retention window.
    pub versions_dropped: usize,
    /// Whether shard storage took the identity splice fast path
    /// (block-copying untouched shards) rather than a full reshard. Always
    /// `true` on the unsharded path, whose CSR splice has no reshard
    /// fallback; `false` only when a sharded delta removed entities.
    pub spliced: bool,
    /// Shards whose storage was rebuilt for this publish (`0` for empty
    /// deltas and unsharded versions).
    pub touched_shards: usize,
}

/// A concurrent registry of named, versioned graphs.
///
/// Registering the same name again creates a new version; lookups without an
/// explicit version resolve to the latest. All returned handles are `Arc`s,
/// so a version stays fully usable by in-flight requests even after newer
/// versions supersede it.
#[derive(Debug)]
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, Vec<Arc<RegisteredGraph>>>>,
    /// Versions kept per name by `publish_delta` (latest included).
    version_retention: AtomicUsize,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        Self {
            graphs: RwLock::new(HashMap::new()),
            version_retention: AtomicUsize::new(DEFAULT_VERSION_RETENTION),
        }
    }
}

impl GraphRegistry {
    /// Creates an empty registry with the default version retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry keeping at most `keep` versions per name on
    /// delta publishes (clamped to ≥ 1).
    pub fn with_retention(keep: usize) -> Self {
        let registry = Self::default();
        registry.set_version_retention(keep);
        registry
    }

    /// Sets the number of versions `publish_delta` retains per name
    /// (clamped to ≥ 1; the latest version is always kept).
    pub fn set_version_retention(&self, keep: usize) {
        // lint: ordering-ok(standalone tuning knob; no other memory is published with it)
        self.version_retention.store(keep.max(1), Ordering::Relaxed);
    }

    /// The current retention window.
    pub fn version_retention(&self) -> usize {
        // lint: ordering-ok(standalone tuning knob; readers need no ordering with other state)
        self.version_retention.load(Ordering::Relaxed)
    }

    /// Registers `graph` under `name`, returning the new version's handle.
    ///
    /// The graph's memoized schema derivation is warmed here, off the request
    /// path, so the first preview request against the new version never pays
    /// it.
    pub fn register(&self, name: impl Into<String>, graph: EntityGraph) -> Arc<RegisteredGraph> {
        self.register_version(name.into(), Arc::new(graph), None)
    }

    /// Registers `graph` under `name` with **sharded** storage: the graph is
    /// partitioned under `strategy` (shards built in parallel on the global
    /// fork-join pool) before the new version goes live, and every scoring
    /// request and delta publish against it runs through the sharded path —
    /// transparently, since all sharded outputs are bitwise identical to the
    /// unsharded ones.
    pub fn register_sharded(
        &self,
        name: impl Into<String>,
        graph: EntityGraph,
        strategy: ShardingStrategy,
    ) -> Arc<RegisteredGraph> {
        let graph = Arc::new(graph);
        let sharded = Arc::new(preview_core::build_sharded(Arc::clone(&graph), strategy, 0));
        self.register_version(name.into(), graph, Some(sharded))
    }

    /// Shared registration tail: warms the schema memo off the request path
    /// and appends the new version under the write lock.
    fn register_version(
        &self,
        name: String,
        graph: Arc<EntityGraph>,
        sharded: Option<Arc<ShardedGraph>>,
    ) -> Arc<RegisteredGraph> {
        graph.schema_graph();
        let mut graphs = write_unpoisoned(&self.graphs);
        let versions = graphs.entry(name.clone()).or_default();
        let version = versions.last().map_or(1, |g| g.version + 1);
        let registered = Arc::new(RegisteredGraph::new(name, version, graph, sharded));
        versions.push(Arc::clone(&registered));
        registered
    }

    /// Registers `graph` and eagerly scores it under each of `configs`, so
    /// the first live requests do not pay the scoring cost.
    pub fn register_precomputed(
        &self,
        name: impl Into<String>,
        graph: EntityGraph,
        configs: &[ScoringConfig],
    ) -> ServiceResult<Arc<RegisteredGraph>> {
        let registered = self.register(name, graph);
        for config in configs {
            registered.scored_for(config)?;
        }
        Ok(registered)
    }

    /// Applies a [`GraphDelta`] to the latest version of `name`, registering
    /// the spliced result as the next version.
    ///
    /// * An **empty delta does not bump the version** — the current handle
    ///   is returned with `bumped == false`.
    /// * Every scoring configuration memoized on the superseded version is
    ///   carried forward through [`ScoredSchema::rescore_delta`], so
    ///   requests against the new version reuse all untouched scores and
    ///   never pay a cold full scoring pass.
    /// * Configurations whose scores come out bitwise identical are reported
    ///   in [`DeltaPublish::unaffected_configs`]; the serving layer uses
    ///   this to retain result-cache entries across the bump.
    /// * Superseded versions beyond the retention window
    ///   ([`set_version_retention`](Self::set_version_retention)) are
    ///   dropped, releasing their memory once in-flight requests finish.
    ///
    /// Concurrent publishes against the same name are safe: splicing and
    /// rescoring run off the registry lock, and registration revalidates
    /// under the write lock that the latest version is still the one the
    /// delta was applied to — if another publish (or `register`) won the
    /// race, the batch is transparently re-applied on top of the new latest,
    /// so no acknowledged edit is ever lost.
    ///
    /// # Errors
    ///
    /// [`ServiceError::GraphNotFound`] if `name` is unknown,
    /// [`ServiceError::Delta`] if the graph layer rejects the batch (the
    /// current version stays untouched), [`ServiceError::Discovery`] if
    /// rescoring a memoized configuration fails.
    pub fn publish_delta(&self, name: &str, delta: &GraphDelta) -> ServiceResult<DeltaPublish> {
        let _span = preview_obs::span!(preview_obs::Stage::Publish, ops = delta.ops().len());
        let mut current = self.resolve(name, None)?;
        if delta.is_empty() {
            return Ok(DeltaPublish {
                previous_version: current.version(),
                bumped: false,
                registered: current,
                summary: DeltaSummary::default(),
                rescored_configs: 0,
                unaffected_configs: Vec::new(),
                versions_dropped: 0,
                spliced: true,
                touched_shards: 0,
            });
        }
        loop {
            // Sharded versions splice through the per-shard path (shards
            // re-spliced in parallel, untouched entities block-copied); the
            // logical outcome and summary are identical either way.
            let (new_graph, new_sharded, summary, spliced, touched_shards) = match current.sharded()
            {
                Some(sharded) => {
                    let applied = preview_core::apply_delta_parallel(sharded, delta, 0)
                        .map_err(ServiceError::Delta)?;
                    (
                        Arc::clone(applied.sharded.graph()),
                        Some(Arc::new(applied.sharded)),
                        applied.summary,
                        applied.spliced,
                        applied.touched_shards,
                    )
                }
                None => {
                    let applied = current
                        .graph()
                        .apply_delta(delta)
                        .map_err(ServiceError::Delta)?;
                    // The unsharded CSR splice is always incremental and
                    // has no per-shard storage to rebuild.
                    (Arc::new(applied.graph), None, applied.summary, true, 0)
                }
            };
            // Warm the schema memo off the request path, like `register`.
            new_graph.schema_graph();
            let mut seeds = Vec::new();
            let mut unaffected_configs = Vec::new();
            for (config, old_scored) in current.memoized_scored() {
                let rescored = Arc::new(
                    old_scored
                        .rescore_delta(&new_graph, &summary)
                        .map_err(ServiceError::Discovery)?,
                );
                if old_scored.scores_identical(&rescored) {
                    unaffected_configs.push(ScoringKey::from(&config));
                }
                seeds.push((config, rescored));
            }
            let rescored_configs = seeds.len();
            let keep = self.version_retention();
            let outcome = {
                let mut graphs = write_unpoisoned(&self.graphs);
                let versions = graphs.entry(name.to_string()).or_default();
                let latest = versions.last().map(|g| g.version);
                if latest != Some(current.version()) {
                    // Lost the race: someone registered or published while we
                    // were splicing. Re-apply the batch on top of the new
                    // latest instead of silently overwriting their edits.
                    versions.last().cloned()
                } else {
                    let version = current.version() + 1;
                    let registered = Arc::new(RegisteredGraph::new(
                        name.to_string(),
                        version,
                        new_graph,
                        new_sharded,
                    ));
                    for (config, scored) in seeds {
                        registered.seed_scored(&config, scored);
                    }
                    versions.push(Arc::clone(&registered));
                    let dropped = versions.len().saturating_sub(keep);
                    versions.drain(..dropped);
                    return Ok(DeltaPublish {
                        registered,
                        previous_version: current.version(),
                        bumped: true,
                        summary,
                        rescored_configs,
                        unaffected_configs,
                        versions_dropped: dropped,
                        spliced,
                        touched_shards,
                    });
                }
            };
            current = outcome.ok_or_else(|| ServiceError::GraphNotFound {
                graph: name.to_string(),
                version: None,
            })?;
        }
    }

    /// Drops all but the newest `keep` versions of `name` (clamped to ≥ 1),
    /// returning how many were dropped. Dropped versions become
    /// unresolvable; their memory is released once the last in-flight `Arc`
    /// goes away.
    pub fn retain_latest(&self, name: &str, keep: usize) -> usize {
        let mut graphs = write_unpoisoned(&self.graphs);
        let Some(versions) = graphs.get_mut(name) else {
            return 0;
        };
        let dropped = versions.len().saturating_sub(keep.max(1));
        versions.drain(..dropped);
        dropped
    }

    /// Looks up a graph by name and version (`None` = latest).
    pub fn get(&self, name: &str, version: Option<u32>) -> Option<Arc<RegisteredGraph>> {
        let graphs = read_unpoisoned(&self.graphs);
        let versions = graphs.get(name)?;
        match version {
            None => versions.last().cloned(),
            Some(v) => versions.iter().find(|g| g.version == v).cloned(),
        }
    }

    /// Like [`get`](Self::get) but with a typed error for the service path.
    pub fn resolve(&self, name: &str, version: Option<u32>) -> ServiceResult<Arc<RegisteredGraph>> {
        self.get(name, version)
            .ok_or_else(|| ServiceError::GraphNotFound {
                graph: name.to_string(),
                version,
            })
    }

    /// The latest version number registered under `name`.
    pub fn latest_version(&self, name: &str) -> Option<u32> {
        self.get(name, None).map(|g| g.version())
    }

    /// The resolvable version numbers of `name`, ascending.
    pub fn versions(&self, name: &str) -> Vec<u32> {
        read_unpoisoned(&self.graphs)
            .get(name)
            .map(|versions| versions.iter().map(|g| g.version).collect())
            .unwrap_or_default()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_unpoisoned(&self.graphs).keys().cloned().collect();
        names.sort();
        names
    }

    /// Total number of registered (name, version) pairs.
    pub fn len(&self) -> usize {
        read_unpoisoned(&self.graphs).values().map(Vec::len).sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures;
    use std::sync::Weak;

    #[test]
    fn versions_increment_and_latest_wins() {
        let registry = GraphRegistry::new();
        let v1 = registry.register("fig1", fixtures::figure1_graph());
        let v2 = registry.register("fig1", fixtures::figure1_graph());
        assert_eq!(v1.version(), 1);
        assert_eq!(v2.version(), 2);
        assert_eq!(registry.latest_version("fig1"), Some(2));
        assert_eq!(registry.get("fig1", None).unwrap().version(), 2);
        assert_eq!(registry.get("fig1", Some(1)).unwrap().version(), 1);
        assert!(registry.get("fig1", Some(3)).is_none());
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["fig1".to_string()]);
        assert_eq!(registry.versions("fig1"), vec![1, 2]);
    }

    #[test]
    fn resolve_reports_missing_graphs() {
        let registry = GraphRegistry::new();
        let err = registry.resolve("absent", Some(4)).unwrap_err();
        assert_eq!(
            err,
            ServiceError::GraphNotFound {
                graph: "absent".into(),
                version: Some(4),
            }
        );
    }

    #[test]
    fn scoring_is_memoized_per_config() {
        let registry = GraphRegistry::new();
        let graph = registry.register("fig1", fixtures::figure1_graph());
        let config = ScoringConfig::coverage();
        let a = graph.scored_for(&config).unwrap();
        let b = graph.scored_for(&config).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(graph.scored_config_count(), 1);

        let entropy = ScoringConfig::new(
            preview_core::KeyScoring::Coverage,
            preview_core::NonKeyScoring::Entropy,
        );
        let c = graph.scored_for(&entropy).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(graph.scored_config_count(), 2);
    }

    #[test]
    fn register_precomputed_scores_eagerly() {
        let registry = GraphRegistry::new();
        let graph = registry
            .register_precomputed(
                "fig1",
                fixtures::figure1_graph(),
                &[ScoringConfig::coverage()],
            )
            .unwrap();
        assert_eq!(graph.scored_config_count(), 1);
    }

    #[test]
    fn concurrent_scoring_converges_to_one_instance() {
        let registry = Arc::new(GraphRegistry::new());
        let graph = registry.register("fig1", fixtures::figure1_graph());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let graph = Arc::clone(&graph);
                std::thread::spawn(move || graph.scored_for(&ScoringConfig::coverage()).unwrap())
            })
            .collect();
        let schemas: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for pair in schemas.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }

    #[test]
    fn retain_latest_drops_old_versions_and_releases_memory() {
        let registry = GraphRegistry::new();
        for _ in 0..4 {
            registry.register("fig1", fixtures::figure1_graph());
        }
        let old: Weak<RegisteredGraph> = Arc::downgrade(&registry.get("fig1", Some(1)).unwrap());
        assert!(old.upgrade().is_some());
        assert_eq!(registry.retain_latest("fig1", 2), 2);
        // Old versions are no longer resolvable...
        assert!(registry.get("fig1", Some(1)).is_none());
        assert!(registry.get("fig1", Some(2)).is_none());
        assert_eq!(registry.versions("fig1"), vec![3, 4]);
        assert_eq!(registry.latest_version("fig1"), Some(4));
        // ...and their memory is actually released (the weak handle is the
        // only reference left).
        assert!(old.upgrade().is_none());
        // Unknown names and generous windows are no-ops.
        assert_eq!(registry.retain_latest("absent", 1), 0);
        assert_eq!(registry.retain_latest("fig1", 10), 0);
    }

    #[test]
    fn publish_delta_bumps_and_carries_memoized_configs() {
        let registry = GraphRegistry::new();
        registry
            .register_precomputed(
                "fig1",
                fixtures::figure1_graph(),
                &[ScoringConfig::coverage()],
            )
            .unwrap();
        let mut delta = entity_graph::GraphDelta::new();
        delta.add_entity("Bad Boys", &["FILM"]).add_edge(
            "Will Smith",
            "Actor",
            "Bad Boys",
            "FILM ACTOR",
            "FILM",
        );
        let publish = registry.publish_delta("fig1", &delta).unwrap();
        assert!(publish.bumped);
        assert_eq!(publish.previous_version, 1);
        assert_eq!(publish.registered.version(), 2);
        assert_eq!(publish.rescored_configs, 1);
        // Unsharded versions always report the incremental splice.
        assert!(publish.spliced);
        assert_eq!(publish.touched_shards, 0);
        // The new version serves without a cold scoring pass.
        assert_eq!(publish.registered.scored_config_count(), 1);
        assert_eq!(
            publish.registered.graph().entity_count(),
            fixtures::figure1_graph().entity_count() + 1
        );
        assert_eq!(registry.latest_version("fig1"), Some(2));
    }

    #[test]
    fn publish_delta_empty_does_not_bump() {
        let registry = GraphRegistry::new();
        let v1 = registry.register("fig1", fixtures::figure1_graph());
        let publish = registry
            .publish_delta("fig1", &entity_graph::GraphDelta::new())
            .unwrap();
        assert!(!publish.bumped);
        assert!(Arc::ptr_eq(&publish.registered, &v1));
        assert_eq!(registry.latest_version("fig1"), Some(1));
        assert_eq!(publish.summary, DeltaSummary::default());
    }

    #[test]
    fn publish_delta_rejection_leaves_version_untouched() {
        let registry = GraphRegistry::new();
        registry.register("fig1", fixtures::figure1_graph());
        let mut delta = entity_graph::GraphDelta::new();
        delta.remove_entity("Men in Black"); // still referenced by edges
        let err = registry.publish_delta("fig1", &delta).unwrap_err();
        assert!(matches!(err, ServiceError::Delta(_)));
        assert_eq!(registry.latest_version("fig1"), Some(1));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn register_sharded_serves_identical_scores() {
        let registry = GraphRegistry::new();
        let plain = registry.register("plain", fixtures::figure1_graph());
        let sharded = registry.register_sharded(
            "sharded",
            fixtures::figure1_graph(),
            ShardingStrategy::ByIdHash { shards: 3 },
        );
        assert!(plain.sharded().is_none());
        assert!(sharded.sharded().is_some());
        let entropy = ScoringConfig::new(
            preview_core::KeyScoring::Coverage,
            preview_core::NonKeyScoring::Entropy,
        );
        for config in [ScoringConfig::coverage(), entropy] {
            let a = plain.scored_for(&config).unwrap();
            let b = sharded.scored_for(&config).unwrap();
            assert!(a.scores_identical(&b), "{config:?}");
        }
    }

    #[test]
    fn publish_delta_keeps_versions_sharded() {
        let registry = GraphRegistry::new();
        let strategy = ShardingStrategy::ByEntityType { shards: 4 };
        let v1 = registry.register_sharded("fig1", fixtures::figure1_graph(), strategy);
        let entropy = ScoringConfig::new(
            preview_core::KeyScoring::Coverage,
            preview_core::NonKeyScoring::Entropy,
        );
        v1.scored_for(&entropy).unwrap();
        let mut delta = entity_graph::GraphDelta::new();
        delta.add_entity("Bad Boys", &["FILM"]).add_edge(
            "Will Smith",
            "Actor",
            "Bad Boys",
            "FILM ACTOR",
            "FILM",
        );
        let publish = registry.publish_delta("fig1", &delta).unwrap();
        assert!(publish.bumped);
        assert_eq!(publish.rescored_configs, 1);
        // No entity was removed, so the identity splice fast path applied,
        // and only the shards touched by the edit were rebuilt.
        assert!(publish.spliced);
        assert!(publish.touched_shards >= 1);
        let new_sharded = publish.registered.sharded().expect("version stays sharded");
        assert!(publish.touched_shards <= new_sharded.shard_count());
        // The spliced sharded storage equals a reshard of the new logical
        // graph from scratch, and the logical graph is shared, not copied.
        let reference = entity_graph::ShardedGraph::from_graph(
            Arc::clone(publish.registered.graph()),
            strategy,
        );
        assert_eq!(**new_sharded, reference);
        assert!(Arc::ptr_eq(new_sharded.graph(), publish.registered.graph()));
        // The carried-forward rescore matches a cold sharded build bitwise.
        let rescored = publish.registered.scored_for(&entropy).unwrap();
        let cold = ScoredSchema::build_sharded(new_sharded, &entropy).unwrap();
        assert!(rescored.scores_identical(&cold));
        // A rejected delta leaves the sharded version in place.
        let mut bad = entity_graph::GraphDelta::new();
        bad.remove_entity("Men in Black");
        assert!(registry.publish_delta("fig1", &bad).is_err());
        assert_eq!(registry.latest_version("fig1"), Some(2));
    }

    #[test]
    fn publish_delta_reports_splice_vs_full_reshard() {
        let registry = GraphRegistry::new();
        let strategy = ShardingStrategy::ByIdHash { shards: 4 };
        registry.register_sharded("fig1", fixtures::figure1_graph(), strategy);
        // Adding an entity keeps ids stable: identity splice.
        let mut add = entity_graph::GraphDelta::new();
        add.add_entity("Orphan", &["FILM"]);
        let spliced = registry.publish_delta("fig1", &add).unwrap();
        assert!(spliced.spliced);
        // Removing an entity shifts ids: every shard rebuilds.
        let mut remove = entity_graph::GraphDelta::new();
        remove.remove_entity("Orphan");
        let resharded = registry.publish_delta("fig1", &remove).unwrap();
        assert!(!resharded.spliced);
        assert_eq!(
            resharded.touched_shards,
            resharded.registered.sharded().unwrap().shard_count()
        );
    }

    #[test]
    fn publish_delta_enforces_retention() {
        let registry = GraphRegistry::with_retention(2);
        registry.register("fig1", fixtures::figure1_graph());
        let mut delta = entity_graph::GraphDelta::new();
        delta.add_entity("Extra", &["FILM"]);
        let first = registry.publish_delta("fig1", &delta).unwrap();
        assert_eq!(first.versions_dropped, 0);
        let mut delta2 = entity_graph::GraphDelta::new();
        delta2.add_entity("Extra 2", &["FILM"]);
        let second = registry.publish_delta("fig1", &delta2).unwrap();
        assert_eq!(second.versions_dropped, 1);
        assert_eq!(registry.versions("fig1"), vec![2, 3]);
        assert!(registry.get("fig1", Some(1)).is_none());
    }
}
