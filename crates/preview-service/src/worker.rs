//! Fixed-size worker pool with a bounded, condvar-backed request queue.
//!
//! Built on `std` threads only: a `Mutex<VecDeque>` plus two `Condvar`s give
//! a classic bounded MPMC queue. Producers block (or fail fast with
//! [`crate::ServiceError::QueueFull`] via `try_push`) when the queue is at
//! capacity; workers block when it is empty and drain remaining items after
//! [`BoundedQueue::close`] before exiting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::sync::{lock_unpoisoned, wait_unpoisoned};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (only returned by `try_push`).
    Full,
    /// The queue has been closed.
    Closed,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).items.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, blocking while the queue is full.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = lock_unpoisoned(&self.state);
        while state.items.len() >= self.capacity && !state.closed {
            state = wait_unpoisoned(&self.not_full, state);
        }
        if state.closed {
            return Err(PushError::Closed);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `item` without blocking; fails fast when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = lock_unpoisoned(&self.state);
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = wait_unpoisoned(&self.not_empty, state);
        }
    }

    /// Closes the queue: pending items are still handed out, new pushes fail,
    /// and blocked producers / consumers wake up.
    pub fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        lock_unpoisoned(&self.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.try_push(3), Err(PushError::Full));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert!(queue.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(4);
        queue.push(7).unwrap();
        queue.close();
        assert!(queue.is_closed());
        assert_eq!(queue.push(8), Err(PushError::Closed));
        assert_eq!(queue.try_push(8), Err(PushError::Closed));
        assert_eq!(queue.pop(), Some(7));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn blocked_producer_wakes_on_pop() {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        queue.push(1).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.push(2))
        };
        thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(queue.pop(), Some(2));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.pop())
        };
        thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_one_consumer() {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(3));
        let producers: Vec<_> = (0..4)
            .map(|i| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    for j in 0..25 {
                        queue.push(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        let mut seen = Vec::new();
        for _ in 0..100 {
            seen.push(queue.pop().unwrap());
        }
        for p in producers {
            p.join().unwrap();
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 100);
    }

    /// Regression test: a worker panicking while holding the queue lock
    /// must not wedge the queue for every other producer and consumer —
    /// the serving path recovers from poison instead of unwrapping.
    #[test]
    fn queue_survives_a_poisoned_lock() {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        queue.push(1).unwrap();
        let poisoner = Arc::clone(&queue);
        thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("worker died holding the queue lock");
        })
        .join()
        .unwrap_err();
        assert!(queue.state.is_poisoned());

        queue.push(2).unwrap();
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        queue.close();
        assert!(queue.is_closed());
        assert_eq!(queue.pop(), None);
    }
}
