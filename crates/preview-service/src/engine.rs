//! The serving engine: worker pool + registry + result cache + stats.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use entity_graph::{DeltaSummary, GraphDelta};
use preview_obs::{
    Counter, DumpReason, MemorySection, MetricsCumulative, ObsSnapshot, Recorder, ShardMemory,
    SloSpec, Stage, TimeSeries, TimeSeriesConfig, TraceId, TraceOutcome,
};

use preview_core::{AnytimeBudget, BestFirstDiscovery};

use crate::cache::{CacheStats, ShardedLruCache};
use crate::registry::{GraphRegistry, RegisteredGraph};
use crate::request::{
    CacheKey, CachedPreview, PreviewRequest, PreviewResponse, ResolvedAlgorithm, ScoringKey,
    ServiceError, ServiceResult,
};
use crate::stats::{ServiceStats, StatsRecorder};
use crate::sync::lock_unpoisoned;
use crate::worker::{BoundedQueue, PushError};

/// Sizing knobs of a [`PreviewService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Bounded request-queue capacity (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// Total result-cache capacity; `0` disables the cache entirely.
    pub cache_capacity: usize,
    /// Number of cache shards (clamped to ≥ 1).
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
        }
    }
}

impl ServiceConfig {
    /// A configuration with `workers` threads and the remaining defaults.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }

    /// Disables the result cache.
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = 0;
        self
    }
}

/// One queued unit of work.
struct Job {
    request: PreviewRequest,
    /// Enqueue time, for queue-wait latency accounting only.
    // lint: allow(wall-clock, queue-wait measurement feeds stats only; results never depend on it)
    enqueued: Instant,
    /// Trace id minted at ingress from the request sequence number — the
    /// worker reuses it as the root of this request's span tree.
    trace: TraceId,
    reply: mpsc::Sender<ServiceResult<PreviewResponse>>,
}

/// A slot shared by every worker computing (or awaiting) the same cold key.
type InflightSlot = Arc<OnceLock<ServiceResult<Arc<CachedPreview>>>>;

/// State shared between the service handle and its workers.
struct Shared {
    registry: Arc<GraphRegistry>,
    cache: Option<ShardedLruCache<CacheKey, Arc<CachedPreview>>>,
    /// Cold keys currently being computed: concurrent identical requests
    /// share one discovery run instead of each repeating it (the same
    /// `OnceLock` pattern the registry uses for scoring). Entries are
    /// removed as soon as the computation finishes.
    inflight: Mutex<HashMap<CacheKey, InflightSlot>>,
    stats: StatsRecorder,
    /// The observability recorder every worker attaches at startup. Disabled
    /// by default: spans then cost one relaxed atomic load each.
    obs: Arc<Recorder>,
    /// Ingress sequence number; each submitted request takes the next value
    /// and derives its [`TraceId`] from it, so trace identity is a pure
    /// function of arrival order — no ambient randomness.
    seq: AtomicU64,
    /// Fault injection (see [`PreviewService::inject_panic_next`]): when
    /// set, the next computed request panics inside its span stack,
    /// exercising the panic-dump and panic-retention paths end to end.
    inject_panic: AtomicBool,
    /// Fault injection (see [`PreviewService::inject_delay_next`]): the next
    /// computed request sleeps this many microseconds inside its discovery
    /// span, exercising slow-request retention and SLO burn end to end.
    inject_delay_us: AtomicU64,
}

impl Shared {
    /// Resolves and answers one request; the cache is consulted first, a
    /// cold key is computed at most once across concurrent workers, and the
    /// result is published for later identical requests.
    fn execute(
        &self,
        request: &PreviewRequest,
        queue_wait: Duration,
    ) -> ServiceResult<PreviewResponse> {
        // lint: allow(wall-clock, compute-latency measurement feeds stats only)
        let start = Instant::now();
        let graph = self.registry.resolve(&request.graph, request.version)?;
        if let Some(budget) = request.node_budget {
            return self.execute_anytime(request, &graph, budget, queue_wait, start);
        }
        // Auto-resolution sizes the space by the schema's type count — an
        // upper bound on the eligible types, deterministic per version and
        // available without forcing scoring on the cache-hit path.
        let algorithm = request
            .algorithm
            .resolve_for(&request.space, graph.graph().schema_graph().type_count());
        let key = CacheKey {
            graph: graph.name().to_string(),
            version: graph.version(),
            scoring: ScoringKey::from(&request.scoring),
            space: request.space,
            algorithm,
        };
        let (cached, cache_hit) = self.lookup_or_compute(request, &key)?;
        Ok(PreviewResponse {
            graph: key.graph,
            version: key.version,
            algorithm,
            preview: cached.preview.clone(),
            score: cached.score,
            cache_hit,
            queue_wait,
            compute: start.elapsed(),
            optimality_gap: None,
            trace: None,
        })
    }

    /// Answers an anytime (budgeted) request: always the best-first engine,
    /// and always **outside** the result cache — the incumbent under a
    /// budget may be sub-optimal, and neither serving it to an exact request
    /// nor serving a cached exact result while claiming a gap would be
    /// honest, so budgeted requests are neither looked up nor inserted.
    fn execute_anytime(
        &self,
        request: &PreviewRequest,
        graph: &RegisteredGraph,
        budget: u64,
        queue_wait: Duration,
        // lint: allow(wall-clock, latency anchor threaded through for stats only)
        start: Instant,
    ) -> ServiceResult<PreviewResponse> {
        let _discovery = preview_obs::span!(Stage::Discovery);
        let scored = graph.scored_for(&request.scoring)?;
        let outcome = {
            let _algorithm =
                preview_obs::span!(Stage::Algorithm, threads = request.scoring.threads);
            BestFirstDiscovery::new().discover_anytime(
                &scored,
                &request.space,
                AnytimeBudget::nodes(budget),
            )?
        };
        Ok(PreviewResponse {
            graph: graph.name().to_string(),
            version: graph.version(),
            algorithm: ResolvedAlgorithm::BestFirst,
            preview: outcome.preview.clone(),
            score: outcome.score,
            cache_hit: false,
            queue_wait,
            compute: start.elapsed(),
            optimality_gap: Some(outcome.optimality_gap()),
            trace: None,
        })
    }

    /// Returns the result for `key` plus whether it was served without
    /// running discovery on this call (LRU hit or shared in-flight compute).
    fn lookup_or_compute(
        &self,
        request: &PreviewRequest,
        key: &CacheKey,
    ) -> ServiceResult<(Arc<CachedPreview>, bool)> {
        if let Some(cache) = &self.cache {
            let _lookup = preview_obs::span!(Stage::CacheLookup);
            if let Some(cached) = cache.get(key) {
                return Ok((cached, true));
            }
        }
        let slot: InflightSlot = {
            let mut inflight = lock_unpoisoned(&self.inflight);
            Arc::clone(inflight.entry(key.clone()).or_default())
        };
        let mut computed = false;
        let outcome = slot
            .get_or_init(|| {
                computed = true;
                self.compute(request, key)
            })
            .clone();
        // First finisher retires the slot so the map cannot grow; later
        // identical requests find the result in the LRU cache instead.
        if computed {
            let mut inflight = lock_unpoisoned(&self.inflight);
            if let Some(current) = inflight.get(key) {
                if Arc::ptr_eq(current, &slot) {
                    inflight.remove(key);
                }
            }
        }
        outcome.map(|cached| (cached, !computed))
    }

    /// Runs scoring + discovery and publishes the result to the LRU cache.
    ///
    /// Discovery honours the request's
    /// [`ScoringConfig::threads`](preview_core::ScoringConfig::threads) knob
    /// (memoized scoring may have been built under a different budget — the
    /// knob never changes results, so the shared `ScoredSchema` is reused
    /// regardless). All workers draw from the global fork-join pool, whose
    /// token budget bounds the total number of extra threads across
    /// concurrent requests instead of oversubscribing the host.
    fn compute(
        &self,
        request: &PreviewRequest,
        key: &CacheKey,
    ) -> ServiceResult<Arc<CachedPreview>> {
        let _discovery = preview_obs::span!(Stage::Discovery);
        // lint: ordering-ok(one-shot fault-injection latch; SeqCst keeps arm/fire strictly ordered)
        let delay_us = self.inject_delay_us.swap(0, Ordering::SeqCst);
        if delay_us > 0 {
            thread::sleep(Duration::from_micros(delay_us));
        }
        // lint: ordering-ok(one-shot fault-injection latch; SeqCst keeps arm/fire strictly ordered)
        if self.inject_panic.swap(false, Ordering::SeqCst) {
            // lint: allow(request-path-unwrap, deliberate fault injection exercising the panic-dump path)
            panic!("injected test panic");
        }
        let graph = self.registry.resolve(&request.graph, request.version)?;
        let scored = graph.scored_for(&request.scoring)?;
        let preview = {
            let _algorithm =
                preview_obs::span!(Stage::Algorithm, threads = request.scoring.threads);
            key.algorithm.discovery().discover_with_threads(
                &scored,
                &request.space,
                request.scoring.threads,
            )?
        };
        let score = preview
            .as_ref()
            .map(|p| scored.preview_score(p))
            .unwrap_or(0.0);
        let cached = Arc::new(CachedPreview { preview, score });
        if let Some(cache) = &self.cache {
            cache.insert(key.clone(), Arc::clone(&cached));
        }
        Ok(cached)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    #[cfg(test)]
    fn inflight_len(&self) -> usize {
        lock_unpoisoned(&self.inflight).len()
    }
}

/// The outcome of [`PreviewService::publish_delta`]: the registry-level
/// publish plus the result-cache maintenance that came with it.
#[derive(Debug, Clone)]
pub struct PublishReport {
    /// Graph name the delta was published to.
    pub graph: String,
    /// The version that was latest before the publish.
    pub previous_version: u32,
    /// The version now serving "latest" requests.
    pub version: u32,
    /// Whether a new version was created (`false` iff the delta was empty —
    /// an empty delta never bumps the version).
    pub bumped: bool,
    /// What the delta changed.
    pub summary: DeltaSummary,
    /// Memoized scoring configurations carried forward through incremental
    /// rescoring.
    pub rescored_configs: usize,
    /// How many of those configurations were provably unaffected (bitwise
    /// identical scores).
    pub unaffected_configs: usize,
    /// Cache entries re-keyed onto the new version because their scoring
    /// configuration was provably unaffected.
    pub cache_carried_forward: u64,
    /// Cache entries of the superseded version that were not carried
    /// forward — cold for latest traffic as of this bump. Counted once per
    /// entry; later retention purges are not re-counted.
    pub cache_invalidated: u64,
    /// Superseded graph versions dropped by the retention window.
    pub versions_dropped: usize,
    /// Whether the sharded representation was updated by splicing only the
    /// touched shards (`true`) or rebuilt by a full reshard (`false`;
    /// removals invalidate shard-local indices). Always `true` for graphs
    /// without a sharded representation.
    pub spliced: bool,
    /// Shards whose payload the publish actually rewrote; `0` for unsharded
    /// graphs, every shard for a full reshard.
    pub touched_shards: usize,
}

/// A handle to an answer that is still being computed.
///
/// Returned by [`PreviewService::submit`]; [`wait`](PendingResponse::wait)
/// blocks until the worker replies.
#[derive(Debug)]
pub struct PendingResponse {
    rx: mpsc::Receiver<ServiceResult<PreviewResponse>>,
}

impl PendingResponse {
    /// Blocks until the response is ready.
    pub fn wait(self) -> ServiceResult<PreviewResponse> {
        self.rx.recv().unwrap_or(Err(ServiceError::WorkerLost))
    }

    /// Waits at most `timeout`; `None` means the response is not ready yet.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServiceResult<PreviewResponse>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServiceError::WorkerLost)),
        }
    }
}

/// A concurrent, cached preview-serving engine.
///
/// See the [crate-level docs](crate) for the register → serve → stats
/// quick-start. Dropping the service closes the queue, drains outstanding
/// requests and joins every worker.
pub struct PreviewService {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    shutting_down: AtomicBool,
    /// Windowed metrics ring + SLO specs, fed by [`tick_metrics`]
    /// (PreviewService::tick_metrics).
    metrics: Mutex<MetricsState>,
}

/// The windowed-metrics layer: a ring of cumulative-sample deltas plus the
/// SLOs evaluated against it.
struct MetricsState {
    series: TimeSeries,
    slos: Vec<SloSpec>,
}

impl std::fmt::Debug for PreviewService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreviewService")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue.len())
            .finish()
    }
}

impl PreviewService {
    /// Spawns the worker pool over `registry` with a fresh, disabled
    /// [`Recorder`] — instrumentation stays at its near-zero cost until
    /// [`recorder()`](Self::recorder)`.enable()` is called.
    pub fn start(config: ServiceConfig, registry: Arc<GraphRegistry>) -> Self {
        Self::start_with_recorder(config, registry, Arc::new(Recorder::default()))
    }

    /// Spawns the worker pool with a caller-supplied [`Recorder`] (e.g. one
    /// with a slow-request threshold or a larger flight ring). Every worker
    /// thread attaches it for its whole lifetime.
    pub fn start_with_recorder(
        config: ServiceConfig,
        registry: Arc<GraphRegistry>,
        recorder: Arc<Recorder>,
    ) -> Self {
        let cache = (config.cache_capacity > 0)
            .then(|| ShardedLruCache::new(config.cache_capacity, config.cache_shards));
        let shared = Arc::new(Shared {
            registry,
            cache,
            inflight: Mutex::new(HashMap::new()),
            stats: StatsRecorder::new(),
            obs: recorder,
            seq: AtomicU64::new(0),
            inject_panic: AtomicBool::new(false),
            inject_delay_us: AtomicU64::new(0),
        });
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                thread::Builder::new()
                    .name(format!("preview-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &queue))
                    // lint: allow(request-path-unwrap, startup-only; a host that cannot spawn threads cannot serve at all)
                    .expect("spawn preview worker")
            })
            .collect();
        Self {
            shared,
            queue,
            workers,
            shutting_down: AtomicBool::new(false),
            metrics: Mutex::new(MetricsState {
                series: TimeSeries::new(TimeSeriesConfig::default()),
                slos: Vec::new(),
            }),
        }
    }

    /// Starts a service with the default configuration over `registry`.
    pub fn with_defaults(registry: Arc<GraphRegistry>) -> Self {
        Self::start(ServiceConfig::default(), registry)
    }

    /// The registry this service answers from.
    pub fn registry(&self) -> &Arc<GraphRegistry> {
        &self.shared.registry
    }

    /// The observability recorder the workers record into. Enable it to
    /// start collecting spans; counters accumulate regardless.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.shared.obs
    }

    /// A unified observability snapshot: counters, per-stage histograms,
    /// retained flight dumps and trace trees, per-route request counts, the
    /// exact end-to-end service latency histogram (with trace-id
    /// exemplars), the current metrics window and SLO statuses, and the
    /// memory breakdown of the latest sharded graph version (when one is
    /// registered).
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut snapshot = self.shared.obs.snapshot();
        snapshot.service_latency = Some(self.shared.stats.latency_histogram());
        snapshot.routes = self.shared.stats.routes();
        snapshot.memory = self.latest_sharded_memory();
        {
            let metrics = lock_unpoisoned(&self.metrics);
            if metrics.series.tick_count() > 0 {
                snapshot.window = Some(metrics.series.window_summary(0));
            }
            snapshot.slos = metrics
                .slos
                .iter()
                .map(|slo| slo.evaluate(&metrics.series))
                .collect();
        }
        snapshot
    }

    /// Replaces the windowed-metrics configuration (ring resolution and
    /// window length). Any previously accumulated ticks are discarded; the
    /// next [`tick_metrics`](Self::tick_metrics) call re-seeds the baseline.
    pub fn configure_timeseries(&self, config: TimeSeriesConfig) {
        lock_unpoisoned(&self.metrics).series = TimeSeries::new(config);
    }

    /// Registers an SLO to be evaluated against the metrics window on every
    /// [`snapshot`](Self::snapshot).
    pub fn add_slo(&self, slo: SloSpec) {
        lock_unpoisoned(&self.metrics).slos.push(slo);
    }

    /// Takes one cumulative metrics sample (service counters + the exact
    /// end-to-end latency histogram) and offers it to the windowed ring.
    /// Call this periodically — e.g. once per scrape. Returns `true` when
    /// the sample closed a tick (the first call only seeds the baseline,
    /// and calls inside the configured resolution are coalesced).
    pub fn tick_metrics(&self) -> bool {
        let obs = &self.shared.obs;
        let sample = MetricsCumulative {
            at_us: obs.epoch_us(),
            counters: Counter::ALL.iter().map(|&c| (c, obs.counter(c))).collect(),
            service_latency: self.shared.stats.latency_histogram(),
        };
        lock_unpoisoned(&self.metrics).series.offer(sample)
    }

    /// The current [`snapshot`](Self::snapshot) rendered in Prometheus text
    /// exposition format (suitable for a `/metrics` scrape endpoint).
    pub fn prometheus_text(&self) -> String {
        preview_obs::render_prometheus(&self.snapshot())
    }

    /// Fault injection: the next *computed* (cache-missing) request panics
    /// inside its span stack. The worker survives; the caller receives
    /// [`ServiceError::Panicked`]. Exercises the panic-dump and
    /// panic-retention paths end to end — meant for tests and
    /// observability drills, not production traffic.
    pub fn inject_panic_next(&self) {
        // lint: ordering-ok(one-shot fault-injection latch; SeqCst keeps arm/fire strictly ordered)
        self.shared.inject_panic.store(true, Ordering::SeqCst);
    }

    /// Fault injection: the next *computed* (cache-missing) request sleeps
    /// `delay_us` microseconds inside its discovery span, exercising
    /// slow-request retention and SLO burn-rate paths end to end. Meant for
    /// tests and observability drills, not production traffic.
    pub fn inject_delay_next(&self, delay_us: u64) {
        self.shared
            .inject_delay_us
            // lint: ordering-ok(one-shot fault-injection latch; SeqCst keeps arm/fire strictly ordered)
            .store(delay_us, Ordering::SeqCst);
    }

    /// Memory report of the first registered graph whose latest version has
    /// a sharded representation, converted into the snapshot's schema.
    fn latest_sharded_memory(&self) -> Option<MemorySection> {
        let registry = &self.shared.registry;
        registry.names().iter().find_map(|name| {
            let report = registry.get(name, None)?.sharded()?.memory_report();
            Some(MemorySection {
                shard_count: report.shard_count as u64,
                entities: report.entities as u64,
                edges: report.edges as u64,
                sharded_total_bytes: report.sharded_total_bytes,
                unsharded_total_bytes: report.unsharded_total_bytes,
                shards: report
                    .shards
                    .iter()
                    .map(|shard| ShardMemory {
                        shard: shard.shard as u64,
                        entities: shard.entities as u64,
                        segments: shard.segments as u64,
                        encoded_payload_bytes: shard.encoded_payload_bytes,
                        directory_bytes: shard.directory_bytes,
                        total_bytes: shard.total_bytes,
                    })
                    .collect(),
            })
        })
    }

    /// Enqueues a request, blocking while the queue is full (backpressure).
    pub fn submit(&self, request: PreviewRequest) -> ServiceResult<PendingResponse> {
        self.enqueue(request, true)
    }

    /// Enqueues a request without blocking; [`ServiceError::QueueFull`] when
    /// the queue is at capacity.
    pub fn try_submit(&self, request: PreviewRequest) -> ServiceResult<PendingResponse> {
        self.enqueue(request, false)
    }

    fn enqueue(&self, request: PreviewRequest, block: bool) -> ServiceResult<PendingResponse> {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request,
            // lint: allow(wall-clock, queue-wait measurement feeds stats only)
            enqueued: Instant::now(),
            // Trace identity is the ingress sequence number — deterministic
            // per arrival order, never ambient randomness.
            // lint: ordering-ok(monotonic id mint; only uniqueness matters, not ordering with other state)
            trace: TraceId::from_seq(self.shared.seq.fetch_add(1, Ordering::Relaxed)),
            reply: tx,
        };
        let pushed = if block {
            self.queue.push(job)
        } else {
            self.queue.try_push(job)
        };
        match pushed {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(PendingResponse { rx })
            }
            Err(PushError::Full) => Err(ServiceError::QueueFull),
            Err(PushError::Closed) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Convenience: submit and block until the response arrives.
    pub fn submit_wait(&self, request: PreviewRequest) -> ServiceResult<PreviewResponse> {
        self.submit(request)?.wait()
    }

    /// Answers a request on the calling thread, bypassing the queue and the
    /// worker pool (but still using — and populating — the shared cache).
    /// Latency is not recorded in the service stats.
    pub fn execute_inline(&self, request: &PreviewRequest) -> ServiceResult<PreviewResponse> {
        self.shared.execute(request, Duration::ZERO)
    }

    /// Publishes a batch of graph edits against the latest version of
    /// `name`, with version-aware cache maintenance.
    ///
    /// The registry applies the delta by CSR splicing and carries every
    /// memoized scoring configuration forward through incremental rescoring
    /// (see [`GraphRegistry::publish_delta`]); this method then maintains
    /// the result cache:
    ///
    /// * entries keyed to graph versions that fell out of the retention
    ///   window are purged (they could never be served again — resolution
    ///   fails before the cache is consulted),
    /// * entries of the superseded latest version whose scoring
    ///   configuration the delta **provably did not affect** (bitwise
    ///   identical scores and schema shape — deterministic discovery
    ///   therefore returns the identical preview) are re-keyed onto the new
    ///   version, so latest-version traffic keeps hitting warm entries
    ///   across the bump,
    /// * superseded-version entries that are **not** carried are counted as
    ///   invalidated — exactly once, at the bump that made them cold for
    ///   latest traffic (later retention purges are cleanup, not counted
    ///   again).
    ///
    /// The retention/invalidation counts are returned and accumulated into
    /// [`ServiceStats`]. An empty delta is a no-op: no version bump, no
    /// cache maintenance.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphRegistry::publish_delta`] errors; the cache is only
    /// touched after the registry publish succeeded.
    pub fn publish_delta(&self, name: &str, delta: &GraphDelta) -> ServiceResult<PublishReport> {
        // lint: allow(wall-clock, publish-latency measurement feeds the obs snapshot only)
        let publish_start = Instant::now();
        let publish = self.shared.registry.publish_delta(name, delta)?;
        let mut carried_forward = 0u64;
        let mut invalidated = 0u64;
        if publish.bumped {
            if let Some(cache) = &self.shared.cache {
                let new_version = publish.registered.version();
                let previous = publish.previous_version;
                let live = self.shared.registry.versions(name);
                // Collect the superseded version's entries before purging:
                // with a retention window of 1 the previous version itself
                // is already unresolvable, but its unaffected entries are
                // still bit-correct for the new version.
                let previous_entries =
                    cache.collect_matching(|k| k.graph == name && k.version == previous);
                // Purge entries of versions that fell out of the retention
                // window — they can never resolve again. This is cleanup,
                // not invalidation: each entry already went cold (and was
                // counted) at the bump that superseded its version.
                cache.extract_matching(|k| k.graph == name && !live.contains(&k.version));
                for (key, value) in previous_entries {
                    if publish.unaffected_configs.contains(&key.scoring) {
                        let mut carried = key;
                        carried.version = new_version;
                        cache.insert(carried, value);
                        carried_forward += 1;
                    } else {
                        // Cold for latest traffic as of this bump — counted
                        // exactly once, here, whether or not the superseded
                        // version stays resolvable for pinned requests.
                        invalidated += 1;
                    }
                }
            }
            self.shared
                .stats
                .record_publish(carried_forward, invalidated);
            let obs = &self.shared.obs;
            obs.add_counter(Counter::Publishes, 1);
            obs.add_counter(
                if publish.spliced {
                    Counter::PublishSplices
                } else {
                    Counter::PublishFullReshards
                },
                1,
            );
            obs.add_counter(Counter::PublishTouchedShards, publish.touched_shards as u64);
            obs.add_counter(Counter::CacheCarried, carried_forward);
            obs.add_counter(Counter::CacheInvalidated, invalidated);
            // The publisher thread is usually not a worker (no attachment),
            // so record the stage duration directly when enabled.
            if obs.is_enabled() {
                obs.record_duration(Stage::Publish, publish_start.elapsed());
            }
        }
        Ok(PublishReport {
            graph: name.to_string(),
            previous_version: publish.previous_version,
            version: publish.registered.version(),
            bumped: publish.bumped,
            summary: publish.summary,
            rescored_configs: publish.rescored_configs,
            unaffected_configs: publish.unaffected_configs.len(),
            cache_carried_forward: carried_forward,
            cache_invalidated: invalidated,
            versions_dropped: publish.versions_dropped,
            spliced: publish.spliced,
            touched_shards: publish.touched_shards,
        })
    }

    /// A point-in-time snapshot of throughput, latency and cache behaviour.
    pub fn stats(&self) -> ServiceStats {
        self.shared
            .stats
            .snapshot(self.shared.cache_stats(), self.queue.len())
    }

    /// Stops accepting requests, drains the queue, and joins the workers.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        // lint: ordering-ok(one-shot shutdown latch; SeqCst is the conservative choice on a cold path)
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            // Per-request panics are caught inside the loop, so this only
            // trips on a harness-level bug; never panic here — shutdown can
            // run from Drop during an unwind, where a panic would abort.
            if worker.join().is_err() {
                // lint: allow(no-println, last-resort diagnostic during shutdown; no logger is safe to call here)
                eprintln!("preview-service: worker thread panicked outside request handling");
            }
        }
    }
}

impl Drop for PreviewService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(shared: &Shared, queue: &BoundedQueue<Job>) {
    // Workers record into the service's recorder for their whole lifetime;
    // fork-join helper threads inside discovery stay unattached, so parallel
    // sections never record and outputs stay deterministic.
    let _attach = shared.obs.attach();
    while let Some(job) = queue.pop() {
        let queue_wait = job.enqueued.elapsed();
        // Open the request's trace before any span fires: every span the
        // request records on this thread then parents into one tree rooted
        // at the ingress-minted trace id. Inert when the recorder is off.
        let tguard = shared.obs.begin_trace(job.trace, job.enqueued);
        // Isolate panics per request: a buggy graph/space combination must
        // not take the worker (and with it the whole pool) down — the caller
        // gets a typed error and the worker moves on to the next job. Spans
        // live *inside* the unwind boundary: an unwinding request drops its
        // guards on the way out, so its whole span trail reaches the flight
        // ring (and the trace tree) before the dump below is captured. The
        // root Request span itself is synthesized by `TraceGuard::finish`,
        // covering enqueue-to-finish rather than just the compute section.
        let mut result = catch_unwind(AssertUnwindSafe(|| {
            shared.execute(&job.request, queue_wait)
        }))
        .unwrap_or_else(|payload| {
            // `as_ref`, not `&payload`: a `&Box<dyn Any>` coerces to
            // `&dyn Any` *as the box itself*, which no downcast matches.
            Err(ServiceError::Panicked {
                message: panic_message(payload.as_ref()),
            })
        });
        let mut latency_us = 0u64;
        let (outcome, detail) = match &mut result {
            Ok(response) => {
                response.trace = Some(job.trace);
                let latency = response.latency();
                latency_us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
                shared.stats.record_completed(latency, Some(job.trace));
                shared
                    .stats
                    .record_route(&response.graph, response.algorithm.name());
                (
                    TraceOutcome::Ok,
                    format!("graph={} latency_us={latency_us}", job.request.graph),
                )
            }
            Err(ServiceError::Panicked { message }) => {
                shared.stats.record_failed();
                (
                    TraceOutcome::Panic,
                    format!("graph={} panic={message}", job.request.graph),
                )
            }
            Err(other) => {
                shared.stats.record_failed();
                (
                    TraceOutcome::Error,
                    format!("graph={} error={other}", job.request.graph),
                )
            }
        };
        // Finish the trace *before* the reply is sent: once the client
        // unblocks, the retained tree / dump must already be observable.
        if tguard.is_active() {
            // Finish closes the tree (synthesizing the QueueWait child and
            // the root Request span), decides retention — slow / error /
            // panic / head-sampled — and captures at most one flight dump
            // with the joined reasons.
            tguard.finish(queue_wait, outcome, &detail);
        } else {
            // Recorder disabled (or enabled mid-request): keep the plain
            // dump paths alive so panics and slow requests are still caught.
            match outcome {
                TraceOutcome::Panic => {
                    shared.obs.capture_dump(DumpReason::Panic, &detail);
                }
                TraceOutcome::Ok if shared.obs.config().slow_threshold_us.is_some() => {
                    shared.obs.maybe_dump_slow(latency_us, &detail);
                }
                _ => {}
            }
        }
        {
            // The client may have dropped its handle; that is not an error.
            // This span fires after the trace closed, so it feeds the
            // aggregate Response histogram only — the send sits outside the
            // request's own tree by construction.
            let _response = preview_obs::span!(Stage::Response);
            let _ = job.reply.send(result);
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures;
    use preview_core::PreviewSpace;

    fn fig1_service(config: ServiceConfig) -> PreviewService {
        let registry = Arc::new(GraphRegistry::new());
        registry.register("fig1", fixtures::figure1_graph());
        PreviewService::start(config, registry)
    }

    #[test]
    fn serves_the_papers_running_example() {
        let service = fig1_service(ServiceConfig::default());
        let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
        let response = service.submit_wait(request).unwrap();
        assert_eq!(response.version, 1);
        assert!(!response.cache_hit);
        assert!((response.score - 84.0).abs() < 1e-9);
        assert_eq!(response.preview.unwrap().tables().len(), 2);
    }

    #[test]
    fn second_identical_request_hits_the_cache() {
        let service = fig1_service(ServiceConfig::default());
        let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
        let first = service.submit_wait(request.clone()).unwrap();
        let second = service.submit_wait(request).unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.preview, second.preview);
        assert_eq!(first.score, second.score);
        let stats = service.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache.hits, 1);
    }

    #[test]
    fn unknown_graph_is_a_typed_error() {
        let service = fig1_service(ServiceConfig::default());
        let request = crate::PreviewRequest::new("nope", PreviewSpace::concise(1, 1).unwrap());
        let err = service.submit_wait(request).unwrap_err();
        assert!(matches!(err, ServiceError::GraphNotFound { .. }));
        assert_eq!(service.stats().failed, 1);
    }

    #[test]
    fn inflight_map_is_empty_after_requests_finish() {
        let service = fig1_service(ServiceConfig::default());
        for (k, n) in [(1, 2), (2, 6), (2, 4)] {
            let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(k, n).unwrap());
            service.submit_wait(request).unwrap();
        }
        assert_eq!(service.shared.inflight_len(), 0);
        assert_eq!(service.stats().cache.insertions, 3);
    }

    #[test]
    fn concurrent_identical_cold_requests_share_one_compute() {
        let service = Arc::new(fig1_service(ServiceConfig::default()));
        let clients: Vec<_> = (0..8)
            .map(|_| {
                let service = Arc::clone(&service);
                thread::spawn(move || {
                    let request =
                        crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
                    service.submit_wait(request).unwrap()
                })
            })
            .collect();
        let responses: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        for response in &responses {
            assert!((response.score - 84.0).abs() < 1e-9);
        }
        // Discovery ran at most once per worker that raced the cold key;
        // requests that shared an in-flight compute report a cache hit.
        let stats = service.stats();
        assert!(stats.cache.insertions <= 4, "{}", stats.cache.insertions);
        assert_eq!(
            responses.iter().filter(|r| !r.cache_hit).count() as u64,
            stats.cache.insertions
        );
        assert_eq!(service.shared.inflight_len(), 0);
    }

    #[test]
    fn anytime_requests_bypass_the_cache_and_report_a_gap() {
        let service = fig1_service(ServiceConfig::default());
        let space = PreviewSpace::diverse(2, 6, 2).unwrap();
        // An exact request populates the cache for this space.
        let exact = service
            .submit_wait(crate::PreviewRequest::new("fig1", space))
            .unwrap();
        assert_eq!(exact.optimality_gap, None);
        assert!(!exact.cache_hit);

        // A generous budget closes the proof: same preview, zero gap — but
        // still flagged as anytime and never served from (or into) the cache.
        let generous = service
            .submit_wait(crate::PreviewRequest::new("fig1", space).with_node_budget(1 << 20))
            .unwrap();
        assert!(!generous.cache_hit);
        assert_eq!(generous.algorithm, ResolvedAlgorithm::BestFirst);
        assert_eq!(generous.optimality_gap, Some(0.0));
        assert_eq!(generous.preview, exact.preview);
        assert_eq!(generous.score.to_bits(), exact.score.to_bits());

        // A zero budget returns no incumbent but a positive upper bound.
        let starved = service
            .submit_wait(crate::PreviewRequest::new("fig1", space).with_node_budget(0))
            .unwrap();
        assert!(!starved.cache_hit);
        assert!(starved.preview.is_none());
        assert!(starved.optimality_gap.unwrap() >= exact.score);

        // Cache insertions: only the exact request's single entry.
        assert_eq!(service.stats().cache.insertions, 1);
        // And a repeat of the anytime request still does not hit the cache.
        let repeat = service
            .submit_wait(crate::PreviewRequest::new("fig1", space).with_node_budget(1 << 20))
            .unwrap();
        assert!(!repeat.cache_hit);
        assert_eq!(service.stats().cache.insertions, 1);
    }

    #[test]
    fn anytime_discovery_records_search_counters() {
        let registry = Arc::new(GraphRegistry::new());
        registry.register("fig1", fixtures::figure1_graph());
        let recorder = Arc::new(Recorder::default());
        recorder.enable();
        let service = PreviewService::start_with_recorder(
            ServiceConfig::with_workers(1),
            registry,
            Arc::clone(&recorder),
        );
        let space = PreviewSpace::diverse(2, 6, 2).unwrap();
        let request = crate::PreviewRequest::new("fig1", space).with_node_budget(1 << 20);
        service.submit_wait(request).unwrap();
        recorder.disable();
        assert!(recorder.counter(Counter::NodesExpanded) > 0);
        assert!(recorder.counter(Counter::NodesPruned) > 0);
        assert!(recorder.stage_histogram(Stage::BestFirstSearch).count() >= 1);
    }

    #[test]
    fn explicit_best_first_shares_exact_semantics() {
        let service = fig1_service(ServiceConfig::default());
        let space = PreviewSpace::tight(2, 6, 3).unwrap();
        let apriori = service
            .submit_wait(
                crate::PreviewRequest::new("fig1", space).with_algorithm(crate::Algorithm::Apriori),
            )
            .unwrap();
        let best_first = service
            .submit_wait(
                crate::PreviewRequest::new("fig1", space)
                    .with_algorithm(crate::Algorithm::BestFirst),
            )
            .unwrap();
        assert_eq!(best_first.algorithm, ResolvedAlgorithm::BestFirst);
        assert_eq!(best_first.optimality_gap, None);
        assert_eq!(best_first.preview, apriori.preview);
        assert_eq!(best_first.score.to_bits(), apriori.score.to_bits());
        // Distinct resolved algorithms keep distinct cache keys.
        assert!(!best_first.cache_hit);
        assert_eq!(service.stats().cache.insertions, 2);
    }

    #[test]
    fn shutdown_joins_cleanly_with_no_traffic() {
        let registry = Arc::new(GraphRegistry::new());
        let service = PreviewService::start(ServiceConfig::with_workers(1), registry);
        let stats = service.shutdown();
        assert_eq!(stats.completed, 0);
    }

    /// Satellite: a panicking request must leave a flight-recorder dump
    /// containing its span trail — the unwind drops the request's guards
    /// into the ring before the dump is captured.
    #[test]
    fn panicking_request_leaves_a_flight_dump_with_its_span_trail() {
        let registry = Arc::new(GraphRegistry::new());
        registry.register("fig1", fixtures::figure1_graph());
        let recorder = Arc::new(Recorder::default());
        recorder.enable();
        let service = PreviewService::start_with_recorder(
            ServiceConfig::with_workers(1),
            registry,
            Arc::clone(&recorder),
        );

        service.inject_panic_next();
        let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
        let err = service.submit_wait(request.clone()).unwrap_err();
        assert!(matches!(err, ServiceError::Panicked { .. }));
        assert_eq!(service.stats().failed, 1);

        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "panic");
        assert!(
            dumps[0].detail.contains("injected test panic"),
            "detail = {:?}",
            dumps[0].detail
        );
        let stages: Vec<Stage> = dumps[0].events.iter().map(|e| e.stage).collect();
        assert!(stages.contains(&Stage::Discovery), "{stages:?}");
        assert!(stages.contains(&Stage::Request), "{stages:?}");
        assert_eq!(recorder.counter(Counter::PanicDumps), 1);

        // The worker survived the panic and keeps serving.
        let response = service.submit_wait(request).unwrap();
        assert!((response.score - 84.0).abs() < 1e-9);
        recorder.disable();
    }

    #[test]
    fn slow_threshold_captures_a_slow_dump() {
        let registry = Arc::new(GraphRegistry::new());
        registry.register("fig1", fixtures::figure1_graph());
        // Threshold 0: every request is "slow".
        let recorder = Arc::new(Recorder::new(preview_obs::ObsConfig {
            slow_threshold_us: Some(0),
            ..preview_obs::ObsConfig::default()
        }));
        recorder.enable();
        let service = PreviewService::start_with_recorder(
            ServiceConfig::with_workers(1),
            registry,
            Arc::clone(&recorder),
        );
        let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
        service.submit_wait(request).unwrap();
        recorder.disable();
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "slow");
        assert!(dumps[0].detail.contains("graph=fig1"));
        assert_eq!(recorder.counter(Counter::SlowDumps), 1);
    }

    /// Tentpole invariant: instrumentation is output-neutral. The same
    /// request served with an enabled recorder is byte-identical to one
    /// served with instrumentation off — while the recorder actually
    /// collected per-stage spans.
    #[test]
    fn enabled_recorder_never_changes_responses() {
        let plain = fig1_service(ServiceConfig::default());
        let registry = Arc::new(GraphRegistry::new());
        registry.register("fig1", fixtures::figure1_graph());
        let recorder = Arc::new(Recorder::default());
        recorder.enable();
        let traced = PreviewService::start_with_recorder(
            ServiceConfig::default(),
            registry,
            Arc::clone(&recorder),
        );

        let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap())
            .with_threads(4);
        let expected = plain.submit_wait(request.clone()).unwrap();
        let observed = traced.submit_wait(request).unwrap();
        recorder.disable();

        assert_eq!(observed.preview, expected.preview);
        assert_eq!(observed.score.to_bits(), expected.score.to_bits());
        for stage in [
            Stage::Request,
            Stage::QueueWait,
            Stage::Discovery,
            Stage::Algorithm,
        ] {
            assert_eq!(
                recorder.stage_histogram(stage).count(),
                1,
                "stage {} not recorded",
                stage.name()
            );
        }
        assert!(recorder.events_recorded() >= 4);
    }

    /// Satellite: byte-identity holds with the *full* trace pipeline on —
    /// trace trees, per-stage thresholds, and head sampling retaining every
    /// request — at `threads = 4`. Results and score bits must match an
    /// uninstrumented service exactly.
    #[test]
    fn trace_trees_and_tail_sampling_never_change_responses() {
        let plain = fig1_service(ServiceConfig::default());
        let registry = Arc::new(GraphRegistry::new());
        registry.register("fig1", fixtures::figure1_graph());
        let recorder = Arc::new(Recorder::new(
            preview_obs::ObsConfig::default()
                .with_slow_threshold(0)
                .with_sample_every(1)
                .with_stage_threshold(Stage::Discovery, 0),
        ));
        recorder.enable();
        let traced = PreviewService::start_with_recorder(
            ServiceConfig::default(),
            registry,
            Arc::clone(&recorder),
        );

        for (k, n) in [(1, 2), (2, 6), (2, 4)] {
            let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(k, n).unwrap())
                .with_threads(4);
            let expected = plain.submit_wait(request.clone()).unwrap();
            let observed = traced.submit_wait(request).unwrap();
            assert_eq!(observed.preview, expected.preview);
            assert_eq!(observed.score.to_bits(), expected.score.to_bits());
            // Worker-served responses always carry their ingress trace id
            // (it is minted from the sequence number, not the recorder).
            assert!(observed.trace.is_some());
        }
        recorder.disable();

        // Every request was retained (threshold 0 + sample-every 1) and
        // every tree is well-formed: exactly one root, all parents resolve.
        let trees = recorder.traces().trees();
        assert_eq!(trees.len(), 3);
        for tree in &trees {
            let root = tree.root().expect("tree has a root");
            assert_eq!(root.stage, Stage::Request);
            for span in &tree.spans {
                if span.parent_id != 0 {
                    assert!(
                        tree.spans.iter().any(|s| s.span_id == span.parent_id),
                        "span {} has unresolvable parent {}",
                        span.span_id,
                        span.parent_id
                    );
                }
            }
        }
        // Trace ids are distinct and sequence-derived.
        let mut ids: Vec<u64> = trees.iter().map(|t| t.trace.as_u64()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn metrics_window_slos_and_prometheus_export_flow_through_the_service() {
        let service = fig1_service(ServiceConfig::with_workers(1));
        service.configure_timeseries(TimeSeriesConfig {
            resolution_us: 0,
            window_ticks: 16,
        });
        service.add_slo(SloSpec::new("latency-p99", 0.99, 10_000_000));

        assert!(!service.tick_metrics(), "first sample only seeds");
        let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
        service.submit_wait(request).unwrap();
        assert!(service.tick_metrics(), "second sample closes a tick");

        let snapshot = service.snapshot();
        let window = snapshot.window.as_ref().expect("window present");
        assert_eq!(window.requests, 1);
        assert_eq!(snapshot.slos.len(), 1);
        let slo = &snapshot.slos[0];
        assert_eq!(slo.name, "latency-p99");
        assert!(slo.met, "a 10s threshold cannot be missed here");
        assert!(!slo.breached);
        assert_eq!(snapshot.routes.len(), 1);
        assert_eq!(snapshot.routes[0].graph, "fig1");
        assert_eq!(snapshot.routes[0].requests, 1);

        // The Prometheus rendering re-parses numerically equal.
        let failures = preview_obs::roundtrip_failures(&snapshot);
        assert!(failures.is_empty(), "round-trip failures: {failures:?}");
        let text = service.prometheus_text();
        assert!(text.contains("# TYPE preview_request_latency_us histogram"));
        assert!(text.contains("preview_requests_total{graph=\"fig1\",algorithm="));
        assert!(text.contains("preview_slo_burn_rate{slo=\"latency-p99\",window=\"fast\"}"));
    }

    #[test]
    fn injected_delay_marks_the_request_slow_and_retains_its_tree() {
        let registry = Arc::new(GraphRegistry::new());
        registry.register("fig1", fixtures::figure1_graph());
        let recorder = Arc::new(Recorder::new(
            preview_obs::ObsConfig::default().with_slow_threshold(5_000),
        ));
        recorder.enable();
        let service = PreviewService::start_with_recorder(
            ServiceConfig::with_workers(1),
            registry,
            Arc::clone(&recorder),
        );
        service.inject_delay_next(20_000);
        let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
        let response = service.submit_wait(request).unwrap();
        recorder.disable();
        assert!(response.latency() >= Duration::from_micros(20_000));

        let trees = recorder.traces().trees();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].reasons, vec![preview_obs::RetainReason::Slow]);
        assert_eq!(Some(trees[0].trace), response.trace);
        // The same id is the exemplar of the service-latency bucket the
        // request landed in.
        let latency = service.snapshot().service_latency.unwrap();
        assert!(latency
            .bucket_exemplars()
            .iter()
            .any(|&t| t == trees[0].trace.as_u64()));
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "slow");
    }

    #[test]
    fn snapshot_carries_service_latency_and_publish_counters() {
        let registry = Arc::new(GraphRegistry::new());
        registry.register_sharded(
            "fig1",
            fixtures::figure1_graph(),
            entity_graph::ShardingStrategy::ByIdHash { shards: 2 },
        );
        let service = PreviewService::start(ServiceConfig::default(), registry);
        let request = crate::PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
        service.submit_wait(request).unwrap();

        let mut delta = GraphDelta::new();
        delta.add_entity("Bad Boys", &["FILM"]);
        let report = service.publish_delta("fig1", &delta).unwrap();
        assert!(report.spliced);
        assert!(report.touched_shards >= 1);

        let snapshot = service.snapshot();
        let latency = snapshot
            .service_latency
            .as_ref()
            .expect("latency histogram");
        assert_eq!(latency.count(), 1);
        let counters: std::collections::HashMap<_, _> = snapshot.counters.iter().copied().collect();
        assert_eq!(counters[&Counter::Publishes], 1);
        assert_eq!(counters[&Counter::PublishSplices], 1);
        assert_eq!(counters[&Counter::PublishFullReshards], 0);
        assert_eq!(
            counters[&Counter::PublishTouchedShards],
            report.touched_shards as u64
        );
        let memory = snapshot.memory.as_ref().expect("sharded memory section");
        assert_eq!(memory.shard_count, 2);
        assert_eq!(memory.shards.len(), 2);
        assert!(memory.sharded_total_bytes > 0);
        // The JSON document parses with the crate's own parser.
        let parsed = preview_obs::JsonValue::parse(&snapshot.to_json()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("publishes")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
