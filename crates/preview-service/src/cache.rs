//! A sharded, thread-safe LRU cache for preview results.
//!
//! The cache is generic over key and value so the eviction machinery can be
//! tested in isolation; the service instantiates it as
//! `ShardedLruCache<CacheKey, Arc<CachedPreview>>` (see
//! [`crate::request::CacheKey`]).
//!
//! Keys are partitioned across shards by hash, each shard protected by its
//! own mutex, so concurrent workers rarely contend on the same lock. Within
//! a shard, recency is tracked with a slab-backed intrusive doubly-linked
//! list: `get` and `insert` are O(1), eviction pops the least-recently-used
//! entry of the full shard. Hit / miss / eviction / insertion counters are
//! lock-free atomics aggregated over all shards.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sync::lock_unpoisoned;

/// Sentinel slot index meaning "no neighbour" in the intrusive list.
const NIL: usize = usize::MAX;

/// Aggregate cache counters, cheap to snapshot at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of `get` calls that found their key.
    pub hits: u64,
    /// Number of `get` calls that missed.
    pub misses: u64,
    /// Number of entries evicted to make room for new ones.
    pub evictions: u64,
    /// Number of entries inserted (including overwrites of existing keys).
    pub insertions: u64,
    /// Current number of live entries across all shards.
    pub len: usize,
    /// Total capacity across all shards.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One entry of a shard's slab: the key/value plus intrusive list links.
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A single-lock LRU shard: hash map for lookup, slab + intrusive list for
/// recency order (head = most recently used, tail = eviction candidate).
#[derive(Debug)]
struct LruShard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        debug_assert!(capacity >= 1);
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links `slot` at the head (most recently used position).
    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Looks up `key`, promoting it to most recently used on a hit.
    fn get(&mut self, key: &K) -> Option<V> {
        let slot = *self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(self.slots[slot].value.clone())
    }

    /// Inserts (or overwrites) `key`; returns `true` if an unrelated entry
    /// had to be evicted to make room.
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return false;
        }
        let mut evicted = false;
        if self.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot].key = key.clone();
                self.slots[slot].value = value;
                slot
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.attach_front(slot);
        self.map.insert(key, slot);
        evicted
    }

    /// Removes every entry whose key matches `pred`, returning the removed
    /// pairs (recency order, most recent first).
    fn extract_matching(&mut self, pred: &dyn Fn(&K) -> bool) -> Vec<(K, V)> {
        let mut victims = Vec::new();
        let mut cursor = self.head;
        while cursor != NIL {
            let next = self.slots[cursor].next;
            if pred(&self.slots[cursor].key) {
                victims.push(cursor);
            }
            cursor = next;
        }
        victims
            .into_iter()
            .map(|slot| {
                self.detach(slot);
                self.map.remove(&self.slots[slot].key);
                self.free.push(slot);
                (self.slots[slot].key.clone(), self.slots[slot].value.clone())
            })
            .collect()
    }

    /// Clones every entry whose key matches `pred` without touching recency.
    fn collect_matching(&self, pred: &dyn Fn(&K) -> bool) -> Vec<(K, V)> {
        let mut found = Vec::new();
        let mut cursor = self.head;
        while cursor != NIL {
            if pred(&self.slots[cursor].key) {
                found.push((
                    self.slots[cursor].key.clone(),
                    self.slots[cursor].value.clone(),
                ));
            }
            cursor = self.slots[cursor].next;
        }
        found
    }

    /// Keys in recency order, most recent first (test / introspection aid).
    fn keys_by_recency(&self) -> Vec<K> {
        let mut keys = Vec::with_capacity(self.len());
        let mut cursor = self.head;
        while cursor != NIL {
            keys.push(self.slots[cursor].key.clone());
            cursor = self.slots[cursor].next;
        }
        keys
    }
}

/// A sharded LRU cache safe for concurrent use from many worker threads.
#[derive(Debug)]
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// Creates a cache with (at least) `capacity` total entries spread over
    /// `shards` shards. Both are clamped to a minimum of 1; per-shard
    /// capacity is rounded up so total capacity is never below the request.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Looks up `key`, promoting it on a hit and bumping the hit/miss
    /// counters.
    pub fn get(&self, key: &K) -> Option<V> {
        let value = lock_unpoisoned(self.shard_of(key)).get(key);
        match value {
            // lint: ordering-ok(hit/miss statistics counters; nothing synchronises on them)
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            // lint: ordering-ok(hit/miss statistics counters; nothing synchronises on them)
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        value
    }

    /// Inserts `key → value`, evicting the shard's least-recently-used entry
    /// if it is full.
    pub fn insert(&self, key: K, value: V) {
        let evicted = lock_unpoisoned(self.shard_of(&key)).insert(key, value);
        // lint: ordering-ok(monotonic statistics counter; the shard lock orders the entry itself)
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            // lint: ordering-ok(monotonic statistics counter; the shard lock orders the entry itself)
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_unpoisoned(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s).capacity)
            .sum()
    }

    /// Snapshot of the counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // lint: ordering-ok(statistics snapshot; tolerates in-flight updates)
            hits: self.hits.load(Ordering::Relaxed),
            // lint: ordering-ok(statistics snapshot; tolerates in-flight updates)
            misses: self.misses.load(Ordering::Relaxed),
            // lint: ordering-ok(statistics snapshot; tolerates in-flight updates)
            evictions: self.evictions.load(Ordering::Relaxed),
            // lint: ordering-ok(statistics snapshot; tolerates in-flight updates)
            insertions: self.insertions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity(),
        }
    }

    /// Removes and returns every entry whose key matches `pred`.
    ///
    /// Used by the serving layer's version-bump maintenance to purge entries
    /// of graph versions that are no longer resolvable. Removals are not
    /// counted as evictions (nothing was displaced by a new entry).
    pub fn extract_matching(&self, pred: impl Fn(&K) -> bool) -> Vec<(K, V)> {
        self.shards
            .iter()
            .flat_map(|s| lock_unpoisoned(s).extract_matching(&pred))
            .collect()
    }

    /// Clones every entry whose key matches `pred`, leaving the cache (and
    /// the entries' recency) untouched.
    ///
    /// Used to carry provably-unaffected entries forward across a graph
    /// version bump: the matching entries are re-inserted under the new
    /// version's key.
    pub fn collect_matching(&self, pred: impl Fn(&K) -> bool) -> Vec<(K, V)> {
        self.shards
            .iter()
            .flat_map(|s| lock_unpoisoned(s).collect_matching(&pred))
            .collect()
    }

    /// Keys of every shard in recency order (most recent first per shard),
    /// concatenated shard by shard. With a single shard this is the exact
    /// global LRU order, which the property tests rely on.
    pub fn keys_by_recency(&self) -> Vec<K> {
        self.shards
            .iter()
            .flat_map(|s| lock_unpoisoned(s).keys_by_recency())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_promotes_and_insert_evicts_lru() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(3, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(3, 30);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(4, 40);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.get(&4), Some(40));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 4);
        assert_eq!(stats.len, 3);
    }

    #[test]
    fn overwrite_does_not_grow_or_evict() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(1, 11);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&1), Some(11));
    }

    #[test]
    fn recency_order_is_most_recent_first() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(4, 1);
        for k in 0..4 {
            cache.insert(k, k);
        }
        cache.get(&0);
        assert_eq!(cache.keys_by_recency(), vec![0, 3, 2, 1]);
    }

    #[test]
    fn sharded_capacity_is_rounded_up() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(10, 4);
        assert_eq!(cache.capacity(), 12);
        let zero: ShardedLruCache<u32, u32> = ShardedLruCache::new(0, 0);
        assert_eq!(zero.capacity(), 1);
    }

    #[test]
    fn extract_matching_removes_without_eviction_counts() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(8, 2);
        for k in 0..6 {
            cache.insert(k, k * 10);
        }
        let mut removed = cache.extract_matching(|&k| k % 2 == 0);
        removed.sort_unstable();
        assert_eq!(removed, vec![(0, 0), (2, 20), (4, 40)]);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&3), Some(30));
        // Freed slots are reused by later insertions.
        cache.insert(6, 60);
        assert_eq!(cache.get(&6), Some(60));
    }

    #[test]
    fn collect_matching_clones_without_promoting() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(4, 1);
        for k in 0..4 {
            cache.insert(k, k + 100);
        }
        let mut found = cache.collect_matching(|&k| k >= 2);
        found.sort_unstable();
        assert_eq!(found, vec![(2, 102), (3, 103)]);
        // Recency untouched: 3 (last inserted) is still most recent.
        assert_eq!(cache.keys_by_recency(), vec![3, 2, 1, 0]);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn hit_rate_reflects_lookups() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(4, 2);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert(7, 7);
        cache.get(&7);
        cache.get(&8);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }
}
