//! Service-level statistics: request counters, latency percentiles and
//! throughput, combined with the cache counters into one snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cache::CacheStats;

/// Upper bound on retained latency samples. Percentiles beyond this many
/// completions come from a uniform reservoir (Vitter's Algorithm R), so a
/// long-running service holds a fixed ~512 KiB of latency state instead of
/// growing without bound.
const LATENCY_SAMPLE_CAP: usize = 65_536;

/// A bounded uniform sample of request latencies plus exact extremes/sums.
#[derive(Debug)]
struct LatencyReservoir {
    samples: Vec<u64>,
    /// Total latencies ever offered (> `samples.len()` once the cap is hit).
    seen: u64,
    /// Exact running sum for the mean (not subject to sampling).
    total_us: u128,
    /// Exact maximum (not subject to sampling).
    max_us: u64,
    /// xorshift64 state for replacement choices; deterministic seed, the
    /// sampled latencies themselves provide the variability.
    rng_state: u64,
}

impl LatencyReservoir {
    fn new() -> Self {
        Self {
            samples: Vec::new(),
            seen: 0,
            total_us: 0,
            max_us: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn record(&mut self, us: u64) {
        self.seen += 1;
        self.total_us += u128::from(us);
        self.max_us = self.max_us.max(us);
        if self.samples.len() < LATENCY_SAMPLE_CAP {
            self.samples.push(us);
        } else {
            self.rng_state ^= self.rng_state << 13;
            self.rng_state ^= self.rng_state >> 7;
            self.rng_state ^= self.rng_state << 17;
            let slot = self.rng_state % self.seen;
            if (slot as usize) < LATENCY_SAMPLE_CAP {
                self.samples[slot as usize] = us;
            }
        }
    }

    fn mean_us(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.total_us as f64 / self.seen as f64
        }
    }
}

/// Shared mutable statistics the workers write into.
#[derive(Debug)]
pub(crate) struct StatsRecorder {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    /// Total (queue wait + compute) latency of completed requests, µs.
    latencies: Mutex<LatencyReservoir>,
}

impl StatsRecorder {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            latencies: Mutex::new(LatencyReservoir::new()),
        }
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies
            .lock()
            .expect("latency lock")
            .record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    pub(crate) fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, cache: CacheStats, queue_depth: usize) -> ServiceStats {
        let (mut sample, mean_us, max_us) = {
            let reservoir = self.latencies.lock().expect("latency lock");
            (
                reservoir.samples.clone(),
                reservoir.mean_us(),
                reservoir.max_us,
            )
        };
        sample.sort_unstable();
        let elapsed = self.started.elapsed();
        let completed = self.completed.load(Ordering::Relaxed);
        ServiceStats {
            elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth,
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            latency_mean_us: mean_us,
            latency_p50_us: percentile(&sample, 50.0),
            latency_p99_us: percentile(&sample, 99.0),
            latency_max_us: max_us,
            cache,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted sample (`p` in 0..=100).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// A point-in-time snapshot of the service's behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Time since the service started.
    pub elapsed: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that ended in an error.
    pub failed: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// Completed requests per second of service uptime.
    pub throughput_rps: f64,
    /// Mean total latency (queue wait + compute), microseconds.
    pub latency_mean_us: f64,
    /// Median total latency, microseconds.
    pub latency_p50_us: u64,
    /// 99th-percentile total latency, microseconds.
    pub latency_p99_us: u64,
    /// Worst observed total latency, microseconds.
    pub latency_max_us: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50.0), 50);
        assert_eq!(percentile(&sample, 99.0), 99);
        assert_eq!(percentile(&sample, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn reservoir_stays_bounded_and_keeps_exact_mean_and_max() {
        let mut reservoir = LatencyReservoir::new();
        let n = (LATENCY_SAMPLE_CAP as u64) * 3;
        for i in 1..=n {
            reservoir.record(i);
        }
        assert_eq!(reservoir.samples.len(), LATENCY_SAMPLE_CAP);
        assert_eq!(reservoir.seen, n);
        assert_eq!(reservoir.max_us, n);
        // Exact mean of 1..=n regardless of which samples were kept.
        assert!((reservoir.mean_us() - (n + 1) as f64 / 2.0).abs() < 1e-9);
        // The sampled median of a uniform ramp stays near the true median.
        let mut sample = reservoir.samples.clone();
        sample.sort_unstable();
        let p50 = percentile(&sample, 50.0) as f64;
        assert!(
            (p50 - n as f64 / 2.0).abs() < n as f64 * 0.05,
            "p50 = {p50}"
        );
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let recorder = StatsRecorder::new();
        recorder.record_submitted();
        recorder.record_submitted();
        recorder.record_completed(Duration::from_micros(100));
        recorder.record_completed(Duration::from_micros(300));
        recorder.record_failed();
        let stats = recorder.snapshot(CacheStats::default(), 3);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.queue_depth, 3);
        assert_eq!(stats.latency_p50_us, 100);
        assert_eq!(stats.latency_p99_us, 300);
        assert_eq!(stats.latency_max_us, 300);
        assert!((stats.latency_mean_us - 200.0).abs() < 1e-9);
        assert!(stats.throughput_rps > 0.0);
    }
}
