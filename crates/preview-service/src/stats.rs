//! Service-level statistics: request counters, latency percentiles and
//! throughput, combined with the cache counters into one snapshot.
//!
//! Latency quantiles come from an exact [`preview_obs::Histogram`] — every
//! completed request lands in a bucket, so p50/p99 resolve the tail at any
//! request count (relative error ≤ 1/32 from bucket granularity, nothing
//! from sampling). The Algorithm-R reservoir is kept solely for what the
//! histogram quantizes: the exact mean and maximum.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use preview_obs::{Histogram, HistogramSnapshot, RouteCount, TraceId};

use crate::cache::CacheStats;
use crate::sync::lock_unpoisoned;

/// Upper bound on distinct (graph, algorithm) routes tracked for the
/// Prometheus `preview_requests_total` family. Label cardinality must stay
/// bounded no matter how many graphs a long-running service registers;
/// routes beyond the cap are folded into a single overflow bucket.
const ROUTE_CAP: usize = 64;

/// Label pair used for requests whose route fell past [`ROUTE_CAP`].
const ROUTE_OVERFLOW: &str = "_overflow";

/// Upper bound on retained latency samples. Percentiles beyond this many
/// completions come from a uniform reservoir (Vitter's Algorithm R), so a
/// long-running service holds a fixed ~512 KiB of latency state instead of
/// growing without bound.
const LATENCY_SAMPLE_CAP: usize = 65_536;

/// A bounded uniform sample of request latencies plus exact extremes/sums.
#[derive(Debug)]
struct LatencyReservoir {
    samples: Vec<u64>,
    /// Reservoir size (`LATENCY_SAMPLE_CAP` in production; tests shrink it).
    capacity: usize,
    /// Total latencies ever offered (> `samples.len()` once the cap is hit).
    seen: u64,
    /// Exact running sum for the mean (not subject to sampling).
    total_us: u128,
    /// Exact maximum (not subject to sampling).
    max_us: u64,
    /// xorshift64 state for replacement choices; deterministic seed, the
    /// sampled latencies themselves provide the variability.
    rng_state: u64,
}

impl LatencyReservoir {
    fn new() -> Self {
        Self::with_capacity(LATENCY_SAMPLE_CAP)
    }

    fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::new(),
            capacity,
            seen: 0,
            total_us: 0,
            max_us: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        self.rng_state
    }

    /// A uniform draw in `[0, bound)` via Lemire's multiply-shift reduction
    /// with rejection.
    ///
    /// The raw `x % bound` this replaces was doubly non-uniform: modulo over
    /// a range that does not divide `2^64` over-weights small residues, and
    /// a xorshift64 state is never zero, so the reduction inherited a dent
    /// at the states that map to slot 0. Multiply-shift takes the *high*
    /// bits of `x * bound` and rejects the few draws that land in the
    /// truncated final interval, giving every slot an exactly equal share of
    /// the accepted state space — the premise Algorithm R's inclusion
    /// guarantee rests on.
    fn uniform_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let product = u128::from(self.next_u64()) * u128::from(bound);
            let low = product as u64;
            if low < bound {
                // Only a draw in the truncated final interval can be biased;
                // compute the rejection threshold lazily (it is rarely hit).
                let threshold = bound.wrapping_neg() % bound;
                if low < threshold {
                    continue;
                }
            }
            return (product >> 64) as u64;
        }
    }

    fn record(&mut self, us: u64) {
        self.seen += 1;
        self.total_us += u128::from(us);
        self.max_us = self.max_us.max(us);
        if self.samples.len() < self.capacity {
            self.samples.push(us);
        } else {
            // Vitter's Algorithm R: the i-th item replaces a uniformly
            // chosen slot of 0..seen and is kept only if that slot lies in
            // the reservoir, preserving P(kept) = capacity / seen for all.
            let seen = self.seen;
            let slot = self.uniform_below(seen);
            if (slot as usize) < self.capacity {
                self.samples[slot as usize] = us;
            }
        }
    }

    fn mean_us(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.total_us as f64 / self.seen as f64
        }
    }
}

/// Shared mutable statistics the workers write into.
#[derive(Debug)]
pub(crate) struct StatsRecorder {
    /// Service start time, for uptime / throughput reporting only.
    // lint: allow(wall-clock, uptime and throughput are reporting-only; no decision depends on it)
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    publishes: AtomicU64,
    cache_carried_forward: AtomicU64,
    cache_invalidated: AtomicU64,
    /// Total (queue wait + compute) latency of completed requests, µs.
    /// Kept for the *exact* mean and max; quantiles come from the histogram.
    latencies: Mutex<LatencyReservoir>,
    /// Exact latency distribution: lock-free, every completion counted.
    latency_hist: Histogram,
    /// Per-(graph, algorithm) completion counts, capped at [`ROUTE_CAP`]
    /// distinct routes so export label cardinality stays bounded.
    routes: Mutex<Vec<RouteCount>>,
}

impl StatsRecorder {
    pub(crate) fn new() -> Self {
        Self {
            // lint: allow(wall-clock, uptime anchor for reporting-only throughput)
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            cache_carried_forward: AtomicU64::new(0),
            cache_invalidated: AtomicU64::new(0),
            latencies: Mutex::new(LatencyReservoir::new()),
            latency_hist: Histogram::new(),
            routes: Mutex::new(Vec::new()),
        }
    }

    /// Records one version-bumping delta publish and its cache maintenance
    /// outcome: superseded-version entries re-keyed onto the new version vs
    /// entries that went cold because the delta affected their scores.
    pub(crate) fn record_publish(&self, carried_forward: u64, invalidated: u64) {
        // lint: ordering-ok(independent monotonic counter; snapshot tolerates skew)
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.cache_carried_forward
            // lint: ordering-ok(independent monotonic counter; snapshot tolerates skew)
            .fetch_add(carried_forward, Ordering::Relaxed);
        self.cache_invalidated
            // lint: ordering-ok(independent monotonic counter; snapshot tolerates skew)
            .fetch_add(invalidated, Ordering::Relaxed);
    }

    pub(crate) fn record_submitted(&self) {
        // lint: ordering-ok(independent monotonic counter; snapshot tolerates skew)
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one successful completion. When the request was served with
    /// a trace, the latency bucket it lands in keeps the [`TraceId`] as its
    /// exemplar, so export consumers can jump from a histogram bucket to a
    /// concrete retained trace tree.
    pub(crate) fn record_completed(&self, latency: Duration, trace: Option<TraceId>) {
        // lint: ordering-ok(independent monotonic counter; snapshot tolerates skew)
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        match trace {
            Some(trace) => self.latency_hist.record_with_exemplar(us, trace.as_u64()),
            None => self.latency_hist.record(us),
        }
        lock_unpoisoned(&self.latencies).record(us);
    }

    /// The exact latency distribution (for the observability snapshot).
    pub(crate) fn latency_histogram(&self) -> HistogramSnapshot {
        self.latency_hist.snapshot()
    }

    /// Counts one completion against its `(graph, algorithm)` route. The
    /// route table is capped at [`ROUTE_CAP`] entries; later routes fold
    /// into a shared `_overflow` row so export label cardinality stays
    /// bounded regardless of registry size.
    pub(crate) fn record_route(&self, graph: &str, algorithm: &str) {
        let mut routes = lock_unpoisoned(&self.routes);
        if let Some(entry) = routes
            .iter_mut()
            .find(|r| r.graph == graph && r.algorithm == algorithm)
        {
            entry.requests += 1;
            return;
        }
        if routes.len() < ROUTE_CAP {
            routes.push(RouteCount {
                graph: graph.to_string(),
                algorithm: algorithm.to_string(),
                requests: 1,
            });
            return;
        }
        if let Some(entry) = routes
            .iter_mut()
            .find(|r| r.graph == ROUTE_OVERFLOW && r.algorithm == ROUTE_OVERFLOW)
        {
            entry.requests += 1;
        } else {
            // The cap already counts the overflow row we are about to add;
            // replace the last in-cap row's slot by growing once past it.
            routes.push(RouteCount {
                graph: ROUTE_OVERFLOW.to_string(),
                algorithm: ROUTE_OVERFLOW.to_string(),
                requests: 1,
            });
        }
    }

    /// The per-route completion counts (for the observability snapshot).
    pub(crate) fn routes(&self) -> Vec<RouteCount> {
        lock_unpoisoned(&self.routes).clone()
    }

    pub(crate) fn record_failed(&self) {
        // lint: ordering-ok(independent monotonic counter; snapshot tolerates skew)
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, cache: CacheStats, queue_depth: usize) -> ServiceStats {
        let (mean_us, max_us) = {
            let reservoir = lock_unpoisoned(&self.latencies);
            (reservoir.mean_us(), reservoir.max_us)
        };
        let hist = self.latency_hist.snapshot();
        let elapsed = self.started.elapsed();
        // lint: ordering-ok(statistical snapshot; counters may be mutually skewed)
        let completed = self.completed.load(Ordering::Relaxed);
        ServiceStats {
            elapsed,
            // lint: ordering-ok(statistical snapshot; counters may be mutually skewed)
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            // lint: ordering-ok(statistical snapshot; counters may be mutually skewed)
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth,
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            latency_mean_us: mean_us,
            latency_p50_us: hist.quantile(0.50),
            latency_p99_us: hist.quantile(0.99),
            latency_max_us: max_us,
            // lint: ordering-ok(statistical snapshot; counters may be mutually skewed)
            publishes: self.publishes.load(Ordering::Relaxed),
            // lint: ordering-ok(statistical snapshot; counters may be mutually skewed)
            cache_carried_forward: self.cache_carried_forward.load(Ordering::Relaxed),
            // lint: ordering-ok(statistical snapshot; counters may be mutually skewed)
            cache_invalidated: self.cache_invalidated.load(Ordering::Relaxed),
            cache,
        }
    }
}

/// A point-in-time snapshot of the service's behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Time since the service started.
    pub elapsed: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that ended in an error.
    pub failed: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// Completed requests per second of service uptime.
    pub throughput_rps: f64,
    /// Mean total latency (queue wait + compute), microseconds (exact).
    pub latency_mean_us: f64,
    /// Median total latency, microseconds: the lower bound of the exact
    /// histogram bucket holding the nearest-rank value (relative error
    /// ≤ 1/32, no sampling error at any request count).
    pub latency_p50_us: u64,
    /// 99th-percentile total latency, microseconds (same bounds as p50).
    pub latency_p99_us: u64,
    /// Worst observed total latency, microseconds.
    pub latency_max_us: u64,
    /// Version-bumping delta publishes served by this service.
    pub publishes: u64,
    /// Cache entries carried forward across version bumps because the delta
    /// provably did not affect their scores (re-keyed to the new version).
    pub cache_carried_forward: u64,
    /// Cache entries invalidated by version bumps: entries of a superseded
    /// version whose scoring configuration the delta affected, counted once
    /// at the bump that made them cold for latest traffic.
    pub cache_invalidated: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nearest-rank percentile over an ascending-sorted sample (`p` in
    /// 0..=100) — the exact reference the histogram quantiles are pinned
    /// against.
    fn percentile(sorted_us: &[u64], p: f64) -> u64 {
        if sorted_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
        sorted_us[rank.clamp(1, sorted_us.len()) - 1]
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50.0), 50);
        assert_eq!(percentile(&sample, 99.0), 99);
        assert_eq!(percentile(&sample, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn reservoir_stays_bounded_and_keeps_exact_mean_and_max() {
        let mut reservoir = LatencyReservoir::new();
        let n = (LATENCY_SAMPLE_CAP as u64) * 3;
        for i in 1..=n {
            reservoir.record(i);
        }
        assert_eq!(reservoir.samples.len(), LATENCY_SAMPLE_CAP);
        assert_eq!(reservoir.seen, n);
        assert_eq!(reservoir.max_us, n);
        // Exact mean of 1..=n regardless of which samples were kept.
        assert!((reservoir.mean_us() - (n + 1) as f64 / 2.0).abs() < 1e-9);
        // The sampled median of a uniform ramp stays near the true median.
        let mut sample = reservoir.samples.clone();
        sample.sort_unstable();
        let p50 = percentile(&sample, 50.0) as f64;
        assert!(
            (p50 - n as f64 / 2.0).abs() < n as f64 * 0.05,
            "p50 = {p50}"
        );
    }

    #[test]
    fn replacement_slots_come_from_the_lemire_reduction() {
        // Deterministic pin of the fixed replacement draw (capacity 4, items
        // 1..=20, the production seed). The pre-fix draw — raw
        // `xorshift % seen`, modulo-biased and fed by a never-zero state —
        // replaces different slots and leaves [14, 15, 3, 20] here.
        let mut reservoir = LatencyReservoir::with_capacity(4);
        for us in 1..=20 {
            reservoir.record(us);
        }
        assert_eq!(reservoir.samples, vec![18, 9, 16, 7]);
        assert_eq!(reservoir.seen, 20);
        assert_eq!(reservoir.max_us, 20);
    }

    #[test]
    fn uniform_below_is_unbiased_and_in_range() {
        let mut reservoir = LatencyReservoir::with_capacity(1);
        // Every draw lands in [0, bound), including slot 0 (unreachable for
        // some bounds under the raw modulo of a never-zero xorshift state),
        // and the frequencies are flat.
        let bound = 7u64;
        let draws = 70_000usize;
        let mut histogram = vec![0u64; bound as usize];
        for _ in 0..draws {
            let slot = reservoir.uniform_below(bound);
            assert!(slot < bound);
            histogram[slot as usize] += 1;
        }
        let expected = draws as f64 / bound as f64;
        for (slot, &count) in histogram.iter().enumerate() {
            let deviation = (count as f64 - expected).abs() / expected;
            assert!(
                deviation < 0.05,
                "slot {slot}: {count} draws vs expected {expected:.0}"
            );
        }
        // Degenerate bound: the only draw is 0.
        assert_eq!(reservoir.uniform_below(1), 0);
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let recorder = StatsRecorder::new();
        recorder.record_submitted();
        recorder.record_submitted();
        recorder.record_completed(Duration::from_micros(100), None);
        recorder.record_completed(Duration::from_micros(300), None);
        recorder.record_failed();
        let stats = recorder.snapshot(CacheStats::default(), 3);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.queue_depth, 3);
        // Histogram quantiles report bucket lower bounds: 100 µs sits on an
        // exact bucket boundary; 300 µs lands in the [296, 304) bucket.
        assert_eq!(stats.latency_p50_us, 100);
        assert_eq!(stats.latency_p99_us, 296);
        // Max and mean stay exact (reservoir-tracked, not bucketed).
        assert_eq!(stats.latency_max_us, 300);
        assert!((stats.latency_mean_us - 200.0).abs() < 1e-9);
        assert!(stats.throughput_rps > 0.0);
    }

    #[test]
    fn routes_fold_into_overflow_past_the_cap_and_exemplars_stick() {
        let recorder = StatsRecorder::new();
        for index in 0..ROUTE_CAP + 10 {
            recorder.record_route(&format!("graph-{index}"), "vanilla");
        }
        recorder.record_route("graph-0", "vanilla");
        let routes = recorder.routes();
        assert_eq!(routes.len(), ROUTE_CAP + 1);
        let overflow = routes
            .iter()
            .find(|r| r.graph == ROUTE_OVERFLOW)
            .expect("overflow route present");
        assert_eq!(overflow.requests, 10);
        let first = routes.iter().find(|r| r.graph == "graph-0").unwrap();
        assert_eq!(first.requests, 2);

        // A traced completion stamps its bucket's exemplar.
        recorder.record_completed(Duration::from_micros(500), TraceId::from_raw(42));
        let hist = recorder.latency_histogram();
        assert!(hist.bucket_exemplars().contains(&42));
    }

    /// Pins the histogram-vs-reference quantile error bound the exact
    /// histogram replaces the sampling reservoir under: every reported
    /// quantile is the lower bound of the bucket holding the true
    /// nearest-rank value — within 1/32 relative error, at any volume.
    ///
    /// The old 512-sample-style reservoir could only promise a *sampled*
    /// tail; at 1000+ requests its p99 rode on ~10 samples. The histogram's
    /// error here is structural (bucket width), not statistical, so the
    /// bound below is deterministic and holds for every load size tested.
    #[test]
    fn histogram_quantiles_track_the_exact_reference_within_one_bucket() {
        for n in [100u64, 1_000, 50_000] {
            let recorder = StatsRecorder::new();
            // Deterministic skewed workload: a long tail like service
            // latencies (quadratic ramp spreads mass across octaves).
            let mut all: Vec<u64> = (1..=n).map(|i| 50 + i * i % 9_973 + i / 3).collect();
            for &us in &all {
                recorder.record_completed(Duration::from_micros(us), None);
            }
            all.sort_unstable();
            let stats = recorder.snapshot(CacheStats::default(), 0);
            for (got, p) in [(stats.latency_p50_us, 50.0), (stats.latency_p99_us, 99.0)] {
                let reference = percentile(&all, p);
                assert!(
                    got <= reference,
                    "n={n} p{p}: histogram {got} above reference {reference}"
                );
                assert!(
                    reference - got <= reference / 32 + 1,
                    "n={n} p{p}: histogram {got} more than one bucket below {reference}"
                );
            }
            // Mean and max stay exact.
            let exact_mean = all.iter().sum::<u64>() as f64 / n as f64;
            assert!((stats.latency_mean_us - exact_mean).abs() < 1e-6);
            assert_eq!(stats.latency_max_us, *all.last().unwrap());
        }
    }
}
