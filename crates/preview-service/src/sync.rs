//! Poison-recovering lock helpers for the serving path.
//!
//! A worker panic poisons every `Mutex`/`RwLock` it held or later
//! touches via `PoisonError`. The serving path must keep degrading
//! gracefully after such a panic — the engine already captures a flight
//! dump and fails the in-flight request — so these helpers recover the
//! guard instead of unwrapping, which would cascade the panic into every
//! other worker that touches the same lock (and abort the process when
//! it happens inside a panic hook).
//!
//! Recovery is sound here because every critical section in this crate
//! is small and allocation-level: insert/remove on a map, rotate a
//! deque, record into a reservoir. A panic cannot leave those structures
//! half-updated in a way that violates their own invariants (the data
//! structure methods don't panic mid-rebalance); at worst one logical
//! entry (the panicking request's own) is missing, which the engine
//! already treats as a failed request.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Locks `mutex`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `rwlock`, recovering the guard if poisoned.
pub(crate) fn read_unpoisoned<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `rwlock`, recovering the guard if poisoned.
pub(crate) fn write_unpoisoned<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `condvar`, recovering the reacquired guard if poisoned.
pub(crate) fn wait_unpoisoned<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn poison<T: Send + 'static>(lock: &Arc<Mutex<T>>) {
        let lock = Arc::clone(lock);
        std::thread::spawn(move || {
            let _guard = lock.lock().unwrap();
            panic!("poison");
        })
        .join()
        .unwrap_err();
    }

    #[test]
    fn mutex_recovers_after_poison() {
        let lock = Arc::new(Mutex::new(7usize));
        poison(&lock);
        assert!(lock.is_poisoned());
        assert_eq!(*lock_unpoisoned(&lock), 7);
        *lock_unpoisoned(&lock) = 8;
        assert_eq!(*lock_unpoisoned(&lock), 8);
    }

    #[test]
    fn rwlock_recovers_after_poison() {
        let lock = Arc::new(RwLock::new(vec![1, 2]));
        {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _guard = lock.write().unwrap();
                panic!("poison");
            })
            .join()
            .unwrap_err();
        }
        assert!(lock.is_poisoned());
        assert_eq!(read_unpoisoned(&lock).len(), 2);
        write_unpoisoned(&lock).push(3);
        assert_eq!(read_unpoisoned(&lock).len(), 3);
    }

    #[test]
    fn condvar_wait_recovers_after_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Poison the mutex first.
        let poisoner = Arc::clone(&pair);
        std::thread::spawn(move || {
            let _guard = poisoner.0.lock().unwrap();
            panic!("poison");
        })
        .join()
        .unwrap_err();
        assert!(pair.0.is_poisoned());

        // A waiter must still wake up with a usable guard.
        let notifier = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            *lock_unpoisoned(&notifier.0) = true;
            notifier.1.notify_all();
        });
        let mut ready = lock_unpoisoned(&pair.0);
        while !*ready {
            ready = wait_unpoisoned(&pair.1, ready);
        }
        drop(ready);
        waker.join().unwrap();
    }
}
