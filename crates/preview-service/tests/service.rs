//! Integration tests for the preview service: LRU cache properties against a
//! reference model, cached-response determinism, and concurrent serving.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use entity_graph::fixtures;
use preview_core::{
    DynamicProgrammingDiscovery, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};
use preview_service::{
    GraphRegistry, PreviewRequest, PreviewService, ServiceConfig, ShardedLruCache,
};

/// A straightforward reference LRU: most-recent-first key order plus values.
struct ModelLru {
    order: Vec<u32>,
    values: HashMap<u32, u32>,
    capacity: usize,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self {
            order: Vec::new(),
            values: HashMap::new(),
            capacity,
        }
    }

    fn get(&mut self, key: u32) -> Option<u32> {
        let value = self.values.get(&key).copied()?;
        self.order.retain(|&k| k != key);
        self.order.insert(0, key);
        Some(value)
    }

    fn insert(&mut self, key: u32, value: u32) {
        if self.values.insert(key, value).is_some() {
            self.order.retain(|&k| k != key);
        } else if self.order.len() >= self.capacity {
            let evicted = self.order.pop().expect("full model has a tail");
            self.values.remove(&evicted);
        }
        self.order.insert(0, key);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a single shard, the cache's recency order, length and lookup
    /// results match the reference model after any operation sequence.
    #[test]
    fn single_shard_matches_reference_model(
        seed in 0u64..10_000,
        capacity in 1usize..12,
        ops in 1usize..200,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(capacity, 1);
        let mut model = ModelLru::new(capacity);
        for i in 0..ops {
            let key = rng.gen_range(0u32..16);
            if rng.gen_bool(0.5) {
                let value = i as u32;
                cache.insert(key, value);
                model.insert(key, value);
            } else {
                prop_assert_eq!(cache.get(&key), model.get(key));
            }
            prop_assert_eq!(cache.keys_by_recency(), model.order.clone());
            prop_assert_eq!(cache.len(), model.order.len());
            prop_assert!(cache.len() <= capacity);
        }
    }

    /// Regardless of shard count, occupancy never exceeds total capacity and
    /// the hit/miss/insert counters stay consistent with the operation count.
    #[test]
    fn sharded_capacity_and_counters_are_bounded(
        seed in 0u64..10_000,
        capacity in 1usize..32,
        shards in 1usize..6,
        ops in 1usize..300,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(capacity, shards);
        let mut inserts = 0u64;
        let mut lookups = 0u64;
        for _ in 0..ops {
            let key = rng.gen_range(0u32..64);
            if rng.gen_bool(0.6) {
                cache.insert(key, key);
                inserts += 1;
            } else {
                lookups += 1;
                if let Some(value) = cache.get(&key) {
                    prop_assert_eq!(value, key);
                }
            }
            prop_assert!(cache.len() <= cache.capacity());
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.insertions, inserts);
        prop_assert_eq!(stats.hits + stats.misses, lookups);
        prop_assert!(stats.evictions <= inserts);
        prop_assert!(stats.len <= stats.capacity);
    }
}

/// A cached response must be byte-identical to a fresh discovery: same Debug
/// rendering, same table description, bit-identical score.
#[test]
fn cached_response_is_byte_identical_to_fresh_discovery() {
    let registry = Arc::new(GraphRegistry::new());
    registry.register("fig1", fixtures::figure1_graph());
    let service = PreviewService::start(ServiceConfig::default(), Arc::clone(&registry));

    let request = PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
    let first = service.submit_wait(request.clone()).unwrap();
    let second = service.submit_wait(request).unwrap();
    assert!(!first.cache_hit);
    assert!(second.cache_hit);

    // Fresh discovery outside the service, from scratch.
    let graph = fixtures::figure1_graph();
    let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
    let fresh = DynamicProgrammingDiscovery::new()
        .discover(&scored, &PreviewSpace::concise(2, 6).unwrap())
        .unwrap()
        .expect("a preview exists");

    for response in [&first, &second] {
        let served = response.preview.as_ref().expect("a preview exists");
        assert_eq!(
            format!("{served:?}").into_bytes(),
            format!("{fresh:?}").into_bytes()
        );
        assert_eq!(
            served.describe(scored.schema()).into_bytes(),
            fresh.describe(scored.schema()).into_bytes()
        );
        assert_eq!(
            response.score.to_bits(),
            scored.preview_score(&fresh).to_bits()
        );
    }
}

/// Hammer one service from several client threads: every response is correct,
/// all requests complete, and repeated keys hit the cache.
#[test]
fn concurrent_clients_get_consistent_answers() {
    let registry = Arc::new(GraphRegistry::new());
    registry.register("fig1", fixtures::figure1_graph());
    let service = Arc::new(PreviewService::start(
        ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            cache_capacity: 64,
            cache_shards: 4,
        },
        registry,
    ));

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let request = PreviewRequest::new("fig1", PreviewSpace::concise(2, 6).unwrap());
                    let response = service.submit_wait(request).unwrap();
                    assert!((response.score - 84.0).abs() < 1e-9);
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    let stats = service.stats();
    assert_eq!(stats.submitted, 100);
    assert_eq!(stats.completed, 100);
    assert_eq!(stats.failed, 0);
    // All 100 requests share one key; at most a few racing first requests
    // can miss, everything else must come from the cache.
    assert!(stats.cache.hits >= 90, "hits = {}", stats.cache.hits);
    assert!(stats.latency_p99_us >= stats.latency_p50_us);
}

/// Hammer the shared fork-join pool from concurrent service requests: four
/// workers each serving `threads = 4` discoveries contend for the global
/// token budget, degrade gracefully when it is exhausted, and still produce
/// answers byte-identical to a sequential request — with the cache disabled
/// so every request really runs scoring + discovery.
#[test]
fn concurrent_parallel_requests_share_the_fork_join_pool_deterministically() {
    let registry = Arc::new(GraphRegistry::new());
    registry.register("fig1", fixtures::figure1_graph());
    let service = Arc::new(PreviewService::start(
        ServiceConfig {
            workers: 4,
            queue_capacity: 32,
            cache_capacity: 0, // no cache: every request exercises the pool
            cache_shards: 1,
        },
        registry,
    ));

    let spaces = [
        PreviewSpace::concise(2, 6).unwrap(),
        PreviewSpace::tight(2, 6, 2).unwrap(),
        PreviewSpace::diverse(2, 6, 2).unwrap(),
    ];
    // Sequential ground truth, computed inline before the hammering starts.
    let baselines: Vec<_> = spaces
        .iter()
        .map(|&space| {
            service
                .execute_inline(&PreviewRequest::new("fig1", space).with_threads(1))
                .unwrap()
        })
        .collect();

    let clients: Vec<_> = (0..8)
        .map(|client| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut responses = Vec::new();
                for round in 0..20 {
                    let space = spaces[(client + round) % spaces.len()];
                    let request = PreviewRequest::new("fig1", space).with_threads(4);
                    responses.push((
                        (client + round) % spaces.len(),
                        service.submit_wait(request).unwrap(),
                    ));
                }
                responses
            })
        })
        .collect();
    for client in clients {
        for (space_index, response) in client.join().unwrap() {
            let baseline = &baselines[space_index];
            assert_eq!(response.preview, baseline.preview);
            assert_eq!(response.score.to_bits(), baseline.score.to_bits());
        }
    }
    // Inline baseline executions bypass the queue and are not counted.
    let stats = service.stats();
    assert_eq!(stats.completed, 160);
    assert_eq!(stats.failed, 0);
}

/// Graph versioning: a re-registered graph serves new results while explicit
/// old-version requests still resolve against the old data.
#[test]
fn versioned_requests_resolve_independently() {
    let registry = Arc::new(GraphRegistry::new());
    registry.register("g", fixtures::figure1_graph());
    registry.register("g", fixtures::figure1_graph());
    let service = PreviewService::start(ServiceConfig::default(), registry);

    let latest = service
        .submit_wait(PreviewRequest::new(
            "g",
            PreviewSpace::concise(2, 6).unwrap(),
        ))
        .unwrap();
    assert_eq!(latest.version, 2);

    let pinned = service
        .submit_wait(PreviewRequest::new("g", PreviewSpace::concise(2, 6).unwrap()).with_version(1))
        .unwrap();
    assert_eq!(pinned.version, 1);
    // Different versions are distinct cache keys even with identical data.
    assert!(!pinned.cache_hit);
    assert_eq!(pinned.score.to_bits(), latest.score.to_bits());
}

/// Live updates: an empty delta never bumps the version; a real delta bumps
/// it, serves fresh results for latest traffic, and keeps version-pinned
/// requests answering from the superseded data.
#[test]
fn publish_delta_bumps_latest_but_not_pinned_requests() {
    let registry = Arc::new(GraphRegistry::new());
    registry.register("g", fixtures::figure1_graph());
    let service = PreviewService::start(ServiceConfig::default(), registry);
    let space = PreviewSpace::concise(2, 6).unwrap();

    let before = service
        .submit_wait(PreviewRequest::new("g", space))
        .unwrap();
    assert_eq!(before.version, 1);
    assert!((before.score - 84.0).abs() < 1e-9);

    // Empty delta: explicitly not a version bump.
    let noop = service
        .publish_delta("g", &preview_service::GraphDelta::new())
        .unwrap();
    assert!(!noop.bumped);
    assert_eq!(noop.version, 1);
    assert_eq!(service.stats().publishes, 0);

    // A real delta: one more film and one more Actor edge.
    let mut delta = preview_service::GraphDelta::new();
    delta.add_entity("Bad Boys", &["FILM"]).add_edge(
        "Will Smith",
        "Actor",
        "Bad Boys",
        "FILM ACTOR",
        "FILM",
    );
    let report = service.publish_delta("g", &delta).unwrap();
    assert!(report.bumped);
    assert_eq!(report.previous_version, 1);
    assert_eq!(report.version, 2);
    assert_eq!(report.summary.entities_added, 1);
    assert_eq!(report.summary.edges_added, 1);

    let after = service
        .submit_wait(PreviewRequest::new("g", space))
        .unwrap();
    assert_eq!(after.version, 2);
    // FILM coverage rose from 4 to 5 entities and Actor from 6 to 7 edges;
    // the optimal concise preview score moves accordingly.
    assert_ne!(after.score.to_bits(), before.score.to_bits());

    let pinned = service
        .submit_wait(PreviewRequest::new("g", space).with_version(1))
        .unwrap();
    assert_eq!(pinned.version, 1);
    assert_eq!(pinned.score.to_bits(), before.score.to_bits());
    assert_eq!(service.stats().publishes, 1);
}

/// Version-aware cache retention: entries whose scoring configuration a
/// delta provably does not affect are carried across the version bump (and
/// stay byte-identical); affected configurations go cold and recompute.
#[test]
fn unaffected_cache_entries_survive_version_bumps_bitwise() {
    use preview_core::{KeyScoring, NonKeyScoring};

    let registry = Arc::new(GraphRegistry::new());
    registry.register("g", fixtures::figure1_graph());
    let service = PreviewService::start(ServiceConfig::default(), registry);
    let space = PreviewSpace::concise(2, 6).unwrap();
    let entropy = ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy);

    // Warm the cache under both configurations on version 1.
    let warm_entropy = service
        .submit_wait(PreviewRequest::new("g", space).with_scoring(entropy))
        .unwrap();
    let warm_coverage = service
        .submit_wait(PreviewRequest::new("g", space))
        .unwrap();
    assert!(!warm_entropy.cache_hit && !warm_coverage.cache_hit);

    // A duplicate parallel Actor edge: attribute values are sets, so the
    // entropy distribution (and coverage *key* scores) cannot move — but the
    // Actor edge count does, so coverage non-key scoring is affected.
    let mut delta = preview_service::GraphDelta::new();
    delta.add_edge("Will Smith", "Actor", "Men in Black", "FILM ACTOR", "FILM");
    let report = service.publish_delta("g", &delta).unwrap();
    assert!(report.bumped);
    assert_eq!(report.rescored_configs, 2);
    assert_eq!(report.unaffected_configs, 1);
    assert!(report.cache_carried_forward >= 1);
    assert!(report.cache_invalidated >= 1);

    // The entropy entry was carried forward: a latest-version request hits
    // the cache without recomputing, byte-identical to the pre-bump answer.
    let entropy_after = service
        .submit_wait(PreviewRequest::new("g", space).with_scoring(entropy))
        .unwrap();
    assert_eq!(entropy_after.version, 2);
    assert!(entropy_after.cache_hit);
    assert_eq!(entropy_after.preview, warm_entropy.preview);
    assert_eq!(entropy_after.score.to_bits(), warm_entropy.score.to_bits());

    // The coverage entry went cold with the bump and is recomputed.
    let coverage_after = service
        .submit_wait(PreviewRequest::new("g", space))
        .unwrap();
    assert_eq!(coverage_after.version, 2);
    assert!(!coverage_after.cache_hit);

    let stats = service.stats();
    assert_eq!(stats.publishes, 1);
    assert_eq!(stats.cache_carried_forward, report.cache_carried_forward);
    assert_eq!(stats.cache_invalidated, report.cache_invalidated);
}

/// A rejected batch is atomic at the service level: typed error, no version
/// bump, no cache maintenance, and serving continues unperturbed.
#[test]
fn rejected_delta_leaves_the_service_untouched() {
    let registry = Arc::new(GraphRegistry::new());
    registry.register("g", fixtures::figure1_graph());
    let service = PreviewService::start(ServiceConfig::default(), registry);
    let space = PreviewSpace::concise(2, 6).unwrap();
    let before = service
        .submit_wait(PreviewRequest::new("g", space))
        .unwrap();

    let mut delta = preview_service::GraphDelta::new();
    delta.remove_entity("Men in Black"); // still referenced by edges
    let err = service.publish_delta("g", &delta).unwrap_err();
    assert!(matches!(err, preview_service::ServiceError::Delta(_)));

    let after = service
        .submit_wait(PreviewRequest::new("g", space))
        .unwrap();
    assert_eq!(after.version, 1);
    assert!(after.cache_hit);
    assert_eq!(after.score.to_bits(), before.score.to_bits());
    let stats = service.stats();
    assert_eq!(stats.publishes, 0);
    assert_eq!(stats.cache_carried_forward + stats.cache_invalidated, 0);
}

/// With a retention window of 1, publishing drops the superseded version —
/// pinned requests against it fail fast — while unaffected cache entries are
/// still carried onto the new version.
#[test]
fn retention_window_of_one_prunes_superseded_versions() {
    use preview_core::{KeyScoring, NonKeyScoring};

    let registry = Arc::new(GraphRegistry::with_retention(1));
    registry.register("g", fixtures::figure1_graph());
    let service = PreviewService::start(ServiceConfig::default(), registry);
    let space = PreviewSpace::concise(2, 6).unwrap();
    let entropy = ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy);
    let warm = service
        .submit_wait(PreviewRequest::new("g", space).with_scoring(entropy))
        .unwrap();

    let mut delta = preview_service::GraphDelta::new();
    delta.add_edge("Will Smith", "Actor", "Men in Black", "FILM ACTOR", "FILM");
    let report = service.publish_delta("g", &delta).unwrap();
    assert!(report.bumped);
    assert_eq!(report.versions_dropped, 1);
    assert_eq!(report.cache_carried_forward, 1);

    // Version 1 is gone.
    let err = service
        .submit_wait(PreviewRequest::new("g", space).with_version(1))
        .unwrap_err();
    assert!(matches!(
        err,
        preview_service::ServiceError::GraphNotFound { .. }
    ));
    // The carried entry still serves latest traffic, byte-identically.
    let after = service
        .submit_wait(PreviewRequest::new("g", space).with_scoring(entropy))
        .unwrap();
    assert!(after.cache_hit);
    assert_eq!(after.score.to_bits(), warm.score.to_bits());
}

/// Racing publishes against the same name must not lose edits: each batch is
/// re-applied on top of the latest version if another publish won the race,
/// so every acknowledged delta is present in the final graph.
#[test]
fn concurrent_publishes_lose_no_edits() {
    let registry = Arc::new(GraphRegistry::new());
    registry.register("g", fixtures::figure1_graph());
    let publishers: Vec<_> = (0..4)
        .map(|i| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let mut delta = preview_service::GraphDelta::new();
                delta.add_entity(format!("Race #{i}"), &["FILM"]);
                registry.publish_delta("g", &delta).unwrap()
            })
        })
        .collect();
    for publisher in publishers {
        assert!(publisher.join().unwrap().bumped);
    }
    let latest = registry.get("g", None).unwrap();
    assert_eq!(latest.version(), 5);
    let graph = latest.graph();
    for i in 0..4 {
        assert!(
            graph.entity_by_name(&format!("Race #{i}")).is_some(),
            "edit {i} was lost by a racing publish"
        );
    }
    assert_eq!(
        graph.entity_count(),
        fixtures::figure1_graph().entity_count() + 4
    );
}
