//! Preview tables for entity graphs — the core library of this workspace.
//!
//! This crate implements the primary contribution of *Generating Preview
//! Tables for Entity Graphs* (Yan, Hasani, Asudeh, Li; SIGMOD 2016):
//!
//! * the preview data model ([`Preview`], [`PreviewTable`], [`NonKeyAttr`],
//!   Def. 1),
//! * goodness measures for key and non-key attributes ([`scoring`], Sec. 3),
//! * the concise / tight / diverse optimisation problems ([`SizeConstraint`],
//!   [`DistanceConstraint`], [`PreviewSpace`], Sec. 4),
//! * the discovery algorithms ([`BruteForceDiscovery`],
//!   [`DynamicProgrammingDiscovery`], [`AprioriDiscovery`], Sec. 5), plus a
//!   best-first branch-and-bound engine with an anytime mode
//!   ([`BestFirstDiscovery`], this work).
//!
//! # Quick start
//!
//! ```
//! use entity_graph::fixtures;
//! use preview_core::{
//!     DynamicProgrammingDiscovery, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
//! };
//!
//! // The paper's Fig. 1 entity graph.
//! let graph = fixtures::figure1_graph();
//!
//! // Pre-compute schema graph, scores and candidate lists (coverage/coverage).
//! let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
//!
//! // Find the optimal concise preview with 2 tables and 6 non-key attributes.
//! let space = PreviewSpace::concise(2, 6).unwrap();
//! let preview = DynamicProgrammingDiscovery::new()
//!     .discover(&scored, &space)
//!     .unwrap()
//!     .expect("a preview exists");
//!
//! assert_eq!(preview.tables().len(), 2);
//! assert!((scored.preview_score(&preview) - 84.0).abs() < 1e-9);
//! println!("{}", preview.describe(scored.schema()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algo;
pub mod candidates;
mod constraint;
mod error;
pub mod par;
mod preview;
pub mod scoring;
pub mod sharded;

pub use algo::{
    best_preview_for_subset, brute_force_subset_count, AnytimeBudget, AnytimeOutcome,
    AprioriDiscovery, BestFirstDiscovery, BruteForceDiscovery, DynamicProgrammingDiscovery,
    PreviewDiscovery, SearchStats,
};
pub use candidates::Candidate;
pub use constraint::{DistanceConstraint, PreviewSpace, SizeConstraint};
pub use error::{Error, Result};
pub use par::FjPool;
pub use preview::{MaterializedRow, MaterializedTable, NonKeyAttr, Preview, PreviewTable};
pub use scoring::{KeyScoring, NonKeyScoring, RandomWalkConfig, ScoredSchema, ScoringConfig};
pub use sharded::{apply_delta_parallel, build_sharded, sharded_entropy_scores_with};

/// Compile-time guarantees that the types a serving layer shares across
/// threads are `Send + Sync + Clone`. Discovery over a shared
/// [`ScoredSchema`] from many worker threads (see the `preview-service`
/// crate) is only sound because these bounds hold; a regression — say an
/// `Rc` or `RefCell` slipping into a scoring structure — becomes a build
/// error here instead of a runtime surprise downstream.
mod static_assertions {
    #![allow(dead_code)]

    use super::*;

    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}

    const _: () = {
        // The pre-computed scoring state shared behind `Arc` by every worker.
        assert_send_sync_clone::<ScoredSchema>();
        // Discovery inputs and outputs crossing thread boundaries.
        assert_send_sync_clone::<Preview>();
        assert_send_sync_clone::<PreviewTable>();
        assert_send_sync_clone::<NonKeyAttr>();
        assert_send_sync_clone::<Candidate>();
        assert_send_sync_clone::<PreviewSpace>();
        assert_send_sync_clone::<SizeConstraint>();
        assert_send_sync_clone::<DistanceConstraint>();
        assert_send_sync_clone::<ScoringConfig>();
        assert_send_sync_clone::<Error>();
        // The discovery algorithms themselves (stateless unit structs).
        assert_send_sync_clone::<BruteForceDiscovery>();
        assert_send_sync_clone::<DynamicProgrammingDiscovery>();
        assert_send_sync_clone::<AprioriDiscovery>();
        assert_send_sync_clone::<BestFirstDiscovery>();
        // Anytime results handed back across the serving boundary.
        assert_send_sync_clone::<AnytimeBudget>();
        assert_send_sync_clone::<AnytimeOutcome>();
        assert_send_sync_clone::<SearchStats>();
    };
}
