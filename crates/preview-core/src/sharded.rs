//! Sharded-storage drivers: parallel shard builds, parallel delta
//! re-splicing and cross-shard entropy aggregation, all on the crate's
//! fork-join pool ([`FjPool`]).
//!
//! `entity-graph` keeps its sharding layer runtime-free by inverting control
//! (see [`ShardedGraph::from_graph_with`]); this module injects the pool.
//! Everything here is **bitwise identical** to the unsharded path:
//!
//! * shard builds and re-splices are independent per shard and collected in
//!   shard order, so any schedule produces the same `ShardedGraph`;
//! * entropy scoring groups tuples by their *canonical encoded* neighbor
//!   bytes instead of borrowed neighbor slices — a bijection on value sets —
//!   then merges the per-shard groups into one global count multiset and
//!   sums it through the same sorted-order kernel as the unsharded scorer,
//!   so every score matches [`nonkey::entropy_scores`] bit for bit (the
//!   determinism guard enforces this).

use std::collections::HashMap;
use std::sync::Arc;

use entity_graph::{
    AppliedShardedDelta, Direction, EntityGraph, GraphDelta, SchemaEdge, SchemaGraph, ShardedGraph,
    ShardingStrategy, TypeId,
};

use crate::par::FjPool;
use crate::scoring::nonkey;

/// Shards `graph` under `strategy`, building the shards in parallel on the
/// [global fork-join pool](FjPool::global) with the given thread budget
/// (`1` = sequential, `0` = auto; see
/// [`ScoringConfig::threads`](crate::ScoringConfig::threads)).
///
/// The result is identical to [`ShardedGraph::from_graph`] for every
/// `threads` value: shards are independent and collected in shard order.
pub fn build_sharded(
    graph: Arc<EntityGraph>,
    strategy: ShardingStrategy,
    threads: usize,
) -> ShardedGraph {
    ShardedGraph::from_graph_with(graph, strategy, |count, build| {
        let indexes: Vec<usize> = (0..count).collect();
        FjPool::global().map(threads, &indexes, |_, &shard| build(shard))
    })
}

/// Applies a delta to a sharded graph, re-splicing the shards in parallel on
/// the [global fork-join pool](FjPool::global).
///
/// Identical to [`ShardedGraph::apply_delta`] for every `threads` value —
/// and therefore equal to resharding the spliced logical graph from scratch.
///
/// # Errors
///
/// Exactly those of [`entity_graph::EntityGraph::apply_delta`]; a failed
/// batch leaves `sharded` untouched.
pub fn apply_delta_parallel(
    sharded: &ShardedGraph,
    delta: &GraphDelta,
    threads: usize,
) -> entity_graph::Result<AppliedShardedDelta> {
    sharded.apply_delta_with(delta, |count, build| {
        let indexes: Vec<usize> = (0..count).collect();
        FjPool::global().map(threads, &indexes, |_, &shard| build(shard))
    })
}

/// Entropy-based non-key scores computed from sharded storage, sequentially.
/// See [`sharded_entropy_scores_with`].
pub fn sharded_entropy_scores(
    sharded: &ShardedGraph,
    schema: &SchemaGraph,
) -> (Vec<f64>, Vec<f64>) {
    sharded_entropy_scores_with(sharded, schema, 1)
}

/// Entropy-based non-key scores for both orientations of every schema edge,
/// computed from sharded storage with cross-shard aggregation, scoring the
/// candidate attributes in parallel on the
/// [global fork-join pool](FjPool::global).
///
/// Bitwise identical to
/// [`nonkey::entropy_scores_with`] on the logical graph for every `threads`
/// value: tuples group equal iff their canonical encoded neighbor bytes are
/// equal, merging per-shard groups preserves the global count multiset (an
/// entity lives in exactly one shard), and the final sum runs over sorted
/// counts in both paths.
pub fn sharded_entropy_scores_with(
    sharded: &ShardedGraph,
    schema: &SchemaGraph,
    threads: usize,
) -> (Vec<f64>, Vec<f64>) {
    FjPool::global()
        .map(threads, schema.edges(), |_, edge| {
            sharded_entropy_scores_for_edge(sharded, schema, edge)
        })
        .into_iter()
        .unzip()
}

/// Entropy scores of a single schema edge from sharded storage:
/// `(outgoing, incoming)`. Bitwise identical to
/// [`nonkey::entropy_scores_for_edge`].
pub fn sharded_entropy_scores_for_edge(
    sharded: &ShardedGraph,
    schema: &SchemaGraph,
    edge: &SchemaEdge,
) -> (f64, f64) {
    let outgoing = sharded_orientation_entropy(
        sharded,
        schema,
        edge.name.as_str(),
        edge.src,
        edge.dst,
        Direction::Outgoing,
    );
    let incoming = sharded_orientation_entropy(
        sharded,
        schema,
        edge.name.as_str(),
        edge.src,
        edge.dst,
        Direction::Incoming,
    );
    (outgoing, incoming)
}

fn sharded_orientation_entropy(
    sharded: &ShardedGraph,
    schema: &SchemaGraph,
    rel_name: &str,
    src: TypeId,
    dst: TypeId,
    direction: Direction,
) -> f64 {
    let graph = sharded.graph();
    // Same name-based resolution as the unsharded scorer, so schema graphs
    // from a different builder run still line up.
    let (src_in_graph, dst_in_graph) = match (
        graph.type_by_name(schema.type_name(src)),
        graph.type_by_name(schema.type_name(dst)),
    ) {
        (Some(s), Some(d)) => (s, d),
        _ => return 0.0,
    };
    let rel = match graph.rel_type_by_key(rel_name, src_in_graph, dst_in_graph) {
        Some(r) => r,
        None => return 0.0,
    };
    let key_type = match direction {
        Direction::Outgoing => src_in_graph,
        Direction::Incoming => dst_in_graph,
    };
    // Cross-shard aggregation: every shard contributes its members' encoded
    // value bytes to one global group map. The encoding is canonical —
    // identical neighbor sets encode to identical bytes and vice versa — so
    // the groups are exactly the unsharded scorer's slice-keyed groups, just
    // discovered shard by shard.
    let mut groups: HashMap<&[u8], u64> = HashMap::new();
    let mut non_empty = 0u64;
    for shard in sharded.shards() {
        for &local in shard.locals_of_type(key_type) {
            if let Some(bytes) = shard.encoded(local as usize, rel, direction) {
                non_empty += 1;
                *groups.entry(bytes).or_insert(0) += 1;
            }
        }
    }
    if non_empty == 0 {
        return 0.0;
    }
    nonkey::entropy_from_counts(groups.into_values().collect(), non_empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|f| f.to_bits()).collect()
    }

    fn strategies() -> [ShardingStrategy; 3] {
        [
            ShardingStrategy::ByEntityType { shards: 1 },
            ShardingStrategy::ByEntityType { shards: 4 },
            ShardingStrategy::ByIdHash { shards: 3 },
        ]
    }

    #[test]
    fn parallel_build_matches_sequential_reference() {
        let graph = Arc::new(fixtures::figure1_graph());
        for strategy in strategies() {
            let reference = ShardedGraph::from_graph(Arc::clone(&graph), strategy);
            for threads in [0, 1, 2, 8] {
                let parallel = build_sharded(Arc::clone(&graph), strategy, threads);
                assert_eq!(parallel, reference, "{strategy:?} threads={threads}");
            }
        }
    }

    #[test]
    fn sharded_entropy_is_bitwise_identical_to_unsharded() {
        let graph = Arc::new(fixtures::figure1_graph());
        let schema = graph.schema_graph().clone();
        let (expected_out, expected_inc) = nonkey::entropy_scores(&graph, &schema);
        for strategy in strategies() {
            let sharded = build_sharded(Arc::clone(&graph), strategy, 0);
            for threads in [0, 1, 2, 8] {
                let (out, inc) = sharded_entropy_scores_with(&sharded, &schema, threads);
                assert_eq!(bits(&out), bits(&expected_out), "{strategy:?}");
                assert_eq!(bits(&inc), bits(&expected_inc), "{strategy:?}");
            }
        }
    }

    #[test]
    fn parallel_delta_apply_matches_reshard_from_scratch() {
        let graph = Arc::new(fixtures::figure1_graph());
        let mut delta = GraphDelta::new();
        delta
            .add_entity("Bad Boys", &["FILM"])
            .add_edge("Will Smith", "Actor", "Bad Boys", "FILM ACTOR", "FILM")
            .remove_edge(
                "Men in Black",
                "Genres",
                "Action Film",
                "FILM",
                "FILM GENRE",
            );
        for strategy in strategies() {
            let sharded = build_sharded(Arc::clone(&graph), strategy, 0);
            for threads in [0, 1, 4] {
                let applied = apply_delta_parallel(&sharded, &delta, threads).unwrap();
                let reference =
                    ShardedGraph::from_graph(Arc::clone(applied.sharded.graph()), strategy);
                assert_eq!(applied.sharded, reference, "{strategy:?} threads={threads}");
                // Entropy over the new version stays bitwise identical too.
                let schema = applied.sharded.graph().schema_graph().clone();
                let (expected_out, expected_inc) =
                    nonkey::entropy_scores(applied.sharded.graph(), &schema);
                let (out, inc) = sharded_entropy_scores(&applied.sharded, &schema);
                assert_eq!(bits(&out), bits(&expected_out));
                assert_eq!(bits(&inc), bits(&expected_inc));
            }
        }
    }
}
