//! Size and distance constraints on previews (Sec. 4, Def. 2).

use serde::{Deserialize, Serialize};

use entity_graph::DistanceMatrix;

use crate::error::{Error, Result};
use crate::preview::Preview;

/// The size constraint `(k, n)`: a preview must contain exactly `k` preview
/// tables and at most `n` non-key attributes in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SizeConstraint {
    /// Number of preview tables (key attributes), `k`.
    pub tables: usize,
    /// Maximum total number of non-key attributes across all tables, `n`.
    pub non_keys: usize,
}

impl SizeConstraint {
    /// Creates a size constraint, validating that `k ≥ 1` and `n ≥ k` (every
    /// preview table must contain at least one non-key attribute, Def. 1).
    pub fn new(tables: usize, non_keys: usize) -> Result<Self> {
        if tables == 0 {
            return Err(Error::invalid_constraint(
                "a preview must contain at least one table (k >= 1)",
            ));
        }
        if non_keys < tables {
            return Err(Error::invalid_constraint(format!(
                "n (={non_keys}) must be at least k (={tables}) because every preview table needs a non-key attribute"
            )));
        }
        Ok(Self { tables, non_keys })
    }
}

/// The pairwise distance constraint between preview tables (Def. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceConstraint {
    /// Tight previews: every pair of key attributes within distance `d`.
    AtMost(u32),
    /// Diverse previews: every pair of key attributes at distance at least `d`.
    AtLeast(u32),
}

impl DistanceConstraint {
    /// Whether a single pairwise distance satisfies the constraint.
    ///
    /// Unreachable pairs (disconnected schema components) violate a tight
    /// constraint and satisfy a diverse constraint.
    #[inline]
    pub fn pair_ok(&self, distance: u32) -> bool {
        match *self {
            DistanceConstraint::AtMost(d) => distance <= d,
            DistanceConstraint::AtLeast(d) => distance >= d,
        }
    }

    /// The numeric bound `d`.
    pub fn bound(&self) -> u32 {
        match *self {
            DistanceConstraint::AtMost(d) | DistanceConstraint::AtLeast(d) => d,
        }
    }
}

/// The space of candidate previews the optimisation ranges over (Def. 2):
/// concise (`P_{k,n}`), tight (`P_{k,n,≤d}`) or diverse (`P_{k,n,≥d}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreviewSpace {
    /// Concise previews: size constraint only.
    Concise(SizeConstraint),
    /// Tight previews: size constraint plus pairwise distance ≤ `d`.
    Tight(SizeConstraint, u32),
    /// Diverse previews: size constraint plus pairwise distance ≥ `d`.
    Diverse(SizeConstraint, u32),
}

impl PreviewSpace {
    /// Convenience constructor for the concise space.
    pub fn concise(tables: usize, non_keys: usize) -> Result<Self> {
        Ok(PreviewSpace::Concise(SizeConstraint::new(
            tables, non_keys,
        )?))
    }

    /// Convenience constructor for the tight space.
    pub fn tight(tables: usize, non_keys: usize, d: u32) -> Result<Self> {
        Ok(PreviewSpace::Tight(
            SizeConstraint::new(tables, non_keys)?,
            d,
        ))
    }

    /// Convenience constructor for the diverse space.
    pub fn diverse(tables: usize, non_keys: usize, d: u32) -> Result<Self> {
        Ok(PreviewSpace::Diverse(
            SizeConstraint::new(tables, non_keys)?,
            d,
        ))
    }

    /// The size constraint `(k, n)`.
    pub fn size(&self) -> SizeConstraint {
        match *self {
            PreviewSpace::Concise(s) | PreviewSpace::Tight(s, _) | PreviewSpace::Diverse(s, _) => s,
        }
    }

    /// The distance constraint, if any.
    pub fn distance(&self) -> Option<DistanceConstraint> {
        match *self {
            PreviewSpace::Concise(_) => None,
            PreviewSpace::Tight(_, d) => Some(DistanceConstraint::AtMost(d)),
            PreviewSpace::Diverse(_, d) => Some(DistanceConstraint::AtLeast(d)),
        }
    }

    /// Checks whether a preview is a member of this space: correct number of
    /// tables, at most `n` non-key attributes, each table non-empty, distinct
    /// key attributes, and all pairwise distances within bounds.
    pub fn contains(&self, preview: &Preview, distances: &DistanceMatrix) -> bool {
        let size = self.size();
        if preview.tables().len() != size.tables {
            return false;
        }
        if preview.non_key_count() > size.non_keys {
            return false;
        }
        if preview.tables().iter().any(|t| t.non_keys().is_empty()) {
            return false;
        }
        // Distinct key attributes.
        let mut keys: Vec<_> = preview.tables().iter().map(|t| t.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        if keys.len() != preview.tables().len() {
            return false;
        }
        if let Some(constraint) = self.distance() {
            for (i, a) in preview.tables().iter().enumerate() {
                for b in preview.tables().iter().skip(i + 1) {
                    if !constraint.pair_ok(distances.distance(a.key(), b.key())) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constraint_validation() {
        assert!(SizeConstraint::new(2, 6).is_ok());
        assert!(SizeConstraint::new(0, 6).is_err());
        assert!(SizeConstraint::new(3, 2).is_err());
        // n == k is allowed: one non-key attribute per table.
        assert!(SizeConstraint::new(3, 3).is_ok());
    }

    #[test]
    fn distance_constraint_pairs() {
        let tight = DistanceConstraint::AtMost(2);
        assert!(tight.pair_ok(1));
        assert!(tight.pair_ok(2));
        assert!(!tight.pair_ok(3));
        assert!(!tight.pair_ok(u32::MAX));
        assert_eq!(tight.bound(), 2);

        let diverse = DistanceConstraint::AtLeast(2);
        assert!(!diverse.pair_ok(1));
        assert!(diverse.pair_ok(2));
        assert!(diverse.pair_ok(u32::MAX));
        assert_eq!(diverse.bound(), 2);
    }

    #[test]
    fn space_accessors() {
        let c = PreviewSpace::concise(2, 6).unwrap();
        assert_eq!(c.size().tables, 2);
        assert_eq!(c.distance(), None);

        let t = PreviewSpace::tight(2, 6, 2).unwrap();
        assert_eq!(t.distance(), Some(DistanceConstraint::AtMost(2)));

        let d = PreviewSpace::diverse(2, 6, 4).unwrap();
        assert_eq!(d.distance(), Some(DistanceConstraint::AtLeast(4)));
    }

    #[test]
    fn invalid_size_propagates_through_constructors() {
        assert!(PreviewSpace::concise(0, 5).is_err());
        assert!(PreviewSpace::tight(4, 2, 1).is_err());
        assert!(PreviewSpace::diverse(4, 2, 1).is_err());
    }
}
