//! Deterministic fork-join parallelism for the discovery hot paths.
//!
//! The paper's discovery algorithms enumerate and score `k`-subsets of entity
//! types — embarrassingly parallel work over shared, read-only
//! [`ScoredSchema`](crate::ScoredSchema) state. This module provides the one
//! primitive they need: a chunked map over a slice, executed on scoped
//! `std::thread`s, whose results are **merged in index order** so the output
//! is byte-identical to the sequential loop no matter how many threads ran or
//! how the scheduler interleaved them.
//!
//! # Determinism contract
//!
//! [`FjPool::map`] returns exactly `items.iter().enumerate().map(f).collect()`
//! — per-index results are computed independently and written to per-index
//! slots, so scheduling cannot reorder them. Reductions built on top (the
//! algorithms fold the per-index results left to right) therefore see the
//! same operand order as the sequential code. [`FjPool::map_chunked`] splits
//! an index range into contiguous chunks whose *boundaries depend on the
//! requested thread count*; it is reserved for reductions that are exactly
//! associative — e.g. the earliest-index strict-argmax the discovery
//! algorithms use, where merging per-chunk winners in chunk order provably
//! equals the sequential scan.
//!
//! # Oversubscription control
//!
//! All parallel regions draw *worker tokens* from a shared budget (one
//! [`FjPool`], usually [`FjPool::global`]). A region that asks for `t`
//! threads acquires up to `t − 1` tokens without blocking and runs with
//! however many it got — possibly zero, in which case it degrades to the
//! plain sequential loop on the calling thread. Because acquisition never
//! blocks, nested parallel regions and many concurrent callers (e.g. the
//! `preview-service` worker pool, where every worker may serve a
//! `threads = 4` request at once) cannot deadlock and cannot oversubscribe
//! the machine: the total number of extra fork-join threads alive at any
//! instant is bounded by the pool's capacity.
//!
//! # Example
//!
//! ```
//! use preview_core::par::FjPool;
//!
//! let pool = FjPool::new(3); // up to 3 extra workers
//! let squares = pool.map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // index order, always
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// How many chunks each requested worker gets in [`FjPool::map_chunked`]:
/// more chunks than workers smooths out imbalance between chunk costs while
/// keeping per-chunk scheduling overhead negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// A shared fork-join worker budget (see the [module docs](self)).
///
/// The pool does not own threads: parallel regions spawn scoped threads on
/// demand and the pool only bounds how many may be alive at once. This keeps
/// the implementation free of `unsafe` (borrowed inputs flow into
/// `std::thread::scope` directly) while still preventing oversubscription
/// when many regions run concurrently.
#[derive(Debug)]
pub struct FjPool {
    /// Maximum number of extra worker threads across all concurrent regions.
    capacity: usize,
    /// Total workers (caller included) an "auto" (`threads = 0`) request
    /// resolves to; see [`resolve_threads`](Self::resolve_threads).
    auto_workers: usize,
    /// Tokens currently available for acquisition.
    available: AtomicUsize,
}

/// Releases acquired tokens even if a mapped closure panics while the scoped
/// threads unwind.
struct TokenGuard<'a> {
    pool: &'a FjPool,
    tokens: usize,
}

impl Drop for TokenGuard<'_> {
    fn drop(&mut self) {
        self.pool.release(self.tokens);
    }
}

impl FjPool {
    /// Creates a pool budgeting at most `capacity` extra worker threads
    /// across all concurrent parallel regions. "Auto" requests resolve to
    /// the full budget (`capacity + 1` workers).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            auto_workers: capacity + 1,
            available: AtomicUsize::new(capacity),
        }
    }

    /// The process-wide pool shared by scoring, discovery and the serving
    /// layer.
    ///
    /// Its token budget is `available_parallelism − 1` extra workers (the
    /// caller thread always participates), floored at 3 so *explicitly*
    /// requested thread counts keep spawning real threads — and the parallel
    /// machinery stays exercised and testable — on single-core hosts, where
    /// the operating system timeslices the extra workers. "Auto"
    /// (`threads = 0`) requests, by contrast, resolve to the host's true
    /// parallelism: auto never oversubscribes, so on a single-core
    /// production host it degrades to the sequential path instead of paying
    /// timesliced-thread overhead.
    pub fn global() -> &'static FjPool {
        static GLOBAL: OnceLock<FjPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = thread::available_parallelism().map_or(1, |n| n.get());
            FjPool {
                capacity: cores.saturating_sub(1).max(3),
                auto_workers: cores,
                available: AtomicUsize::new(cores.saturating_sub(1).max(3)),
            }
        })
    }

    /// Maximum number of extra worker threads this pool budgets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tokens currently available (for diagnostics; racy by nature).
    pub fn available(&self) -> usize {
        // lint: ordering-ok(diagnostic read, documented racy; acquisition goes through the CAS loop)
        self.available.load(Ordering::Relaxed)
    }

    /// Acquires up to `want` tokens without blocking; returns how many were
    /// granted (possibly zero).
    fn try_acquire(&self, want: usize) -> usize {
        // lint: ordering-ok(Acquire pairs with release()'s AcqRel so granted tokens observe the releasing worker's effects)
        let mut current = self.available.load(Ordering::Acquire);
        loop {
            let take = want.min(current);
            if take == 0 {
                return 0;
            }
            match self.available.compare_exchange_weak(
                current,
                current - take,
                // lint: ordering-ok(AcqRel: acquire the releasing worker's effects, release our claim to later acquirers)
                Ordering::AcqRel,
                // lint: ordering-ok(failure path only refreshes the counter; Acquire keeps pairing with release())
                Ordering::Acquire,
            ) {
                Ok(_) => return take,
                Err(actual) => current = actual,
            }
        }
    }

    fn release(&self, tokens: usize) {
        if tokens > 0 {
            // lint: ordering-ok(AcqRel makes returned tokens carry this worker's writes to the next try_acquire)
            self.available.fetch_add(tokens, Ordering::AcqRel);
        }
    }

    /// Resolves a request-level thread knob to a worker count: `0` means
    /// "auto" — the host's true parallelism for the [global](Self::global)
    /// pool (never oversubscribing), the full budget for a custom pool —
    /// and any other value is taken verbatim (`1` = sequential).
    pub fn resolve_threads(&self, threads: usize) -> usize {
        if threads == 0 {
            self.auto_workers
        } else {
            threads
        }
    }

    /// Maps `f` over `items` with up to `threads` workers (the caller
    /// included), returning the results **in index order** — byte-identical
    /// to the sequential `items.iter().enumerate().map(f).collect()`.
    ///
    /// Items are handed to workers dynamically (an atomic cursor), so uneven
    /// per-item costs balance across workers without affecting the output.
    /// With `threads <= 1`, an empty input, or an exhausted token budget the
    /// map runs entirely on the calling thread.
    pub fn map<T, R, F>(&self, threads: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.resolve_threads(threads);
        let want = workers.saturating_sub(1).min(items.len().saturating_sub(1));
        let granted = if want == 0 { 0 } else { self.try_acquire(want) };
        if granted == 0 {
            return items
                .iter()
                .enumerate()
                .map(|(index, item)| f(index, item))
                .collect();
        }
        let guard = TokenGuard {
            pool: self,
            tokens: granted,
        };
        let cursor = AtomicUsize::new(0);
        // Each worker appends `(index, result)` pairs to its own buffer — no
        // shared result state, no per-item locks. Captures only shared
        // references, so the closure is `Copy` and can be handed to every
        // scoped worker plus run on the calling thread.
        let run = || {
            let mut buffer: Vec<(usize, R)> = Vec::new();
            loop {
                // lint: ordering-ok(work-stealing cursor only needs unique indices; scope join publishes the results)
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                buffer.push((index, f(index, item)));
            }
            buffer
        };
        let buffers: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..granted).map(|_| scope.spawn(run)).collect();
            let mut buffers = vec![run()];
            for handle in handles {
                match handle.join() {
                    Ok(buffer) => buffers.push(buffer),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            buffers
        });
        drop(guard);
        // Scatter the per-worker buffers back into index order.
        let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
        for (index, value) in buffers.into_iter().flatten() {
            debug_assert!(results[index].is_none(), "index visited twice");
            results[index] = Some(value);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every index is visited exactly once"))
            .collect()
    }

    /// Maps `chunk` over contiguous sub-ranges of `0..len`, returning the
    /// per-chunk results in chunk order.
    ///
    /// Chunk boundaries depend on the *requested* thread count (not on how
    /// many tokens were granted), so a given `(len, threads)` pair always
    /// produces the same chunking. Because boundaries move with `threads`,
    /// this is only suitable for reductions that are exactly associative
    /// when merged in index order — see the [module docs](self).
    pub fn map_chunked<R, F>(&self, threads: usize, len: usize, chunk: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(len, self.resolve_threads(threads));
        self.map(threads, &ranges, |_, range| chunk(range.clone()))
    }
}

/// Splits `0..len` into at most `workers * CHUNKS_PER_WORKER` contiguous
/// ranges of near-equal length (never empty). With `workers <= 1` the whole
/// range is one chunk, so the sequential path sees the identical layout the
/// plain loop would.
fn chunk_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = if workers <= 1 {
        1
    } else {
        len.min(workers.saturating_mul(CHUNKS_PER_WORKER))
    };
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for index in 0..chunks {
        let size = base + usize::from(index < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_index_order_at_any_thread_count() {
        let items: Vec<u64> = (0..997).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        let pool = FjPool::new(7);
        for threads in [0, 1, 2, 3, 4, 16] {
            let got = pool.map(threads, &items, |_, &x| x.wrapping_mul(2654435761));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_inputs() {
        let pool = FjPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(4, &[9u32], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn tokens_are_returned_after_each_region() {
        let pool = FjPool::new(3);
        for _ in 0..10 {
            let _ = pool.map(4, &[1u8, 2, 3, 4, 5, 6, 7, 8], |_, &x| x);
            assert_eq!(pool.available(), 3);
        }
    }

    #[test]
    fn zero_capacity_pool_runs_sequentially() {
        let pool = FjPool::new(0);
        let calls = AtomicU64::new(0);
        let got = pool.map(8, &[1u64, 2, 3], |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        let pool = FjPool::new(2);
        let outer: Vec<u64> = (0..8).collect();
        let got = pool.map(3, &outer, |_, &x| {
            let inner: Vec<u64> = (0..8).collect();
            pool.map(3, &inner, |_, &y| x * 100 + y).iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0..8).map(|x| (0..8).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn map_chunked_covers_the_range_in_order() {
        let pool = FjPool::new(3);
        for threads in [0, 1, 2, 4] {
            let chunks = pool.map_chunked(threads, 103, |range| range.clone());
            let flattened: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flattened, (0..103).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn chunk_ranges_are_balanced_and_exhaustive() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(10, 1), vec![0..10]);
        let ranges = chunk_ranges(10, 2);
        assert_eq!(ranges.len(), 8);
        assert!(ranges.iter().all(|r| !r.is_empty()));
        let ranges = chunk_ranges(3, 4);
        assert_eq!(ranges.len(), 3);
    }

    #[test]
    fn resolve_threads_auto_uses_full_budget() {
        let pool = FjPool::new(5);
        assert_eq!(pool.resolve_threads(0), 6);
        assert_eq!(pool.resolve_threads(1), 1);
        assert_eq!(pool.resolve_threads(9), 9);
    }

    #[test]
    fn global_pool_budgets_at_least_three_extra_workers() {
        assert!(FjPool::global().capacity() >= 3);
    }

    #[test]
    fn global_auto_resolves_to_host_parallelism_not_the_test_floor() {
        // Auto must never oversubscribe: on a single-core host it resolves
        // to 1 worker (sequential) even though the token budget is floored
        // at 3 for explicitly requested thread counts.
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(FjPool::global().resolve_threads(0), cores);
    }

    #[test]
    fn panic_in_mapped_closure_returns_tokens() {
        let pool = FjPool::new(2);
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            pool.map(3, &items, |_, &x| {
                assert!(x != 17, "injected panic");
                x
            })
        });
        assert!(result.is_err());
        assert_eq!(pool.available(), 2);
    }
}
