//! Scoring configuration and the pre-computed [`ScoredSchema`].

use std::collections::HashMap;

use entity_graph::{
    DeltaSummary, Direction, DistanceMatrix, EntityGraph, RelTypeId, SchemaGraph, TypeId,
};
use serde::{Deserialize, Serialize};

use crate::candidates::{self, Candidate};
use crate::error::Result;
use crate::preview::{Preview, PreviewTable};
use crate::scoring::key::{self, RandomWalkConfig};
use crate::scoring::nonkey;

/// Which key-attribute scoring measure to use (Sec. 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyScoring {
    /// `Scov(τ)`: number of entities of type `τ`.
    Coverage,
    /// `Swalk(τ)`: stationary probability of a random walk over the weighted,
    /// undirected schema graph.
    RandomWalk,
}

impl KeyScoring {
    /// Short label used in experiment output (matches the paper's tables).
    pub fn label(self) -> &'static str {
        match self {
            KeyScoring::Coverage => "Coverage",
            KeyScoring::RandomWalk => "Random Walk",
        }
    }
}

/// Which non-key attribute scoring measure to use (Sec. 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NonKeyScoring {
    /// `Sτcov(γ)`: number of edges of relationship type `γ`.
    Coverage,
    /// `Sτent(γ)`: entropy of the attribute's value distribution.
    Entropy,
}

impl NonKeyScoring {
    /// Short label used in experiment output (matches the paper's tables).
    pub fn label(self) -> &'static str {
        match self {
            NonKeyScoring::Coverage => "Coverage",
            NonKeyScoring::Entropy => "Entropy",
        }
    }
}

/// Complete scoring configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoringConfig {
    /// Key-attribute measure.
    pub key: KeyScoring,
    /// Non-key attribute measure.
    pub non_key: NonKeyScoring,
    /// Parameters of the random-walk measure (ignored for coverage).
    pub random_walk: RandomWalkConfig,
    /// Fork-join thread budget for scoring and discovery: `1` (the default)
    /// runs sequentially, `0` means "auto" (the host's available
    /// parallelism, resolved by
    /// [`FjPool::global`](crate::par::FjPool::global) — never
    /// oversubscribing), any other value caps the workers for this
    /// configuration. The knob never changes results —
    /// all parallel reductions merge in index order, so outputs stay
    /// byte-identical to the sequential path — which is also why it is *not*
    /// part of result-cache or memoization keys.
    ///
    /// Configs serialized before this field existed deserialize to the
    /// sequential default (`1`, not `usize::default()`'s `0` = auto).
    #[serde(default = "default_threads")]
    pub threads: usize,
}

/// Serde default for [`ScoringConfig::threads`]: sequential. The vendored
/// serde stand-in ignores field attributes (hence the `dead_code` allow);
/// the real `serde_derive` calls this when the field is absent.
#[allow(dead_code)]
fn default_threads() -> usize {
    1
}

impl Default for ScoringConfig {
    fn default() -> Self {
        Self {
            key: KeyScoring::Coverage,
            non_key: NonKeyScoring::Coverage,
            random_walk: RandomWalkConfig::default(),
            threads: 1,
        }
    }
}

impl ScoringConfig {
    /// Coverage/Coverage configuration (the paper's default running example).
    pub fn coverage() -> Self {
        Self::default()
    }

    /// Convenience constructor.
    pub fn new(key: KeyScoring, non_key: NonKeyScoring) -> Self {
        Self {
            key,
            non_key,
            random_walk: RandomWalkConfig::default(),
            threads: 1,
        }
    }

    /// Sets the fork-join thread budget (see [`ScoringConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Pre-computed scores over a schema graph: everything the discovery
/// algorithms need (Sec. 5 assumes schema graph and scores are computed before
/// discovery and reused across constraint settings).
#[derive(Debug, Clone)]
pub struct ScoredSchema {
    schema: SchemaGraph,
    distances: DistanceMatrix,
    config: ScoringConfig,
    key_scores: Vec<f64>,
    nonkey_outgoing: Vec<f64>,
    nonkey_incoming: Vec<f64>,
    candidates: Vec<Vec<Candidate>>,
    prefix_sums: Vec<Vec<f64>>,
    eligible: Vec<TypeId>,
    weighted_top: Vec<f64>,
}

/// Per-type weighted score maxima `S(τ) × Sτ(γ₁)` — the largest score a
/// single preview table keyed on each type can contribute per non-key slot
/// (Eq. 2 with the best candidate). `0.0` for types without candidates.
/// Precomputed once per build; the best-first bound
/// ([`crate::algo::bound`]) reads it on every search node.
fn weighted_top_scores(key_scores: &[f64], candidates: &[Vec<Candidate>]) -> Vec<f64> {
    key_scores
        .iter()
        .zip(candidates)
        .map(|(&key, cands)| cands.first().map_or(0.0, |c| key * c.score))
        .collect()
}

impl ScoredSchema {
    /// Derives the schema graph from `graph` and pre-computes key scores,
    /// non-key scores, sorted candidate lists, prefix sums and the all-pairs
    /// distance matrix.
    pub fn build(graph: &EntityGraph, config: &ScoringConfig) -> Result<Self> {
        let schema = graph.schema_graph().clone();
        Self::build_with_schema(graph, schema, config)
    }

    /// Like [`build`](Self::build) but reads entity-population scores from
    /// **sharded** storage: entropy non-key scores run through the
    /// cross-shard aggregation in [`crate::sharded`] (bitwise identical to
    /// the unsharded scorer — the serving layer relies on this to register
    /// sharded graphs transparently); everything else is schema-sized and
    /// reads the logical graph.
    ///
    /// # Errors
    ///
    /// Exactly those of [`build`](Self::build).
    pub fn build_sharded(
        sharded: &entity_graph::ShardedGraph,
        config: &ScoringConfig,
    ) -> Result<Self> {
        let schema = sharded.graph().schema_graph().clone();
        // Capture the trace position once, before the fork-join sections:
        // pool helper threads never record spans (the determinism pin), so
        // the orchestration-level spans around them parent through this
        // explicit handoff rather than any thread-local span stack.
        let trace_context = preview_obs::current_context();
        let key_scores = match config.key {
            KeyScoring::Coverage => key::coverage_scores(&schema),
            KeyScoring::RandomWalk => key::random_walk_scores(&schema, &config.random_walk)?,
        };
        let (nonkey_outgoing, nonkey_incoming) = match config.non_key {
            NonKeyScoring::Coverage => {
                let cov = nonkey::coverage_scores(&schema);
                (cov.clone(), cov)
            }
            NonKeyScoring::Entropy => {
                let _span = preview_obs::enter_in_context(
                    trace_context,
                    preview_obs::Stage::EntropyScoring,
                    schema.edges().len() as u64,
                );
                crate::sharded::sharded_entropy_scores_with(sharded, &schema, config.threads)
            }
        };
        let _span = preview_obs::enter_in_context(
            trace_context,
            preview_obs::Stage::CandidateGen,
            schema.edges().len() as u64,
        );
        let candidates = candidates::candidate_lists(&schema, &nonkey_outgoing, &nonkey_incoming);
        let prefix_sums = candidates::prefix_sums(&candidates);
        let eligible = candidates::eligible_types(&candidates);
        let distances = schema.distance_matrix();
        let weighted_top = weighted_top_scores(&key_scores, &candidates);
        Ok(Self {
            schema,
            distances,
            config: *config,
            key_scores,
            nonkey_outgoing,
            nonkey_incoming,
            candidates,
            prefix_sums,
            eligible,
            weighted_top,
        })
    }

    /// Like [`build`](Self::build) but reuses an already-derived schema graph.
    pub fn build_with_schema(
        graph: &EntityGraph,
        schema: SchemaGraph,
        config: &ScoringConfig,
    ) -> Result<Self> {
        // Same explicit handoff as `build_sharded`: capture once, parent
        // the orchestration spans around the pool sections through it.
        let trace_context = preview_obs::current_context();
        let key_scores = match config.key {
            KeyScoring::Coverage => key::coverage_scores(&schema),
            KeyScoring::RandomWalk => key::random_walk_scores(&schema, &config.random_walk)?,
        };
        let (nonkey_outgoing, nonkey_incoming) = match config.non_key {
            NonKeyScoring::Coverage => {
                let cov = nonkey::coverage_scores(&schema);
                (cov.clone(), cov)
            }
            NonKeyScoring::Entropy => {
                let _span = preview_obs::enter_in_context(
                    trace_context,
                    preview_obs::Stage::EntropyScoring,
                    schema.edges().len() as u64,
                );
                nonkey::entropy_scores_with(graph, &schema, config.threads)
            }
        };
        let _span = preview_obs::enter_in_context(
            trace_context,
            preview_obs::Stage::CandidateGen,
            schema.edges().len() as u64,
        );
        let candidates = candidates::candidate_lists(&schema, &nonkey_outgoing, &nonkey_incoming);
        let prefix_sums = candidates::prefix_sums(&candidates);
        let eligible = candidates::eligible_types(&candidates);
        let distances = schema.distance_matrix();
        let weighted_top = weighted_top_scores(&key_scores, &candidates);
        Ok(Self {
            schema,
            distances,
            config: *config,
            key_scores,
            nonkey_outgoing,
            nonkey_incoming,
            candidates,
            prefix_sums,
            eligible,
            weighted_top,
        })
    }

    /// Re-scores after a graph delta, recomputing only what the delta
    /// touched and reusing every untouched score **bitwise**.
    ///
    /// `graph` must be the new version produced by
    /// [`EntityGraph::apply_delta`] and `summary` the [`DeltaSummary`] that
    /// came with it. The result is guaranteed bit-identical to a full
    /// [`ScoredSchema::build`] on the new graph (the determinism guard and
    /// `update-bench` enforce this), but the expensive part — entropy
    /// scoring, which walks the entity population of every candidate
    /// attribute — runs only for schema edges whose relationship type is in
    /// [`DeltaSummary::touched_rels`]:
    ///
    /// * **entropy non-key scores**: an untouched relationship type has a
    ///   bit-identical value distribution in the new version (edits to other
    ///   rel types cannot change which neighbor sets its tuples hold, and
    ///   entity additions/removals without incident edges of the type only
    ///   add/remove empty-valued tuples, which the measure excludes), so its
    ///   two orientation scores are copied from this instance verbatim;
    /// * **coverage scores** (key and non-key) are plain counts read off the
    ///   new schema graph — recomputing them is already cheaper than
    ///   tracking them incrementally;
    /// * **random-walk key scores** are a global stationary distribution:
    ///   any edit can shift every component, so they are recomputed in full
    ///   (still schema-sized, not entity-sized);
    /// * candidate lists, prefix sums, eligibility and the distance matrix
    ///   are schema-sized derivations and are rebuilt from the (possibly
    ///   reused) scores.
    ///
    /// # Errors
    ///
    /// Propagates random-walk convergence failures, exactly like
    /// [`build`](Self::build).
    pub fn rescore_delta(&self, graph: &EntityGraph, summary: &DeltaSummary) -> Result<Self> {
        let _span = preview_obs::span!(
            preview_obs::Stage::Rescore,
            touched_rels = summary.touched_rels.len()
        );
        let schema = graph.schema_graph().clone();
        let key_scores = match self.config.key {
            KeyScoring::Coverage => key::coverage_scores(&schema),
            KeyScoring::RandomWalk => key::random_walk_scores(&schema, &self.config.random_walk)?,
        };
        let (nonkey_outgoing, nonkey_incoming) = match self.config.non_key {
            NonKeyScoring::Coverage => {
                let cov = nonkey::coverage_scores(&schema);
                (cov.clone(), cov)
            }
            NonKeyScoring::Entropy => {
                // Schema-edge positions shift when rel types gain their
                // first or lose their last edge; reuse is keyed by the
                // stable relationship-type id instead.
                let old_slot: HashMap<RelTypeId, usize> = self
                    .schema
                    .edges()
                    .iter()
                    .enumerate()
                    .map(|(slot, edge)| (edge.rel, slot))
                    .collect();
                let mut outgoing = Vec::with_capacity(schema.edges().len());
                let mut incoming = Vec::with_capacity(schema.edges().len());
                for edge in schema.edges() {
                    let reusable = (!summary.rel_touched(edge.rel))
                        .then(|| old_slot.get(&edge.rel))
                        .flatten();
                    match reusable {
                        Some(&slot) => {
                            outgoing.push(self.nonkey_outgoing[slot]);
                            incoming.push(self.nonkey_incoming[slot]);
                        }
                        None => {
                            let (out, inc) = nonkey::entropy_scores_for_edge(graph, &schema, edge);
                            outgoing.push(out);
                            incoming.push(inc);
                        }
                    }
                }
                (outgoing, incoming)
            }
        };
        let candidates = candidates::candidate_lists(&schema, &nonkey_outgoing, &nonkey_incoming);
        let prefix_sums = candidates::prefix_sums(&candidates);
        let eligible = candidates::eligible_types(&candidates);
        let distances = schema.distance_matrix();
        let weighted_top = weighted_top_scores(&key_scores, &candidates);
        Ok(Self {
            schema,
            distances,
            config: self.config,
            key_scores,
            nonkey_outgoing,
            nonkey_incoming,
            candidates,
            prefix_sums,
            eligible,
            weighted_top,
        })
    }

    /// Whether `other` would drive every discovery algorithm to the same
    /// result as `self`, bit for bit.
    ///
    /// True iff the schema shape (type count and the relationship-type
    /// sequence of the edge list — type and rel ids are stable across
    /// deltas) and all score vectors match bitwise. Discovery reads nothing
    /// else: candidate lists, prefix sums, eligibility and distances are
    /// pure functions of shape + scores. The serving layer uses this to
    /// prove cached previews unaffected by a published delta and carry them
    /// forward across the version bump.
    pub fn scores_identical(&self, other: &Self) -> bool {
        fn bits(v: &[f64]) -> impl Iterator<Item = u64> + '_ {
            v.iter().map(|f| f.to_bits())
        }
        self.schema.type_count() == other.schema.type_count()
            && self.schema.edges().len() == other.schema.edges().len()
            && self
                .schema
                .edges()
                .iter()
                .zip(other.schema.edges())
                .all(|(a, b)| a.rel == b.rel && a.src == b.src && a.dst == b.dst)
            && bits(&self.key_scores).eq(bits(&other.key_scores))
            && bits(&self.nonkey_outgoing).eq(bits(&other.nonkey_outgoing))
            && bits(&self.nonkey_incoming).eq(bits(&other.nonkey_incoming))
    }

    /// The underlying schema graph.
    pub fn schema(&self) -> &SchemaGraph {
        &self.schema
    }

    /// The all-pairs undirected distance matrix over entity types.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// The scoring configuration used to build this instance.
    pub fn config(&self) -> &ScoringConfig {
        &self.config
    }

    /// The key-attribute score `S(τ)`.
    pub fn key_score(&self, ty: TypeId) -> f64 {
        self.key_scores[ty.index()]
    }

    /// All key-attribute scores, indexed by [`TypeId`].
    pub fn key_scores(&self) -> &[f64] {
        &self.key_scores
    }

    /// Entity types ranked by descending key score (ties broken by type id),
    /// as used in the scoring-accuracy experiments (Figs. 5–7).
    pub fn ranked_key_attributes(&self) -> Vec<TypeId> {
        let mut order: Vec<TypeId> = self.schema.types().collect();
        order.sort_by(|a, b| {
            self.key_scores[b.index()]
                .partial_cmp(&self.key_scores[a.index()])
                .expect("key scores must not be NaN")
                .then_with(|| a.cmp(b))
        });
        order
    }

    /// The non-key attribute score `Sτ(γ)` of a schema edge in the given
    /// orientation (outgoing = the key attribute is the edge's source type).
    pub fn non_key_score(&self, edge: usize, direction: Direction) -> f64 {
        match direction {
            Direction::Outgoing => self.nonkey_outgoing[edge],
            Direction::Incoming => self.nonkey_incoming[edge],
        }
    }

    /// The candidate non-key attributes of type `ty`, sorted by descending
    /// score (Theorem 3).
    pub fn candidates(&self, ty: TypeId) -> &[Candidate] {
        &self.candidates[ty.index()]
    }

    /// Sum of the top-`m` candidate non-key scores of type `ty`
    /// (`m` is clamped to the number of candidates).
    pub fn top_m_score_sum(&self, ty: TypeId, m: usize) -> f64 {
        let sums = &self.prefix_sums[ty.index()];
        let m = m.min(sums.len() - 1);
        sums[m]
    }

    /// Entity types eligible to be key attributes (at least one candidate).
    pub fn eligible_types(&self) -> &[TypeId] {
        &self.eligible
    }

    /// The largest single-slot contribution of a table keyed on `ty`:
    /// `S(τ) × Sτ(γ₁)` for its best candidate, or `0.0` when `ty` has no
    /// candidates. Precomputed at build time; the admissible bound of
    /// [`BestFirstDiscovery`](crate::algo::BestFirstDiscovery) reads it per
    /// search node.
    pub fn weighted_top_score(&self, ty: TypeId) -> f64 {
        self.weighted_top[ty.index()]
    }

    /// The score of a preview table (Eq. 2): `S(τ) × Σ_{γ} Sτ(γ)`.
    pub fn table_score(&self, table: &PreviewTable) -> f64 {
        let non_key_sum: f64 = table
            .non_keys()
            .iter()
            .map(|a| self.non_key_score(a.edge, a.direction))
            .sum();
        self.key_score(table.key()) * non_key_sum
    }

    /// The score of a preview (Eq. 1): the sum of its tables' scores.
    pub fn preview_score(&self, preview: &Preview) -> f64 {
        preview.tables().iter().map(|t| self.table_score(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preview::NonKeyAttr;
    use entity_graph::fixtures::{self, types};

    fn scored(config: ScoringConfig) -> ScoredSchema {
        let g = fixtures::figure1_graph();
        ScoredSchema::build(&g, &config).unwrap()
    }

    #[test]
    fn coverage_key_scores_match_entity_counts() {
        let s = scored(ScoringConfig::coverage());
        let film = s.schema().type_by_name(types::FILM).unwrap();
        assert_eq!(s.key_score(film), 4.0);
    }

    #[test]
    fn random_walk_scores_sum_to_one() {
        let s = scored(ScoringConfig::new(
            KeyScoring::RandomWalk,
            NonKeyScoring::Coverage,
        ));
        let total: f64 = s.key_scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranked_key_attributes_puts_film_first_under_coverage() {
        let s = scored(ScoringConfig::coverage());
        let ranked = s.ranked_key_attributes();
        assert_eq!(s.schema().type_name(ranked[0]), types::FILM);
        assert_eq!(ranked.len(), s.schema().type_count());
    }

    #[test]
    fn table_and_preview_scores_follow_eq1_and_eq2() {
        // Running example of Sec. 4: coverage/coverage, the FILM table with
        // Actor, Genres, Director, Producer scores 4 * (6+5+4+2) = 68 and the
        // FILM ACTOR table with Actor, Award Winners scores 2 * (6+2) = 16.
        let s = scored(ScoringConfig::coverage());
        let schema = s.schema();
        let film = schema.type_by_name(types::FILM).unwrap();
        let actor = schema.type_by_name(types::FILM_ACTOR).unwrap();
        let film_cands = s.candidates(film);
        let film_table = PreviewTable::new(
            film,
            film_cands[..4]
                .iter()
                .map(|c| NonKeyAttr::new(c.edge, c.direction))
                .collect(),
        );
        assert!((s.table_score(&film_table) - 68.0).abs() < 1e-9);
        let actor_cands = s.candidates(actor);
        let actor_table = PreviewTable::new(
            actor,
            actor_cands[..2]
                .iter()
                .map(|c| NonKeyAttr::new(c.edge, c.direction))
                .collect(),
        );
        assert!((s.table_score(&actor_table) - 16.0).abs() < 1e-9);
        let preview = Preview::new(vec![film_table, actor_table]);
        assert!((s.preview_score(&preview) - 84.0).abs() < 1e-9);
    }

    #[test]
    fn top_m_score_sum_clamps() {
        let s = scored(ScoringConfig::coverage());
        let film = s.schema().type_by_name(types::FILM).unwrap();
        assert_eq!(s.top_m_score_sum(film, 0), 0.0);
        assert_eq!(s.top_m_score_sum(film, 1), 6.0);
        assert_eq!(s.top_m_score_sum(film, 100), 18.0);
    }

    #[test]
    fn entropy_configuration_builds() {
        let s = scored(ScoringConfig::new(
            KeyScoring::Coverage,
            NonKeyScoring::Entropy,
        ));
        // All entropy scores are finite and non-negative.
        for ty in s.schema().types() {
            for c in s.candidates(ty) {
                assert!(c.score.is_finite() && c.score >= 0.0);
            }
        }
    }

    #[test]
    fn rescore_delta_matches_full_build_bitwise() {
        use entity_graph::GraphDelta;
        let graph = fixtures::figure1_graph();
        let mut delta = GraphDelta::new();
        delta
            .add_entity("Bad Boys", &[types::FILM])
            .add_edge(
                "Will Smith",
                "Actor",
                "Bad Boys",
                types::FILM_ACTOR,
                types::FILM,
            )
            .remove_edge(
                "Men in Black",
                "Genres",
                "Action Film",
                types::FILM,
                types::FILM_GENRE,
            );
        let applied = graph.apply_delta(&delta).unwrap();
        for config in [
            ScoringConfig::coverage(),
            ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy),
            ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Entropy),
        ] {
            let old = ScoredSchema::build(&graph, &config).unwrap();
            let rescored = old.rescore_delta(&applied.graph, &applied.summary).unwrap();
            let full = ScoredSchema::build(&applied.graph, &config).unwrap();
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&rescored.key_scores), bits(&full.key_scores));
            assert_eq!(bits(&rescored.nonkey_outgoing), bits(&full.nonkey_outgoing));
            assert_eq!(bits(&rescored.nonkey_incoming), bits(&full.nonkey_incoming));
            assert!(rescored.scores_identical(&full));
            assert_eq!(rescored.eligible_types(), full.eligible_types());
        }
    }

    #[test]
    fn rescore_delta_reuses_untouched_entropy_slots() {
        use entity_graph::GraphDelta;
        let graph = fixtures::figure1_graph();
        // Touch only the Genres relationship; Director must be reused.
        let mut delta = GraphDelta::new();
        delta.remove_edge(
            "Men in Black",
            "Genres",
            "Action Film",
            types::FILM,
            types::FILM_GENRE,
        );
        let applied = graph.apply_delta(&delta).unwrap();
        let config = ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy);
        let old = ScoredSchema::build(&graph, &config).unwrap();
        let rescored = old.rescore_delta(&applied.graph, &applied.summary).unwrap();
        let schema = rescored.schema();
        let director = schema
            .edges()
            .iter()
            .position(|e| e.name == "Director")
            .unwrap();
        let genres = schema
            .edges()
            .iter()
            .position(|e| e.name == "Genres")
            .unwrap();
        // Untouched slot: copied bitwise from the old instance.
        assert_eq!(
            rescored.nonkey_incoming[director].to_bits(),
            old.nonkey_incoming[director].to_bits()
        );
        // Touched slot: the distribution changed, and so did the score.
        assert_ne!(
            rescored.nonkey_outgoing[genres].to_bits(),
            old.nonkey_outgoing[genres].to_bits()
        );
    }

    #[test]
    fn scores_identical_detects_unaffected_deltas() {
        use entity_graph::GraphDelta;
        let graph = fixtures::figure1_graph();
        let entropy = ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy);
        let old = ScoredSchema::build(&graph, &entropy).unwrap();

        // A duplicate parallel edge: neighbors de-duplicate, so the entropy
        // distribution — and the coverage key scores — are untouched, even
        // though the graph itself changed.
        let mut dup = GraphDelta::new();
        dup.add_edge(
            "Will Smith",
            "Actor",
            "Men in Black",
            types::FILM_ACTOR,
            types::FILM,
        );
        let applied = graph.apply_delta(&dup).unwrap();
        let rescored = old.rescore_delta(&applied.graph, &applied.summary).unwrap();
        assert!(old.scores_identical(&rescored));

        // Under coverage/coverage the same delta changes an edge count, so
        // the scores are provably affected.
        let coverage = ScoringConfig::coverage();
        let old_cov = ScoredSchema::build(&graph, &coverage).unwrap();
        let rescored_cov = old_cov
            .rescore_delta(&applied.graph, &applied.summary)
            .unwrap();
        assert!(!old_cov.scores_identical(&rescored_cov));
    }

    #[test]
    fn build_sharded_matches_unsharded_build_bitwise() {
        use entity_graph::{ShardedGraph, ShardingStrategy};
        use std::sync::Arc;
        let graph = Arc::new(fixtures::figure1_graph());
        for config in [
            ScoringConfig::coverage(),
            ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy),
            ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Entropy).with_threads(0),
        ] {
            let unsharded = ScoredSchema::build(&graph, &config).unwrap();
            for strategy in [
                ShardingStrategy::ByEntityType { shards: 3 },
                ShardingStrategy::ByIdHash { shards: 5 },
            ] {
                let sharded = ShardedGraph::from_graph(Arc::clone(&graph), strategy);
                let scored = ScoredSchema::build_sharded(&sharded, &config).unwrap();
                let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&scored.key_scores), bits(&unsharded.key_scores));
                assert_eq!(
                    bits(&scored.nonkey_outgoing),
                    bits(&unsharded.nonkey_outgoing)
                );
                assert_eq!(
                    bits(&scored.nonkey_incoming),
                    bits(&unsharded.nonkey_incoming)
                );
                assert!(scored.scores_identical(&unsharded));
                assert_eq!(scored.eligible_types(), unsharded.eligible_types());
            }
        }
    }

    #[test]
    fn weighted_top_score_is_key_times_best_candidate() {
        let s = scored(ScoringConfig::coverage());
        for ty in s.schema().types() {
            let expected = s
                .candidates(ty)
                .first()
                .map_or(0.0, |c| s.key_score(ty) * c.score);
            assert_eq!(s.weighted_top_score(ty).to_bits(), expected.to_bits());
        }
        // Running example: FILM's best candidate (Actor, 6) at key score 4.
        let film = s.schema().type_by_name(types::FILM).unwrap();
        assert_eq!(s.weighted_top_score(film), 24.0);
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(KeyScoring::Coverage.label(), "Coverage");
        assert_eq!(KeyScoring::RandomWalk.label(), "Random Walk");
        assert_eq!(NonKeyScoring::Entropy.label(), "Entropy");
        assert_eq!(NonKeyScoring::Coverage.label(), "Coverage");
    }
}
