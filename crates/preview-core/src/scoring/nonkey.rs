//! Non-key attribute scoring measures (Sec. 3.3): coverage and entropy.

use std::collections::HashMap;

use entity_graph::{Direction, EntityGraph, EntityId, SchemaEdge, SchemaGraph};

use crate::par::FjPool;

/// Coverage-based non-key attribute scores: `Sτcov(γ)` is the number of
/// entity-graph edges of relationship type `γ`.
///
/// Coverage is symmetric in the orientation of the attribute, so a single
/// score per schema edge suffices; it applies to both the outgoing and the
/// incoming orientation.
pub fn coverage_scores(schema: &SchemaGraph) -> Vec<f64> {
    schema.edges().iter().map(|e| e.edge_count as f64).collect()
}

/// Entropy-based non-key attribute scores for both orientations of every
/// schema edge.
///
/// For a preview table keyed on `τ` and a non-key attribute `γ(τ, τ')` (or
/// `γ(τ', τ)`), the score is the entropy of the attribute's value
/// distribution over the tuples with a non-empty value:
///
/// `Sτent(γ) = Σ_j (n_j / N) · log10(N / n_j)`
///
/// where tuples are grouped by their (set-valued) attribute value — two
/// multi-valued cells are equal iff they contain the same set of entities —
/// `n_j` is the size of the j-th group and `N` the number of tuples with a
/// non-empty value. The measure is asymmetric: the entropy seen from `τ`
/// generally differs from the entropy seen from `τ'`.
///
/// Returns `(outgoing, incoming)` vectors indexed by schema-edge position:
/// `outgoing[e]` is the score when the key attribute is the edge's source
/// type, `incoming[e]` when it is the destination type.
pub fn entropy_scores(graph: &EntityGraph, schema: &SchemaGraph) -> (Vec<f64>, Vec<f64>) {
    entropy_scores_with(graph, schema, 1)
}

/// [`entropy_scores`] with an explicit fork-join thread budget: candidate
/// attributes (schema edges) are scored in parallel on the
/// [global pool](FjPool::global), and the per-edge scores are collected in
/// schema-edge order, so the result is byte-identical to the sequential path
/// for every `threads` value (see [`crate::par`]).
pub fn entropy_scores_with(
    graph: &EntityGraph,
    schema: &SchemaGraph,
    threads: usize,
) -> (Vec<f64>, Vec<f64>) {
    FjPool::global()
        .map(threads, schema.edges(), |_, edge| {
            entropy_scores_for_edge(graph, schema, edge)
        })
        .into_iter()
        .unzip()
}

/// Entropy scores of a single schema edge: `(outgoing, incoming)`.
///
/// Bit-identical to the corresponding entries of [`entropy_scores`] — the
/// per-edge computation is independent of every other edge, which is what
/// both the parallel scoring path and incremental rescoring
/// ([`ScoredSchema::rescore_delta`](crate::ScoredSchema::rescore_delta))
/// build on: a delta recomputes only the touched edges through this function
/// and reuses every untouched score bitwise.
pub fn entropy_scores_for_edge(
    graph: &EntityGraph,
    schema: &SchemaGraph,
    edge: &SchemaEdge,
) -> (f64, f64) {
    let outgoing = orientation_entropy(
        graph,
        schema,
        edge.name.as_str(),
        edge.src,
        edge.dst,
        Direction::Outgoing,
    );
    let incoming = orientation_entropy(
        graph,
        schema,
        edge.name.as_str(),
        edge.src,
        edge.dst,
        Direction::Incoming,
    );
    (outgoing, incoming)
}

fn orientation_entropy(
    graph: &EntityGraph,
    schema: &SchemaGraph,
    rel_name: &str,
    src: entity_graph::TypeId,
    dst: entity_graph::TypeId,
    direction: Direction,
) -> f64 {
    // Resolve the relationship type and key type in the entity graph by name,
    // so schema graphs from a different builder run still line up.
    let (src_in_graph, dst_in_graph) = match (
        graph.type_by_name(schema.type_name(src)),
        graph.type_by_name(schema.type_name(dst)),
    ) {
        (Some(s), Some(d)) => (s, d),
        _ => return 0.0,
    };
    let rel = match graph.rel_type_by_key(rel_name, src_in_graph, dst_in_graph) {
        Some(r) => r,
        None => return 0.0,
    };
    let key_type = match direction {
        Direction::Outgoing => src_in_graph,
        Direction::Incoming => dst_in_graph,
    };
    // `neighbors_via` borrows pre-grouped, sorted neighbor sets straight from
    // the graph's CSR index, so grouping tuples by attribute value needs no
    // allocation per tuple: the borrowed slices themselves are the map keys.
    let mut groups: HashMap<&[EntityId], u64> = HashMap::new();
    let mut non_empty = 0u64;
    for &entity in graph.entities_of_type(key_type) {
        let value = graph.neighbors_via(entity, rel, direction);
        if value.is_empty() {
            continue;
        }
        non_empty += 1;
        *groups.entry(value).or_insert(0) += 1;
    }
    if non_empty == 0 {
        return 0.0;
    }
    entropy_from_counts(groups.into_values().collect(), non_empty)
}

/// The entropy sum shared by the unsharded and sharded scoring paths: both
/// group tuples by attribute value (borrowed neighbor slices there, canonical
/// encoded bytes here — a bijection, since the encoding is canonical) and
/// hand the group sizes to this function, so equal count multisets produce
/// bitwise-equal scores.
///
/// Group terms are summed in sorted-count order: float addition is not
/// associative, and `HashMap` iteration order is randomized per process, so
/// an unsorted sum drifts by ulps run to run — enough to break the
/// byte-identical serving guarantee the service layer tests.
pub(crate) fn entropy_from_counts(mut counts: Vec<u64>, non_empty: u64) -> f64 {
    counts.sort_unstable();
    let total = non_empty as f64;
    counts
        .into_iter()
        .map(|n| {
            let p = n as f64 / total;
            p * (total / n as f64).log10()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures::{self, types};

    fn edge_index(schema: &SchemaGraph, name: &str, src: &str, dst: &str) -> usize {
        schema
            .edges()
            .iter()
            .position(|e| {
                e.name == name && schema.type_name(e.src) == src && schema.type_name(e.dst) == dst
            })
            .unwrap_or_else(|| panic!("edge {name} {src}->{dst} not found"))
    }

    #[test]
    fn coverage_matches_paper_example() {
        // Scov^FILM(Director) = 4 and Scov^FILM(Genres) = 5 (Sec. 3.3).
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let scores = coverage_scores(s);
        let director = edge_index(s, "Director", types::FILM_DIRECTOR, types::FILM);
        let genres = edge_index(s, "Genres", types::FILM, types::FILM_GENRE);
        assert_eq!(scores[director], 4.0);
        assert_eq!(scores[genres], 5.0);
    }

    #[test]
    fn entropy_matches_paper_example() {
        // Sent^FILM(Director) = (2/4)log(4/2) + (1/4)log(4) + (1/4)log(4) ≈ 0.45
        // Sent^FILM(Genres)   = (2/3)log(3/2) + (1/3)log(3)               ≈ 0.28
        // (log base 10, Sec. 3.3).
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let (out, inc) = entropy_scores(&g, s);
        let director = edge_index(s, "Director", types::FILM_DIRECTOR, types::FILM);
        let genres = edge_index(s, "Genres", types::FILM, types::FILM_GENRE);
        // FILM is the *destination* of Director and the *source* of Genres.
        let director_from_film = inc[director];
        let genres_from_film = out[genres];
        let expected_director = 0.5 * 2f64.log10() + 2.0 * 0.25 * 4f64.log10();
        let expected_genres = (2.0 / 3.0) * (1.5f64).log10() + (1.0 / 3.0) * 3f64.log10();
        assert!((director_from_film - expected_director).abs() < 1e-9);
        assert!((genres_from_film - expected_genres).abs() < 1e-9);
        assert!((director_from_film - 0.45).abs() < 0.01);
        assert!((genres_from_film - 0.28).abs() < 0.01);
    }

    #[test]
    fn entropy_is_asymmetric() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let (out, inc) = entropy_scores(&g, s);
        let director = edge_index(s, "Director", types::FILM_DIRECTOR, types::FILM);
        // Seen from FILM DIRECTOR (outgoing): Barry -> {MIB, MIB II}, Berg -> {Hancock},
        // Proyas -> {I, Robot}: three distinct value sets over 3 tuples -> log10(3).
        assert!((out[director] - 3f64.log10()).abs() < 1e-9);
        assert_ne!(out[director], inc[director]);
    }

    #[test]
    fn single_valued_attribute_with_identical_values_has_zero_entropy() {
        use entity_graph::EntityGraphBuilder;
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let studio = b.entity_type("STUDIO");
        let made_by = b.relationship_type("Made By", film, studio);
        let s1 = b.entity("Studio X", &[studio]);
        for name in ["f1", "f2", "f3"] {
            let f = b.entity(name, &[film]);
            b.edge(f, made_by, s1).unwrap();
        }
        let g = b.build();
        let schema = g.schema_graph();
        let (out, _inc) = entropy_scores(&g, schema);
        // Every film points at the same studio: zero information.
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn entropy_of_unrelated_direction_is_zero_when_no_edges() {
        // A relationship type with zero participating entities of the key type
        // (cannot happen for derived schema graphs, but entropy must not panic
        // or return NaN for empty groups).
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let (out, inc) = entropy_scores(&g, s);
        assert!(out
            .iter()
            .chain(inc.iter())
            .all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn parallel_entropy_is_byte_identical_to_sequential() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let (seq_out, seq_inc) = entropy_scores_with(&g, s, 1);
        for threads in [0, 2, 4, 16] {
            let (out, inc) = entropy_scores_with(&g, s, threads);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&seq_out), "threads={threads}");
            assert_eq!(bits(&inc), bits(&seq_inc), "threads={threads}");
        }
    }

    #[test]
    fn entropy_bounded_by_log_of_tuple_count() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let (out, inc) = entropy_scores(&g, s);
        let bound = (g.entity_count() as f64).log10();
        assert!(out.iter().chain(inc.iter()).all(|&v| v <= bound + 1e-9));
    }
}
