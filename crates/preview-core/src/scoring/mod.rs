//! Scoring measures for previews, key attributes and non-key attributes
//! (Sec. 3 of the paper).
//!
//! * [`key`] — coverage-based and random-walk-based key-attribute scores,
//! * [`nonkey`] — coverage-based and entropy-based non-key attribute scores,
//! * [`config`] — the [`ScoringConfig`] selection and the pre-computed
//!   [`ScoredSchema`] consumed by all discovery algorithms.

pub mod config;
pub mod key;
pub mod nonkey;

pub use config::{KeyScoring, NonKeyScoring, ScoredSchema, ScoringConfig};
pub use key::{
    coverage_scores as key_coverage_scores, random_walk_scores, transition_matrix, RandomWalkConfig,
};
pub use nonkey::{
    coverage_scores as nonkey_coverage_scores, entropy_scores, entropy_scores_for_edge,
};
