//! Key-attribute scoring measures (Sec. 3.2): coverage and random walk.

use entity_graph::{SchemaGraph, TypeId};
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Coverage-based key-attribute scores: `Scov(τ)` is the number of entities
/// bearing type `τ`.
///
/// Returns one score per entity type, indexed by [`TypeId`].
pub fn coverage_scores(schema: &SchemaGraph) -> Vec<f64> {
    schema
        .types()
        .map(|ty| schema.entity_count_of(ty) as f64)
        .collect()
}

/// Parameters of the random-walk (PageRank-style) key-attribute scoring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWalkConfig {
    /// Uniform transition probability added between every pair of entity
    /// types to guarantee convergence on disconnected schema graphs. The
    /// paper uses `1e-5` (Sec. 6).
    pub jump: f64,
    /// L1 convergence tolerance of the power iteration.
    pub tolerance: f64,
    /// Maximum number of power-iteration steps before giving up.
    pub max_iterations: usize,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        Self {
            jump: 1e-5,
            tolerance: 1e-12,
            max_iterations: 10_000,
        }
    }
}

/// Builds the row-stochastic transition matrix `M` over entity types.
///
/// `M[i][j]` is the probability of moving from type `τi` to type `τj`:
/// the undirected edge weight `w_ij` (number of entity-graph relationships
/// between entities of the two types, in either direction) normalised by the
/// total weight incident on `τi`, with the uniform `jump` probability mixed in
/// and the row re-normalised. Types with no incident relationships get a
/// uniform row.
pub fn transition_matrix(schema: &SchemaGraph, config: &RandomWalkConfig) -> Vec<Vec<f64>> {
    let n = schema.type_count();
    let mut weights = vec![vec![0.0f64; n]; n];
    for e in schema.edges() {
        let (s, d) = (e.src.index(), e.dst.index());
        let w = e.edge_count as f64;
        weights[s][d] += w;
        if s != d {
            weights[d][s] += w;
        }
    }
    let mut matrix = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        let row_sum: f64 = weights[i].iter().sum();
        for j in 0..n {
            let base = if row_sum > 0.0 {
                weights[i][j] / row_sum
            } else if n > 0 {
                1.0 / n as f64
            } else {
                0.0
            };
            matrix[i][j] = base + config.jump;
        }
        // Re-normalise after adding the jump probability.
        let total: f64 = matrix[i].iter().sum();
        if total > 0.0 {
            for value in &mut matrix[i] {
                *value /= total;
            }
        }
    }
    matrix
}

/// Random-walk key-attribute scores: the stationary distribution `π = πM` of
/// the random walk over the undirected, weighted schema graph.
///
/// Returns one score per entity type, indexed by [`TypeId`]; the scores sum to
/// 1 (they are probabilities).
///
/// # Errors
///
/// Returns [`Error::Scoring`] if the power iteration does not converge within
/// `config.max_iterations`.
pub fn random_walk_scores(schema: &SchemaGraph, config: &RandomWalkConfig) -> Result<Vec<f64>> {
    let n = schema.type_count();
    if n == 0 {
        return Ok(Vec::new());
    }
    let matrix = transition_matrix(schema, config);
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..config.max_iterations {
        // Lazy power iteration: π ← ½π + ½πM. The lazy walk has the same
        // stationary distribution as M but is aperiodic, so the iteration
        // converges even on bipartite schema graphs (which are common: e.g.
        // the Fig. 1 graph is bipartite).
        for (v, &p) in next.iter_mut().zip(&pi) {
            *v = 0.5 * p;
        }
        for i in 0..n {
            let pi_i = pi[i];
            if pi_i == 0.0 {
                continue;
            }
            for j in 0..n {
                next[j] += 0.5 * pi_i * matrix[i][j];
            }
        }
        // Normalise to guard against floating-point drift.
        let sum: f64 = next.iter().sum();
        if sum > 0.0 {
            for v in next.iter_mut() {
                *v /= sum;
            }
        }
        let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if diff < config.tolerance {
            return Ok(pi);
        }
    }
    Err(Error::Scoring {
        message: format!(
            "random-walk power iteration did not converge within {} iterations",
            config.max_iterations
        ),
    })
}

/// Convenience accessor: the score of one entity type out of a score vector.
pub fn score_of(scores: &[f64], ty: TypeId) -> f64 {
    scores[ty.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures::{self, types};

    #[test]
    fn coverage_matches_paper_example() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let scores = coverage_scores(s);
        let film = s.type_by_name(types::FILM).unwrap();
        assert_eq!(score_of(&scores, film), 4.0);
        let actor = s.type_by_name(types::FILM_ACTOR).unwrap();
        assert_eq!(score_of(&scores, actor), 2.0);
    }

    #[test]
    fn transition_matrix_matches_paper_example() {
        // M(FILM, FILM GENRE) = 5 / (5+6+4+3) ≈ 0.28 and
        // M(FILM, FILM PRODUCER) = 3 / 18 ≈ 0.17 (Sec. 3.2).
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let config = RandomWalkConfig {
            jump: 0.0,
            ..RandomWalkConfig::default()
        };
        let m = transition_matrix(s, &config);
        let film = s.type_by_name(types::FILM).unwrap().index();
        let genre = s.type_by_name(types::FILM_GENRE).unwrap().index();
        let producer = s.type_by_name(types::FILM_PRODUCER).unwrap().index();
        assert!((m[film][genre] - 5.0 / 18.0).abs() < 1e-12);
        assert!((m[film][producer] - 3.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn transition_matrix_rows_are_stochastic() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let m = transition_matrix(s, &RandomWalkConfig::default());
        for row in &m {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_walk_is_a_probability_distribution() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let pi = random_walk_scores(s, &RandomWalkConfig::default()).unwrap();
        assert_eq!(pi.len(), s.type_count());
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn film_is_the_most_central_type_in_figure1() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let pi = random_walk_scores(s, &RandomWalkConfig::default()).unwrap();
        let film = s.type_by_name(types::FILM).unwrap();
        let best = pi
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, film.index());
    }

    #[test]
    fn disconnected_schema_still_converges() {
        use entity_graph::EntityGraphBuilder;
        // Two disconnected components plus an isolated type.
        let mut b = EntityGraphBuilder::new();
        let a = b.entity_type("A");
        let c = b.entity_type("B");
        let d = b.entity_type("C");
        let e = b.entity_type("D");
        let _isolated = b.entity_type("ISOLATED");
        let r1 = b.relationship_type("r1", a, c);
        let r2 = b.relationship_type("r2", d, e);
        let x1 = b.entity("x1", &[a]);
        let x2 = b.entity("x2", &[c]);
        let x3 = b.entity("x3", &[d]);
        let x4 = b.entity("x4", &[e]);
        b.edge(x1, r1, x2).unwrap();
        b.edge(x3, r2, x4).unwrap();
        let g = b.build();
        let s = g.schema_graph();
        let pi = random_walk_scores(s, &RandomWalkConfig::default()).unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_iterations_reports_non_convergence() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let config = RandomWalkConfig {
            max_iterations: 0,
            ..RandomWalkConfig::default()
        };
        assert!(random_walk_scores(s, &config).is_err());
    }

    #[test]
    fn empty_schema_gives_empty_scores() {
        let s = SchemaGraph::new(vec![], vec![], vec![]);
        assert!(coverage_scores(&s).is_empty());
        assert!(random_walk_scores(&s, &RandomWalkConfig::default())
            .unwrap()
            .is_empty());
    }
}
