//! Preview tables and previews (Def. 1 of the paper), plus tuple
//! materialisation for display.

use serde::{Deserialize, Serialize};

use entity_graph::{Direction, EntityGraph, SchemaGraph, TypeId};

/// A non-key attribute of a preview table: a relationship type incident on the
/// table's key attribute, in a specific orientation.
///
/// `edge` indexes into [`SchemaGraph::edges`]. `direction` is relative to the
/// key attribute: [`Direction::Outgoing`] means the key attribute is the
/// relationship type's source (`γ(τ, τ')`), [`Direction::Incoming`] means it
/// is the destination (`γ(τ', τ)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NonKeyAttr {
    /// Index of the schema edge (relationship type).
    pub edge: usize,
    /// Orientation of the relationship type relative to the key attribute.
    pub direction: Direction,
}

impl NonKeyAttr {
    /// Creates a non-key attribute reference.
    pub fn new(edge: usize, direction: Direction) -> Self {
        Self { edge, direction }
    }

    /// The entity type on the far side of the relationship, i.e. the type of
    /// the entities appearing as this attribute's values.
    pub fn target_type(&self, schema: &SchemaGraph) -> TypeId {
        let e = schema.edge(self.edge);
        match self.direction {
            Direction::Outgoing => e.dst,
            Direction::Incoming => e.src,
        }
    }

    /// A human-readable label for the attribute in the style of Table 11:
    /// the surface name followed by the target entity type, e.g.
    /// `"Directed by (FILM DIRECTOR)"`.
    pub fn label(&self, schema: &SchemaGraph) -> String {
        let e = schema.edge(self.edge);
        format!(
            "{} ({})",
            e.name,
            schema.type_name(self.target_type(schema))
        )
    }
}

/// A preview table: one key attribute (an entity type) plus at least one
/// non-key attribute (incident relationship types). Corresponds to a
/// star-shaped subgraph of the schema graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreviewTable {
    key: TypeId,
    non_keys: Vec<NonKeyAttr>,
}

impl PreviewTable {
    /// Creates a preview table. The caller is responsible for providing at
    /// least one non-key attribute (Def. 1); emptiness is checked by
    /// [`PreviewSpace::contains`](crate::PreviewSpace::contains) and by the
    /// discovery algorithms.
    pub fn new(key: TypeId, non_keys: Vec<NonKeyAttr>) -> Self {
        Self { key, non_keys }
    }

    /// The key attribute (entity type).
    pub fn key(&self) -> TypeId {
        self.key
    }

    /// The non-key attributes.
    pub fn non_keys(&self) -> &[NonKeyAttr] {
        &self.non_keys
    }

    /// Formats the table schema in the style of Table 11 of the paper.
    pub fn describe(&self, schema: &SchemaGraph) -> String {
        let attrs: Vec<String> = self.non_keys.iter().map(|a| a.label(schema)).collect();
        format!("{}: {}", schema.type_name(self.key), attrs.join(", "))
    }
}

/// A preview: a set of preview tables with pairwise-distinct key attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Preview {
    tables: Vec<PreviewTable>,
}

impl Preview {
    /// Creates a preview from its tables.
    pub fn new(tables: Vec<PreviewTable>) -> Self {
        Self { tables }
    }

    /// The preview tables.
    pub fn tables(&self) -> &[PreviewTable] {
        &self.tables
    }

    /// Total number of non-key attributes across all tables.
    pub fn non_key_count(&self) -> usize {
        self.tables.iter().map(|t| t.non_keys.len()).sum()
    }

    /// Whether a given entity type is one of the preview's key attributes.
    pub fn has_key(&self, ty: TypeId) -> bool {
        self.tables.iter().any(|t| t.key == ty)
    }

    /// Formats the whole preview, one table per line.
    pub fn describe(&self, schema: &SchemaGraph) -> String {
        self.tables
            .iter()
            .map(|t| t.describe(schema))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Materialises the preview against an entity graph, producing at most
    /// `max_rows` tuples per table (Def. 1 defines one tuple per entity of the
    /// key type; the paper displays a small sample).
    ///
    /// Tuples are taken in entity-id order, which makes the output
    /// deterministic; callers wanting a random sample can shuffle entity ids
    /// upstream.
    pub fn materialize(
        &self,
        graph: &EntityGraph,
        schema: &SchemaGraph,
        max_rows: usize,
    ) -> Vec<MaterializedTable> {
        let _span = preview_obs::span!(preview_obs::Stage::Materialize, tables = self.tables.len());
        self.tables
            .iter()
            .map(|table| materialize_table(table, graph, schema, max_rows))
            .collect()
    }
}

/// One materialised preview table, ready for display.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaterializedTable {
    /// Name of the key attribute (the entity type).
    pub key_type: String,
    /// Labels of the non-key attributes.
    pub attributes: Vec<String>,
    /// Materialised rows (at most the requested sample size).
    pub rows: Vec<MaterializedRow>,
    /// Total number of tuples the full table would contain (`|T.τ|`).
    pub total_tuples: usize,
}

/// One tuple of a materialised preview table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaterializedRow {
    /// The key attribute value (an entity name); unique and single-valued.
    pub key: String,
    /// For each non-key attribute, the (possibly empty, possibly multi-valued)
    /// set of related entity names.
    pub values: Vec<Vec<String>>,
}

impl MaterializedTable {
    /// Renders the table as fixed-width ASCII art for terminal display.
    pub fn to_text(&self) -> String {
        let mut headers = vec![self.key_type.clone()];
        headers.extend(self.attributes.iter().cloned());
        let mut rows_text: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut cells = vec![row.key.clone()];
            for vals in &row.values {
                if vals.is_empty() {
                    cells.push("-".to_string());
                } else {
                    cells.push(format!("{{{}}}", vals.join(", ")));
                }
            }
            rows_text.push(cells);
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows_text {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let mut out = String::new();
        out.push_str(&render_row(&headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &rows_text {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

fn materialize_table(
    table: &PreviewTable,
    graph: &EntityGraph,
    schema: &SchemaGraph,
    max_rows: usize,
) -> MaterializedTable {
    let key_type_name = schema.type_name(table.key()).to_string();
    let attributes: Vec<String> = table.non_keys().iter().map(|a| a.label(schema)).collect();
    // The schema graph was derived from `graph`, so the type names align even
    // if the TypeIds were produced by a different builder run.
    let key_type_in_graph = graph.type_by_name(&key_type_name);
    let mut rows = Vec::new();
    let mut total = 0usize;
    if let Some(key_ty) = key_type_in_graph {
        let entities = graph.entities_of_type(key_ty);
        total = entities.len();
        for &entity in entities.iter().take(max_rows) {
            let mut values = Vec::with_capacity(table.non_keys().len());
            for attr in table.non_keys() {
                let schema_edge = schema.edge(attr.edge);
                // Resolve the relationship type by name and endpoint types so a
                // schema graph built by a different builder run still lines up;
                // fall back to the recorded id (the common case: the schema was
                // derived from `graph` itself).
                let rel = graph
                    .type_by_name(schema.type_name(schema_edge.src))
                    .zip(graph.type_by_name(schema.type_name(schema_edge.dst)))
                    .and_then(|(src, dst)| graph.rel_type_by_key(&schema_edge.name, src, dst))
                    .unwrap_or(schema_edge.rel);
                let neighbors = graph.neighbors_via(entity, rel, attr.direction);
                values.push(
                    neighbors
                        .iter()
                        .map(|&n| graph.entity(n).name.clone())
                        .collect(),
                );
            }
            rows.push(MaterializedRow {
                key: graph.entity(entity).name.clone(),
                values,
            });
        }
    }
    MaterializedTable {
        key_type: key_type_name,
        attributes,
        rows,
        total_tuples: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures::{self, types};

    fn film_table(graph: &EntityGraph, schema: &SchemaGraph) -> PreviewTable {
        let film = schema.type_by_name(types::FILM).unwrap();
        // Find the "Director" and "Genres" schema edges.
        let director_idx = schema
            .edges()
            .iter()
            .position(|e| e.name == "Director")
            .unwrap();
        let genres_idx = schema
            .edges()
            .iter()
            .position(|e| e.name == "Genres")
            .unwrap();
        let _ = graph;
        PreviewTable::new(
            film,
            vec![
                NonKeyAttr::new(director_idx, Direction::Incoming),
                NonKeyAttr::new(genres_idx, Direction::Outgoing),
            ],
        )
    }

    #[test]
    fn non_key_attr_target_and_label() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let director_idx = s.edges().iter().position(|e| e.name == "Director").unwrap();
        let attr_in = NonKeyAttr::new(director_idx, Direction::Incoming);
        let attr_out = NonKeyAttr::new(director_idx, Direction::Outgoing);
        assert_eq!(s.type_name(attr_in.target_type(s)), types::FILM_DIRECTOR);
        assert_eq!(s.type_name(attr_out.target_type(s)), types::FILM);
        assert_eq!(attr_in.label(s), "Director (FILM DIRECTOR)");
    }

    #[test]
    fn preview_counts_and_describe() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let table = film_table(&g, s);
        let film = s.type_by_name(types::FILM).unwrap();
        let preview = Preview::new(vec![table]);
        assert_eq!(preview.non_key_count(), 2);
        assert!(preview.has_key(film));
        assert!(!preview.has_key(s.type_by_name(types::AWARD).unwrap()));
        let text = preview.describe(s);
        assert!(text.contains("FILM:"));
        assert!(text.contains("Director"));
    }

    #[test]
    fn materialize_figure2_upper_table() {
        // The upper table of Fig. 2: FILM with Director and Genres.
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let preview = Preview::new(vec![film_table(&g, s)]);
        let tables = preview.materialize(&g, s, 10);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.key_type, "FILM");
        assert_eq!(t.total_tuples, 4);
        assert_eq!(t.rows.len(), 4);
        let mib = t.rows.iter().find(|r| r.key == "Men in Black").unwrap();
        assert_eq!(mib.values[0], vec!["Barry Sonnenfeld".to_string()]);
        let mut genres = mib.values[1].clone();
        genres.sort();
        assert_eq!(
            genres,
            vec!["Action Film".to_string(), "Science Fiction".to_string()]
        );
        // Hancock has an empty Genres value (t3.Genres = "-" in Fig. 2).
        let hancock = t.rows.iter().find(|r| r.key == "Hancock").unwrap();
        assert!(hancock.values[1].is_empty());
    }

    #[test]
    fn materialize_respects_row_limit() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let preview = Preview::new(vec![film_table(&g, s)]);
        let tables = preview.materialize(&g, s, 2);
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[0].total_tuples, 4);
    }

    #[test]
    fn to_text_renders_all_rows_and_headers() {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph();
        let preview = Preview::new(vec![film_table(&g, s)]);
        let text = preview.materialize(&g, s, 10)[0].to_text();
        assert!(text.contains("FILM"));
        assert!(text.contains("Men in Black II"));
        assert!(text.contains('-'));
        assert!(text.lines().count() >= 6);
    }
}
