//! Best-first branch-and-bound discovery with an anytime mode.
//!
//! [`BestFirstDiscovery`] explores the Apriori prefix lattice in order of the
//! admissible upper bound computed by [`super::bound`]: a max-heap of prefix
//! nodes keyed by the bound, expanding the most promising subtree first.
//! Because the bound never underestimates the score of any feasible
//! completion, the first moment the best remaining bound falls below the
//! incumbent the incumbent is *provably* optimal and the search stops —
//! typically after expanding a small fraction of the subsets the brute force
//! would enumerate (`anytime-bench` enforces a ≤ 25% ceiling on its
//! benchmark space).
//!
//! The same machinery powers an **anytime** mode:
//! [`discover_anytime`](BestFirstDiscovery::discover_anytime) accepts an
//! [`AnytimeBudget`] and, when the budget expires before the proof closes,
//! returns the best incumbent found so far together with the tightest known
//! upper bound on the optimum — so callers get a usable preview immediately
//! plus an [`optimality_gap`](AnytimeOutcome::optimality_gap) quantifying
//! what a longer search could still gain.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use entity_graph::TypeId;
use preview_obs::{Counter, Stage};

use super::bound::BoundContext;
use super::common::{compute_preview, replaces_incumbent, space_is_empty};
use super::PreviewDiscovery;
use crate::constraint::PreviewSpace;
use crate::error::Result;
use crate::preview::Preview;
use crate::scoring::ScoredSchema;

/// Best-first branch-and-bound discovery (exact, with optional anytime
/// budgets). Supports every preview space; results are bitwise identical to
/// [`BruteForceDiscovery`](super::BruteForceDiscovery) on the exact path.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFirstDiscovery;

impl BestFirstDiscovery {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }

    /// Runs the search under `budget`, returning the best incumbent, the
    /// tightest known upper bound on the optimal score, and search
    /// statistics.
    ///
    /// With [`AnytimeBudget::UNLIMITED`] the search always runs to proof and
    /// the outcome is [`exact`](AnytimeOutcome::exact) — equivalent to
    /// [`discover`](PreviewDiscovery::discover), plus statistics. The node
    /// budget is deterministic: a larger `max_nodes` expands a superset of
    /// the nodes of a smaller one, so incumbent quality is monotone
    /// non-decreasing in the budget (wall-clock budgets trade that guarantee
    /// for a hard latency cap).
    ///
    /// Always returns `Ok`; the `Result` mirrors the
    /// [`PreviewDiscovery`] contract so budgeted and exact call sites
    /// compose uniformly.
    pub fn discover_anytime(
        &self,
        scored: &ScoredSchema,
        space: &PreviewSpace,
        budget: AnytimeBudget,
    ) -> Result<AnytimeOutcome> {
        let mut span = preview_obs::span!(Stage::BestFirstSearch);
        let outcome = search(scored, space, budget);
        span.set_attr(outcome.stats.nodes_expanded);
        // One batched report: a single enabled-check and thread-local
        // lookup instead of one per counter.
        preview_obs::counter_add_many(&[
            (Counter::NodesExpanded, outcome.stats.nodes_expanded),
            (Counter::NodesPruned, outcome.stats.nodes_pruned),
            (Counter::BoundCutoffs, outcome.stats.bound_cutoffs),
        ]);
        Ok(outcome)
    }
}

impl PreviewDiscovery for BestFirstDiscovery {
    fn name(&self) -> &'static str {
        "best-first"
    }

    /// The search is inherently sequential — every expansion decision depends
    /// on the incumbent produced by earlier ones — so the thread budget is
    /// accepted for interface parity and ignored: the result is trivially
    /// byte-identical across all `threads` values. The speedup over
    /// enumeration comes from bound pruning, not cores.
    fn discover_with_threads(
        &self,
        scored: &ScoredSchema,
        space: &PreviewSpace,
        _threads: usize,
    ) -> Result<Option<Preview>> {
        let outcome = self.discover_anytime(scored, space, AnytimeBudget::UNLIMITED)?;
        debug_assert!(outcome.exact);
        Ok(outcome.preview)
    }
}

/// Expansion budget for [`BestFirstDiscovery::discover_anytime`]. The search
/// stops early once **any** set limit is hit; `UNLIMITED` always runs to the
/// optimality proof.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct AnytimeBudget {
    /// Maximum number of nodes to expand (`None` = unlimited). Node budgets
    /// are fully deterministic across runs and hosts.
    pub max_nodes: Option<u64>,
    /// Wall-clock limit in milliseconds (`None` = unlimited). Wall-clock
    /// budgets cap latency but make the stopping point host-dependent.
    pub max_millis: Option<u64>,
}

impl AnytimeBudget {
    /// No limits: the search runs until the incumbent is provably optimal.
    pub const UNLIMITED: Self = Self {
        max_nodes: None,
        max_millis: None,
    };

    /// A deterministic node-expansion budget.
    pub fn nodes(max_nodes: u64) -> Self {
        Self {
            max_nodes: Some(max_nodes),
            max_millis: None,
        }
    }

    /// A wall-clock budget in milliseconds.
    pub fn millis(max_millis: u64) -> Self {
        Self {
            max_nodes: None,
            max_millis: Some(max_millis),
        }
    }

    /// Whether the budget is spent after `nodes` expansions since `start`.
    // lint: allow(wall-clock, anytime-mode budgets are wall-clock by definition; the exact path never consults them)
    fn exhausted(&self, nodes: u64, start: Instant) -> bool {
        if self.max_nodes.is_some_and(|max| nodes >= max) {
            return true;
        }
        self.max_millis
            .is_some_and(|max| start.elapsed().as_millis() as u64 >= max)
    }
}

/// Search statistics of one best-first run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Prefix nodes popped from the frontier and expanded into children.
    pub nodes_expanded: u64,
    /// Nodes discarded without expansion, for any reason: infeasible
    /// children, bound cutoffs, and the frontier remainder when the
    /// optimality proof closes.
    pub nodes_pruned: u64,
    /// The subset of [`nodes_pruned`](Self::nodes_pruned) discarded because
    /// the admissible bound could not beat the incumbent.
    pub bound_cutoffs: u64,
    /// Complete `k`-subsets scored via preview assembly — the direct analogue
    /// of the brute force's enumeration count.
    pub subsets_evaluated: u64,
}

/// Result of a (possibly budgeted) best-first search.
#[derive(Debug, Clone)]
pub struct AnytimeOutcome {
    /// Best preview found (`None` when the space is empty, or when the
    /// budget expired before any complete subset was evaluated).
    pub preview: Option<Preview>,
    /// Score of [`preview`](Self::preview) (`0.0` when `preview` is `None`).
    pub score: f64,
    /// Tightest known upper bound on the optimal score: equal to
    /// [`score`](Self::score) when [`exact`](Self::exact), otherwise the
    /// largest bound left on the frontier.
    pub upper_bound: f64,
    /// Whether the search ran to the optimality proof. When `true`, the
    /// preview is bitwise identical to the brute-force result; when `false`,
    /// the budget expired and the incumbent may be sub-optimal by at most
    /// [`optimality_gap`](Self::optimality_gap).
    pub exact: bool,
    /// Node-level statistics of the run.
    pub stats: SearchStats,
}

impl AnytimeOutcome {
    /// How far the incumbent may be from optimal: `upper_bound − score`,
    /// clamped at zero. `0.0` means the incumbent is provably optimal (the
    /// bound's float-safety inflation can leave a tiny positive gap even on
    /// proofs closed by equality, so exactness is reported by
    /// [`exact`](Self::exact), not by a zero gap).
    pub fn optimality_gap(&self) -> f64 {
        (self.upper_bound - self.score).max(0.0)
    }
}

/// A frontier node: a feasible prefix of eligible-type indices plus its
/// admissible bound and feasible extension set.
#[derive(Debug)]
struct Node {
    bound: f64,
    prefix: Vec<u32>,
    feasible: Vec<u32>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Node {
    /// Max-heap priority: larger bound first; at equal bounds the
    /// lexicographically smaller prefix first, so the eventual winner (the
    /// lex-first max scorer) is established as early as possible.
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .expect("bounds must not be NaN")
            .then_with(|| other.prefix.cmp(&self.prefix))
    }
}

/// Best incumbent so far: preview, score, and the index subset that produced
/// it (needed for the lexicographic tie-break).
struct Incumbent {
    preview: Preview,
    score: f64,
    subset: Vec<u32>,
}

/// Whether the subtree rooted at `prefix` can contain a complete subset
/// lexicographically smaller than `incumbent` — if not, an equal-bound
/// subtree cannot displace the incumbent under the tie-break and is safe to
/// prune.
///
/// Every subset in the subtree starts with `prefix`, so compare element-wise:
/// the first position where the incumbent is smaller puts the whole subtree
/// lexicographically after it; the first position where the incumbent is
/// larger puts the whole subtree before it. When `prefix` is a prefix of the
/// incumbent subset the subtree contains the incumbent itself along with
/// lexicographically earlier completions, so it must be kept.
fn may_contain_lex_smaller(prefix: &[u32], incumbent: &[u32]) -> bool {
    for (p, i) in prefix.iter().zip(incumbent) {
        if i < p {
            return false;
        }
        if i > p {
            return true;
        }
    }
    true
}

/// The best-first search loop. See the module docs for the invariants; in
/// short, the heap is ordered by the admissible bound, so the first pop whose
/// bound cannot beat the incumbent proves the incumbent optimal.
fn search(scored: &ScoredSchema, space: &PreviewSpace, budget: AnytimeBudget) -> AnytimeOutcome {
    let size = space.size();
    let mut stats = SearchStats::default();
    if space_is_empty(scored, size) {
        return AnytimeOutcome {
            preview: None,
            score: 0.0,
            upper_bound: 0.0,
            exact: true,
            stats,
        };
    }
    // lint: allow(wall-clock, anytime budget epoch; result content stays deterministic, only the stop point varies)
    let start = Instant::now();
    let ctx = BoundContext::new(scored, space);
    let eligible = scored.eligible_types();
    let k = size.tables;
    let mut scratch: Vec<f64> = Vec::new();
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let all: Vec<u32> = (0..eligible.len() as u32).collect();
    if let Some(root_bound) = ctx.upper_bound_with(&[], &all, &mut scratch) {
        heap.push(Node {
            bound: root_bound,
            prefix: Vec::new(),
            feasible: all,
        });
    }

    let mut incumbent: Option<Incumbent> = None;
    let mut subset_scratch: Vec<TypeId> = Vec::with_capacity(k);
    let mut truncated = false;
    while let Some(node) = heap.pop() {
        if let Some(inc) = &incumbent {
            if node.bound < inc.score {
                // The heap is bound-ordered: nothing left can beat the
                // incumbent, so the whole frontier is pruned and the
                // incumbent is optimal.
                stats.bound_cutoffs += 1 + heap.len() as u64;
                stats.nodes_pruned += 1 + heap.len() as u64;
                heap.clear();
                break;
            }
            if node.bound == inc.score && !may_contain_lex_smaller(&node.prefix, &inc.subset) {
                // An exactly-tying subtree can only displace the incumbent
                // with a lexicographically smaller subset; this one cannot
                // contain any.
                stats.bound_cutoffs += 1;
                stats.nodes_pruned += 1;
                continue;
            }
        }
        if budget.exhausted(stats.nodes_expanded, start) {
            // Re-file the popped node so the frontier retains the tightest
            // remaining bound for the optimality-gap report.
            heap.push(node);
            truncated = true;
            break;
        }
        stats.nodes_expanded += 1;
        if node.prefix.len() + 1 == k {
            // Children are complete subsets: score them now instead of
            // re-queueing (their bound equals their score up to rounding).
            for &j in &node.feasible {
                subset_scratch.clear();
                subset_scratch.extend(node.prefix.iter().map(|&i| eligible[i as usize]));
                subset_scratch.push(eligible[j as usize]);
                stats.subsets_evaluated += 1;
                let Some((preview, score)) = compute_preview(scored, &subset_scratch, size) else {
                    continue;
                };
                let mut subset = Vec::with_capacity(k);
                subset.extend_from_slice(&node.prefix);
                subset.push(j);
                let replaces = incumbent
                    .as_ref()
                    .is_none_or(|inc| replaces_incumbent(score, &subset, inc.score, &inc.subset));
                if replaces {
                    incumbent = Some(Incumbent {
                        preview,
                        score,
                        subset,
                    });
                }
            }
        } else {
            for (pos, &j) in node.feasible.iter().enumerate() {
                let mut child_prefix = Vec::with_capacity(node.prefix.len() + 1);
                child_prefix.extend_from_slice(&node.prefix);
                child_prefix.push(j);
                let child_feasible: Vec<u32> = node.feasible[pos + 1..]
                    .iter()
                    .copied()
                    .filter(|&r| ctx.pair_ok(j, r))
                    .collect();
                match ctx.upper_bound_with(&child_prefix, &child_feasible, &mut scratch) {
                    None => stats.nodes_pruned += 1,
                    Some(bound) => {
                        let cut = incumbent.as_ref().is_some_and(|inc| {
                            bound < inc.score
                                || (bound == inc.score
                                    && !may_contain_lex_smaller(&child_prefix, &inc.subset))
                        });
                        if cut {
                            stats.bound_cutoffs += 1;
                            stats.nodes_pruned += 1;
                        } else {
                            heap.push(Node {
                                bound,
                                prefix: child_prefix,
                                feasible: child_feasible,
                            });
                        }
                    }
                }
            }
        }
    }

    let score = incumbent.as_ref().map_or(0.0, |inc| inc.score);
    let upper_bound = if truncated {
        heap.peek().map_or(score, |node| node.bound.max(score))
    } else {
        score
    };
    AnytimeOutcome {
        preview: incumbent.map(|inc| inc.preview),
        score,
        upper_bound,
        exact: !truncated,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::BruteForceDiscovery;
    use crate::constraint::SizeConstraint;
    use crate::scoring::{KeyScoring, NonKeyScoring, ScoringConfig};
    use entity_graph::fixtures::{self, types};

    fn scored(config: ScoringConfig) -> ScoredSchema {
        ScoredSchema::build(&fixtures::figure1_graph(), &config).unwrap()
    }

    #[test]
    fn finds_concise_running_example() {
        let s = scored(ScoringConfig::coverage());
        let space = PreviewSpace::concise(2, 6).unwrap();
        let preview = BestFirstDiscovery::new().discover(&s, &space).unwrap();
        let preview = preview.unwrap();
        assert!((s.preview_score(&preview) - 84.0).abs() < 1e-9);
        let names: Vec<&str> = preview
            .tables()
            .iter()
            .map(|t| s.schema().type_name(t.key()))
            .collect();
        assert_eq!(names, vec![types::FILM, types::FILM_ACTOR]);
    }

    #[test]
    fn matches_brute_force_bitwise_across_spaces() {
        for config in [
            ScoringConfig::coverage(),
            ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Entropy),
        ] {
            let s = scored(config);
            for k in 1..=4 {
                for n in k..=k + 3 {
                    let mut spaces = vec![PreviewSpace::concise(k, n).unwrap()];
                    for d in 1..=4 {
                        spaces.push(PreviewSpace::tight(k, n, d).unwrap());
                        spaces.push(PreviewSpace::diverse(k, n, d).unwrap());
                    }
                    for space in spaces {
                        let bf = BruteForceDiscovery::new().discover(&s, &space).unwrap();
                        let best = BestFirstDiscovery::new().discover(&s, &space).unwrap();
                        match (bf, best) {
                            (None, None) => {}
                            (Some(a), Some(b)) => {
                                assert_eq!(a, b, "previews diverge in {space:?}");
                                assert_eq!(
                                    s.preview_score(&a).to_bits(),
                                    s.preview_score(&b).to_bits()
                                );
                            }
                            (a, b) => panic!("feasibility diverges in {space:?}: {a:?} vs {b:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prunes_against_enumeration() {
        let s = scored(ScoringConfig::coverage());
        let space = PreviewSpace::concise(3, 8).unwrap();
        let outcome = BestFirstDiscovery::new()
            .discover_anytime(&s, &space, AnytimeBudget::UNLIMITED)
            .unwrap();
        assert!(outcome.exact);
        let enumerated = crate::algo::brute_force_subset_count(s.eligible_types().len(), 3);
        assert!(
            u128::from(outcome.stats.subsets_evaluated) < enumerated,
            "evaluated {} of {enumerated} subsets",
            outcome.stats.subsets_evaluated
        );
        assert!(outcome.stats.nodes_pruned > 0);
    }

    #[test]
    fn degenerate_spaces_are_empty() {
        let s = scored(ScoringConfig::coverage());
        let algo = BestFirstDiscovery::new();
        // k == 0 and n < k, reachable via the public constraint fields.
        for size in [
            SizeConstraint {
                tables: 0,
                non_keys: 0,
            },
            SizeConstraint {
                tables: 3,
                non_keys: 2,
            },
        ] {
            let space = PreviewSpace::Concise(size);
            assert!(algo.discover(&s, &space).unwrap().is_none());
        }
        // More tables than eligible types.
        let space = PreviewSpace::concise(100, 200).unwrap();
        assert!(algo.discover(&s, &space).unwrap().is_none());
        let outcome = algo
            .discover_anytime(&s, &space, AnytimeBudget::UNLIMITED)
            .unwrap();
        assert!(outcome.exact && outcome.preview.is_none());
        assert_eq!(outcome.optimality_gap(), 0.0);
    }

    #[test]
    fn infeasible_distance_returns_none() {
        let s = scored(ScoringConfig::coverage());
        // No two types in the running example are 9+ apart.
        let space = PreviewSpace::diverse(2, 6, 9).unwrap();
        assert!(BestFirstDiscovery::new()
            .discover(&s, &space)
            .unwrap()
            .is_none());
    }

    #[test]
    fn zero_node_budget_reports_root_bound() {
        let s = scored(ScoringConfig::coverage());
        let space = PreviewSpace::concise(2, 6).unwrap();
        let outcome = BestFirstDiscovery::new()
            .discover_anytime(&s, &space, AnytimeBudget::nodes(0))
            .unwrap();
        assert!(!outcome.exact);
        assert!(outcome.preview.is_none());
        assert_eq!(outcome.score, 0.0);
        assert!(outcome.upper_bound >= 84.0);
        assert!(outcome.optimality_gap() >= 84.0);
    }

    #[test]
    fn node_budget_is_monotone_and_converges() {
        let s = scored(ScoringConfig::new(
            KeyScoring::Coverage,
            NonKeyScoring::Entropy,
        ));
        let space = PreviewSpace::diverse(3, 8, 2).unwrap();
        let exact = BestFirstDiscovery::new()
            .discover_anytime(&s, &space, AnytimeBudget::UNLIMITED)
            .unwrap();
        assert!(exact.exact);
        let mut last_score = -1.0;
        for nodes in [1, 2, 4, 8, 1 << 20] {
            let out = BestFirstDiscovery::new()
                .discover_anytime(&s, &space, AnytimeBudget::nodes(nodes))
                .unwrap();
            let score = out.score;
            assert!(
                score >= last_score,
                "incumbent regressed at budget {nodes}: {score} < {last_score}"
            );
            assert!(out.upper_bound >= score);
            assert!(out.upper_bound * (1.0 + 1e-6) >= exact.score);
            last_score = score;
        }
        // A generous budget reaches the proof and the exact result.
        let big = BestFirstDiscovery::new()
            .discover_anytime(&s, &space, AnytimeBudget::nodes(1 << 20))
            .unwrap();
        assert!(big.exact);
        assert_eq!(big.preview, exact.preview);
        assert_eq!(big.score.to_bits(), exact.score.to_bits());
    }

    #[test]
    fn thread_budget_is_ignored_but_identical() {
        let s = scored(ScoringConfig::coverage());
        let space = PreviewSpace::diverse(2, 6, 2).unwrap();
        let algo = BestFirstDiscovery::new();
        let sequential = algo.discover_with_threads(&s, &space, 1).unwrap();
        let parallel = algo.discover_with_threads(&s, &space, 4).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn lex_subtree_probe() {
        assert!(may_contain_lex_smaller(&[0], &[1, 2, 3]));
        assert!(!may_contain_lex_smaller(&[2], &[1, 2, 3]));
        assert!(may_contain_lex_smaller(&[1, 2], &[1, 2, 3]));
        assert!(may_contain_lex_smaller(&[], &[1, 2, 3]));
        assert!(!may_contain_lex_smaller(&[1, 3], &[1, 2, 3]));
    }
}
