//! Admissible upper bounds over the Apriori prefix lattice, used by the
//! best-first branch-and-bound algorithm ([`crate::algo::BestFirstDiscovery`]).
//!
//! A search node is a *prefix*: a strictly increasing sequence of eligible-type
//! indices that may grow into a full `k`-subset of key attributes. The bound
//! computed here never underestimates the preview score (Eq. 1) of **any**
//! feasible completion of the prefix, which is what lets the search discard a
//! whole subtree the moment its bound falls below the incumbent without ever
//! cutting off an optimum.
//!
//! # The bound
//!
//! For a fixed key-attribute subset `S` (|S| = k, budget `n`), Theorem 3 gives
//! the optimal preview score as
//!
//! ```text
//! score(S) = Σ_{τ∈S} S(τ)·Sτ(γ₁)  +  top-(n−k) of { S(τ)·Sτ(γⱼ) : τ∈S, j≥2 }
//! ```
//!
//! — every table takes its best candidate, and the remaining `n−k` slots take
//! the globally best *extra* candidates. For a prefix `P` (|P| = m) with
//! feasible extension set `R` (indices after `P`'s last element that satisfy
//! the distance constraint against every member of `P`), the bound is
//!
//! ```text
//! ub(P) = Σ_{τ∈P} S(τ)·Sτ(γ₁)                      (chosen per-slot maxima)
//!       + top-(k−m) of { S(τ)·Sτ(γ₁) : τ∈R }       (remaining per-slot maxima)
//!       + top-(n−k) of { S(τ)·Sτ(γⱼ) : τ∈P∪R, j≥2 } (optimistic extras pool)
//! ```
//!
//! Admissibility: any feasible completion `S = P ∪ C` has `C ⊆ R` with
//! `|C| = k−m`, so its per-slot maxima are dominated term-wise by the top
//! `k−m` maxima over all of `R`, and its extras pool is a subset of the
//! `P ∪ R` pool, so its top-(n−k) sum is dominated as well. When `|R| < k−m`
//! the prefix has no completion at all and the bound is `None`.
//!
//! The returned bound is additionally inflated by [`BOUND_SAFETY`] so that
//! floating-point rounding in the (differently ordered) summations can never
//! push a mathematically admissible bound below the true score of a
//! completion; the bound-admissibility property test asserts strict
//! domination, inflation included.

use entity_graph::DistanceMatrix;

use crate::candidates::Candidate;
use crate::constraint::{DistanceConstraint, PreviewSpace};
use crate::scoring::ScoredSchema;

/// Relative safety factor applied to every bound: large enough to dominate
/// the worst-case relative rounding error of the few-hundred-term sums
/// involved (≈ `len · ε ≈ 1e-13`), small enough to cost essentially no
/// pruning power on real score distributions.
pub const BOUND_SAFETY: f64 = 1.0 + 1e-9;

/// Precomputed per-space state for bounding prefix subtrees.
///
/// Indices handed to [`feasible_extensions`](Self::feasible_extensions) and
/// [`upper_bound`](Self::upper_bound) are positions into
/// [`ScoredSchema::eligible_types`], exactly the index space the Apriori
/// join and the best-first search operate in.
#[derive(Debug, Clone)]
pub struct BoundContext<'a> {
    scored: &'a ScoredSchema,
    distances: &'a DistanceMatrix,
    constraint: Option<DistanceConstraint>,
    /// `k`: number of preview tables.
    tables: usize,
    /// `n − k`: non-key slots beyond the one mandatory slot per table.
    extra_slots: usize,
    /// Per eligible index: the per-slot maximum `S(τ)·Sτ(γ₁)` (the
    /// [`ScoredSchema::weighted_top_score`] of the type).
    slot_max: Vec<f64>,
    /// Per eligible index: the type's key score (weights the extras).
    key: Vec<f64>,
    /// Per eligible index: the type's candidate list, sorted by descending
    /// score, so the weighted extras `key · cands[j≥1].score` are sorted too.
    cands: Vec<&'a [Candidate]>,
}

impl<'a> BoundContext<'a> {
    /// Builds the bound state for one `(scored, space)` pair.
    pub fn new(scored: &'a ScoredSchema, space: &PreviewSpace) -> Self {
        let size = space.size();
        let eligible = scored.eligible_types();
        let slot_max = eligible
            .iter()
            .map(|&ty| scored.weighted_top_score(ty))
            .collect();
        let key = eligible.iter().map(|&ty| scored.key_score(ty)).collect();
        let cands = eligible.iter().map(|&ty| scored.candidates(ty)).collect();
        Self {
            scored,
            distances: scored.distances(),
            constraint: space.distance(),
            tables: size.tables,
            extra_slots: size.non_keys.saturating_sub(size.tables),
            slot_max,
            key,
            cands,
        }
    }

    /// Whether the eligible types at indices `a` and `b` may coexist in one
    /// preview under the space's distance constraint (always true for
    /// concise spaces).
    #[inline]
    pub fn pair_ok(&self, a: u32, b: u32) -> bool {
        match self.constraint {
            None => true,
            Some(constraint) => {
                let eligible = self.scored.eligible_types();
                constraint.pair_ok(
                    self.distances
                        .distance(eligible[a as usize], eligible[b as usize]),
                )
            }
        }
    }

    /// The feasible extension set of `prefix`: every eligible index after the
    /// prefix's last element that satisfies the distance constraint against
    /// **all** prefix members. (Pairwise feasibility *among* the extensions
    /// is deliberately not required — the bound stays admissible without it,
    /// and the search re-checks pairs as it extends.)
    pub fn feasible_extensions(&self, prefix: &[u32]) -> Vec<u32> {
        let start = prefix.last().map_or(0, |&last| last + 1);
        (start..self.slot_max.len() as u32)
            .filter(|&r| prefix.iter().all(|&p| self.pair_ok(p, r)))
            .collect()
    }

    /// The admissible upper bound on the preview score of any feasible
    /// completion of `prefix`, or `None` when no completion exists
    /// (`feasible` has fewer elements than the prefix still needs).
    ///
    /// `feasible` must be the prefix's feasible extension set (see
    /// [`feasible_extensions`](Self::feasible_extensions)); the search
    /// maintains it incrementally instead of recomputing it per node.
    pub fn upper_bound(&self, prefix: &[u32], feasible: &[u32]) -> Option<f64> {
        self.upper_bound_with(prefix, feasible, &mut Vec::new())
    }

    /// [`upper_bound`](Self::upper_bound) with a caller-owned scratch buffer,
    /// so the per-node hot path allocates nothing.
    pub(crate) fn upper_bound_with(
        &self,
        prefix: &[u32],
        feasible: &[u32],
        scratch: &mut Vec<f64>,
    ) -> Option<f64> {
        let need = self.tables.checked_sub(prefix.len())?;
        if feasible.len() < need {
            return None;
        }
        // Chosen per-slot maxima.
        let mut bound: f64 = prefix.iter().map(|&i| self.slot_max[i as usize]).sum();
        // Top `k − m` remaining per-slot maxima over the feasible extensions.
        if need > 0 {
            top_reset(scratch, need);
            for &r in feasible {
                top_offer(scratch, need, self.slot_max[r as usize]);
            }
            bound += scratch.iter().sum::<f64>();
        }
        // Optimistic extras pool: top `n − k` weighted non-mandatory
        // candidates over the chosen types and every feasible extension.
        // A complete prefix takes no extensions, so its pool is exact.
        if self.extra_slots > 0 {
            let extensions: &[u32] = if need > 0 { feasible } else { &[] };
            top_reset(scratch, self.extra_slots);
            for &i in prefix.iter().chain(extensions) {
                let key = self.key[i as usize];
                for cand in &self.cands[i as usize][1..] {
                    // Extras of one type descend, so once one fails to enter
                    // the top buffer the rest of the list cannot either.
                    if !top_offer(scratch, self.extra_slots, key * cand.score) {
                        break;
                    }
                }
            }
            bound += scratch.iter().sum::<f64>();
        }
        Some(bound * BOUND_SAFETY)
    }
}

/// Clears `buffer` for a fresh top-`limit` selection.
fn top_reset(buffer: &mut Vec<f64>, limit: usize) {
    buffer.clear();
    buffer.reserve(limit);
}

/// Offers `value` to an ascending-sorted top-`limit` buffer. Returns whether
/// the value entered (or the buffer still has room): a `false` return means
/// every smaller value would be rejected too.
fn top_offer(buffer: &mut Vec<f64>, limit: usize, value: f64) -> bool {
    if buffer.len() < limit {
        let at = buffer.partition_point(|&v| v < value);
        buffer.insert(at, value);
        true
    } else if value > buffer[0] {
        buffer.remove(0);
        let at = buffer.partition_point(|&v| v < value);
        buffer.insert(at, value);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::common::compute_preview;
    use crate::scoring::ScoringConfig;
    use entity_graph::fixtures;

    fn scored() -> ScoredSchema {
        ScoredSchema::build(&fixtures::figure1_graph(), &ScoringConfig::coverage()).unwrap()
    }

    #[test]
    fn top_offer_keeps_the_largest_values() {
        let mut buffer = Vec::new();
        top_reset(&mut buffer, 3);
        for v in [5.0, 1.0, 9.0, 2.0, 7.0] {
            top_offer(&mut buffer, 3, v);
        }
        assert_eq!(buffer, vec![5.0, 7.0, 9.0]);
        assert!(!top_offer(&mut buffer, 3, 4.0));
        assert!(top_offer(&mut buffer, 3, 6.0));
        assert_eq!(buffer, vec![6.0, 7.0, 9.0]);
    }

    #[test]
    fn empty_prefix_bound_dominates_the_optimum() {
        let scored = scored();
        let space = PreviewSpace::concise(2, 6).unwrap();
        let ctx = BoundContext::new(&scored, &space);
        let feasible = ctx.feasible_extensions(&[]);
        let bound = ctx.upper_bound(&[], &feasible).unwrap();
        // The concise optimum of the running example scores 84.
        assert!(bound >= 84.0, "bound {bound} below the optimum");
    }

    #[test]
    fn complete_prefix_bound_matches_its_exact_score() {
        let scored = scored();
        let space = PreviewSpace::concise(2, 6).unwrap();
        let ctx = BoundContext::new(&scored, &space);
        let eligible = scored.eligible_types();
        let size = space.size();
        for a in 0..eligible.len() as u32 {
            for b in (a + 1)..eligible.len() as u32 {
                let prefix = [a, b];
                let feasible = ctx.feasible_extensions(&prefix);
                let bound = ctx.upper_bound(&prefix, &feasible).unwrap();
                let subset = [eligible[a as usize], eligible[b as usize]];
                let (_, score) = compute_preview(&scored, &subset, size).unwrap();
                assert!(bound >= score, "bound {bound} < exact score {score}");
                assert!(
                    bound <= score * BOUND_SAFETY * BOUND_SAFETY + 1e-12,
                    "complete-prefix bound {bound} is not tight against {score}"
                );
            }
        }
    }

    #[test]
    fn short_feasible_set_means_no_completion() {
        let scored = scored();
        let space = PreviewSpace::concise(3, 6).unwrap();
        let ctx = BoundContext::new(&scored, &space);
        assert!(ctx.upper_bound(&[0], &[1]).is_none());
        assert!(ctx.upper_bound(&[0], &[1, 2]).is_some());
    }

    #[test]
    fn diverse_constraint_restricts_feasible_extensions() {
        let scored = scored();
        let concise = PreviewSpace::concise(2, 6).unwrap();
        let diverse = PreviewSpace::diverse(2, 6, 2).unwrap();
        let all = BoundContext::new(&scored, &concise).feasible_extensions(&[0]);
        let far = BoundContext::new(&scored, &diverse).feasible_extensions(&[0]);
        assert!(far.len() < all.len());
        for &r in &far {
            assert!(BoundContext::new(&scored, &diverse).pair_ok(0, r));
        }
    }
}
