//! Dynamic-programming optimal *concise* preview discovery (Alg. 2).
//!
//! `Popt(i, j, x)` — the optimal preview with `i` tables and at most `j`
//! non-key attributes among the first `x` entity types — either ignores the
//! `x`-th type or extends `Popt(i−1, j−m, x−1)` with a table on the `x`-th
//! type carrying its top-`m` candidate non-key attributes (Theorem 3). The
//! complexity is `O(K·N·logN + K·k·n²)`, polynomial where the brute force is
//! exponential. The optimal substructure breaks down under a distance
//! constraint, so this algorithm only serves the concise space; asking it for
//! a tight or diverse preview is an error.

use crate::algo::common::space_is_empty;
use crate::algo::PreviewDiscovery;
use crate::constraint::PreviewSpace;
use crate::error::{Error, Result};
use crate::preview::{NonKeyAttr, Preview, PreviewTable};
use crate::scoring::ScoredSchema;

/// The dynamic-programming algorithm (Alg. 2) for concise previews.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicProgrammingDiscovery;

impl DynamicProgrammingDiscovery {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl PreviewDiscovery for DynamicProgrammingDiscovery {
    fn name(&self) -> &'static str {
        "dynamic-programming"
    }

    /// The DP recurrence is inherently sequential in its outer dimension
    /// (`Popt(·, ·, x)` depends on `Popt(·, ·, x − 1)`), so `threads` is
    /// accepted for interface uniformity but does not fan work out. The
    /// algorithm is polynomial — parallelism pays off on the exponential
    /// enumeration algorithms, not here.
    fn discover_with_threads(
        &self,
        scored: &ScoredSchema,
        space: &PreviewSpace,
        _threads: usize,
    ) -> Result<Option<Preview>> {
        let size = match space {
            PreviewSpace::Concise(size) => *size,
            PreviewSpace::Tight(..) | PreviewSpace::Diverse(..) => {
                return Err(Error::InvalidConstraint {
                    message: "the dynamic-programming algorithm only supports concise previews; \
                              use the Apriori-style algorithm for tight/diverse previews"
                        .to_string(),
                })
            }
        };
        if space_is_empty(scored, size) {
            return Ok(None);
        }
        let eligible = scored.eligible_types();
        let types_total = eligible.len();
        let k = size.tables;
        let n = size.non_keys;

        const NEG: f64 = f64::NEG_INFINITY;
        // dp[x][i][j]: best score using a subset of the first x eligible types
        // with exactly i tables and at most j non-key attributes.
        // choice[x][i][j]: how many candidates the x-th type contributes at
        // that optimum (0 = the x-th type is skipped).
        let mut dp = vec![vec![vec![NEG; n + 1]; k + 1]; types_total + 1];
        let mut choice = vec![vec![vec![0u16; n + 1]; k + 1]; types_total + 1];
        for cell in dp[0][0].iter_mut() {
            *cell = 0.0;
        }

        for x in 1..=types_total {
            let ty = eligible[x - 1];
            let key_score = scored.key_score(ty);
            let available = scored.candidates(ty).len();
            for i in 0..=k {
                for j in 0..=n {
                    // Option 1: skip type x.
                    let mut best = dp[x - 1][i][j];
                    let mut best_m = 0u16;
                    // Option 2: build a table on type x with its top-m candidates.
                    if i >= 1 && j >= i {
                        // Each of the other i-1 tables needs at least one
                        // non-key attribute, so at most j-(i-1) go to type x.
                        let max_m = available.min(j - (i - 1));
                        for m in 1..=max_m {
                            let prev = dp[x - 1][i - 1][j - m];
                            if prev == NEG {
                                continue;
                            }
                            let score = prev + key_score * scored.top_m_score_sum(ty, m);
                            if score > best {
                                best = score;
                                best_m = m as u16;
                            }
                        }
                    }
                    dp[x][i][j] = best;
                    choice[x][i][j] = best_m;
                }
            }
        }

        if dp[types_total][k][n] == NEG {
            return Ok(None);
        }

        // Reconstruct one optimal preview by replaying the recorded choices.
        let mut tables = Vec::with_capacity(k);
        let mut i = k;
        let mut j = n;
        for x in (1..=types_total).rev() {
            if i == 0 {
                break;
            }
            let m = choice[x][i][j] as usize;
            if m == 0 {
                continue;
            }
            let ty = eligible[x - 1];
            let non_keys = scored.candidates(ty)[..m]
                .iter()
                .map(|c| NonKeyAttr::new(c.edge, c.direction))
                .collect();
            tables.push(PreviewTable::new(ty, non_keys));
            i -= 1;
            j -= m;
        }
        debug_assert_eq!(tables.len(), k, "DP reconstruction must recover k tables");
        tables.reverse();
        Ok(Some(Preview::new(tables)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute_force::BruteForceDiscovery;
    use crate::constraint::PreviewSpace;
    use crate::scoring::{KeyScoring, NonKeyScoring, ScoredSchema, ScoringConfig};
    use entity_graph::fixtures;

    fn scored(config: ScoringConfig) -> ScoredSchema {
        let g = fixtures::figure1_graph();
        ScoredSchema::build(&g, &config).unwrap()
    }

    #[test]
    fn matches_brute_force_on_running_example() {
        let scored = scored(ScoringConfig::coverage());
        let space = PreviewSpace::concise(2, 6).unwrap();
        let dp = DynamicProgrammingDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        let bf = BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        assert!((scored.preview_score(&dp) - scored.preview_score(&bf)).abs() < 1e-9);
        assert!((scored.preview_score(&dp) - 84.0).abs() < 1e-9);
        assert!(space.contains(&dp, scored.distances()));
    }

    #[test]
    fn matches_brute_force_across_sizes_and_scorings() {
        let configs = [
            ScoringConfig::coverage(),
            ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Coverage),
            ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy),
            ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Entropy),
        ];
        for config in configs {
            let scored = scored(config);
            for k in 1..=4usize {
                for n in k..=(k + 4) {
                    let space = PreviewSpace::concise(k, n).unwrap();
                    let dp = DynamicProgrammingDiscovery::new()
                        .discover(&scored, &space)
                        .unwrap();
                    let bf = BruteForceDiscovery::new()
                        .discover(&scored, &space)
                        .unwrap();
                    match (dp, bf) {
                        (Some(dp), Some(bf)) => {
                            let ds = scored.preview_score(&dp);
                            let bs = scored.preview_score(&bf);
                            assert!(
                                (ds - bs).abs() < 1e-9 * (1.0 + bs.abs()),
                                "k={k} n={n}: dp={ds} bf={bs}"
                            );
                            assert!(space.contains(&dp, scored.distances()));
                        }
                        (None, None) => {}
                        (dp, bf) => {
                            panic!("k={k} n={n}: dp={:?} bf={:?}", dp.is_some(), bf.is_some())
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_distance_constrained_spaces() {
        let scored = scored(ScoringConfig::coverage());
        let tight = PreviewSpace::tight(2, 6, 2).unwrap();
        let diverse = PreviewSpace::diverse(2, 6, 2).unwrap();
        assert!(DynamicProgrammingDiscovery::new()
            .discover(&scored, &tight)
            .is_err());
        assert!(DynamicProgrammingDiscovery::new()
            .discover(&scored, &diverse)
            .is_err());
    }

    #[test]
    fn returns_none_when_not_enough_types() {
        let scored = scored(ScoringConfig::coverage());
        let space = PreviewSpace::concise(7, 14).unwrap();
        assert!(DynamicProgrammingDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
    }

    #[test]
    fn exact_table_count_even_when_budget_is_tight() {
        let scored = scored(ScoringConfig::coverage());
        // n == k: one non-key attribute per table.
        let space = PreviewSpace::concise(3, 3).unwrap();
        let dp = DynamicProgrammingDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        assert_eq!(dp.tables().len(), 3);
        assert_eq!(dp.non_key_count(), 3);
        let bf = BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        assert!((scored.preview_score(&dp) - scored.preview_score(&bf)).abs() < 1e-9);
    }

    #[test]
    fn uses_all_types_when_k_equals_type_count() {
        let scored = scored(ScoringConfig::coverage());
        let k = scored.eligible_types().len();
        let space = PreviewSpace::concise(k, k + 6).unwrap();
        let dp = DynamicProgrammingDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        assert_eq!(dp.tables().len(), k);
        // Every eligible type is a key attribute.
        for &ty in scored.eligible_types() {
            assert!(dp.has_key(ty));
        }
    }
}
