//! Apriori-style optimal *tight/diverse* preview discovery (Alg. 3).
//!
//! Finding the key attributes of a tight (diverse) preview is the problem of
//! finding a `k`-clique in the graph whose vertices are entity types and whose
//! edges connect types within (beyond) distance `d`. The algorithm grows
//! candidate subsets level-wise, Apriori style: two `(i−1)`-subsets that share
//! their first `i−2` elements are joined if their last elements also satisfy
//! the distance constraint. Every `k`-subset that survives is turned into a
//! preview via Theorem 3 and the best one is returned.

//! Both the level-wise join (independent per prefix group) and the final
//! per-subset preview assembly are embarrassingly parallel; they fan out
//! across the fork-join pool with index-ordered merges, so the result is
//! byte-identical to the sequential scan at any thread count.

use crate::algo::common::{compute_preview, merge_best, space_is_empty};
use crate::algo::PreviewDiscovery;
use crate::constraint::{DistanceConstraint, PreviewSpace};
use crate::error::{Error, Result};
use crate::par::FjPool;
use crate::preview::Preview;
use crate::scoring::ScoredSchema;

/// The Apriori-style algorithm (Alg. 3) for tight and diverse previews.
#[derive(Debug, Clone, Copy, Default)]
pub struct AprioriDiscovery;

impl AprioriDiscovery {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl PreviewDiscovery for AprioriDiscovery {
    fn name(&self) -> &'static str {
        "apriori"
    }

    fn discover_with_threads(
        &self,
        scored: &ScoredSchema,
        space: &PreviewSpace,
        threads: usize,
    ) -> Result<Option<Preview>> {
        let constraint = match space.distance() {
            Some(c) => c,
            None => {
                return Err(Error::InvalidConstraint {
                    message: "the Apriori-style algorithm requires a distance constraint; \
                              use the dynamic-programming algorithm for concise previews"
                        .to_string(),
                })
            }
        };
        let size = space.size();
        if space_is_empty(scored, size) {
            return Ok(None);
        }
        let eligible = scored.eligible_types();

        let subsets = candidate_subsets(scored, constraint, size.tables, threads);
        // Evaluate the surviving subsets in contiguous chunks; the
        // earliest-strict-argmax merge in chunk order equals the sequential
        // scan (see `merge_best`).
        Ok(FjPool::global()
            .map_chunked(threads, subsets.len(), |range| {
                let mut best: Option<(Preview, f64)> = None;
                for subset in &subsets[range] {
                    let types: Vec<_> = subset.iter().map(|&i| eligible[i as usize]).collect();
                    if let Some((preview, score)) = compute_preview(scored, &types, size) {
                        best = merge_best(best, Some((preview, score)));
                    }
                }
                best
            })
            .into_iter()
            .fold(None, merge_best)
            .map(|(preview, _)| preview))
    }
}

/// Level-wise generation of the `k`-subsets of eligible-type *indices* whose
/// pairwise distances satisfy the constraint (Alg. 3, lines 1–14).
///
/// Each level is produced in lexicographic order: L2 is generated per first
/// index, later levels per shared-prefix group — both fan out across the
/// fork-join pool and concatenate their per-group output in group order, so
/// the generated candidate list is identical to the sequential join at any
/// thread count.
fn candidate_subsets(
    scored: &ScoredSchema,
    constraint: DistanceConstraint,
    k: usize,
    threads: usize,
) -> Vec<Vec<u32>> {
    let eligible = scored.eligible_types();
    let distances = scored.distances();
    let pair_ok = |a: u32, b: u32| -> bool {
        constraint.pair_ok(distances.distance(eligible[a as usize], eligible[b as usize]))
    };
    let pool = FjPool::global();

    if k == 1 {
        return (0..eligible.len() as u32).map(|i| vec![i]).collect();
    }

    // L2: all ordered pairs (i < j) satisfying the constraint, grouped (and
    // parallelized) by their first index.
    let firsts: Vec<u32> = (0..eligible.len() as u32).collect();
    let mut level: Vec<Vec<u32>> = pool
        .map(threads, &firsts, |_, &i| {
            ((i + 1)..eligible.len() as u32)
                .filter(|&j| pair_ok(i, j))
                .map(|j| vec![i, j])
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

    let mut size = 2;
    while size < k && !level.is_empty() {
        // Join pairs of subsets sharing all but their last element. The level
        // is generated in lexicographic order, so subsets with a common
        // prefix are adjacent: a cheap sequential scan finds the group
        // boundaries, then every group joins independently.
        let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0;
        while start < level.len() {
            let prefix = &level[start][..size - 1];
            let mut end = start + 1;
            while end < level.len() && &level[end][..size - 1] == prefix {
                end += 1;
            }
            groups.push(start..end);
            start = end;
        }
        let next: Vec<Vec<u32>> = pool
            .map(threads, &groups, |_, group| {
                let mut joined_group: Vec<Vec<u32>> = Vec::new();
                for a in group.clone() {
                    for b in (a + 1)..group.end {
                        let last_a = level[a][size - 1];
                        let last_b = level[b][size - 1];
                        if pair_ok(last_a, last_b) {
                            let mut joined = level[a].clone();
                            joined.push(last_b);
                            joined_group.push(joined);
                        }
                    }
                }
                joined_group
            })
            .into_iter()
            .flatten()
            .collect();
        level = next;
        size += 1;
    }

    if size == k {
        level
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute_force::BruteForceDiscovery;
    use crate::constraint::PreviewSpace;
    use crate::scoring::{KeyScoring, NonKeyScoring, ScoredSchema, ScoringConfig};
    use entity_graph::fixtures::{self, types};

    fn scored(config: ScoringConfig) -> ScoredSchema {
        let g = fixtures::figure1_graph();
        ScoredSchema::build(&g, &config).unwrap()
    }

    #[test]
    fn diverse_running_example_matches_paper() {
        let scored = scored(ScoringConfig::coverage());
        let space = PreviewSpace::diverse(2, 6, 2).unwrap();
        let preview = AprioriDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        let schema = scored.schema();
        assert!(preview.has_key(schema.type_by_name(types::FILM).unwrap()));
        assert!(preview.has_key(schema.type_by_name(types::AWARD).unwrap()));
        assert!((scored.preview_score(&preview) - 78.0).abs() < 1e-9);
        assert!(space.contains(&preview, scored.distances()));
    }

    #[test]
    fn matches_brute_force_for_tight_and_diverse() {
        let configs = [
            ScoringConfig::coverage(),
            ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Entropy),
        ];
        for config in configs {
            let scored = scored(config);
            for k in 1..=4usize {
                for d in 1..=4u32 {
                    for space in [
                        PreviewSpace::tight(k, k + 4, d).unwrap(),
                        PreviewSpace::diverse(k, k + 4, d).unwrap(),
                    ] {
                        let ap = AprioriDiscovery::new().discover(&scored, &space).unwrap();
                        let bf = BruteForceDiscovery::new()
                            .discover(&scored, &space)
                            .unwrap();
                        match (ap, bf) {
                            (Some(ap), Some(bf)) => {
                                let a = scored.preview_score(&ap);
                                let b = scored.preview_score(&bf);
                                assert!(
                                    (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                                    "k={k} d={d} space={space:?}: apriori={a} bf={b}"
                                );
                                assert!(space.contains(&ap, scored.distances()));
                            }
                            (None, None) => {}
                            (ap, bf) => panic!(
                                "k={k} d={d} space={space:?}: apriori={:?} bf={:?}",
                                ap.is_some(),
                                bf.is_some()
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_concise_space() {
        let scored = scored(ScoringConfig::coverage());
        let space = PreviewSpace::concise(2, 6).unwrap();
        assert!(AprioriDiscovery::new().discover(&scored, &space).is_err());
    }

    #[test]
    fn infeasible_constraint_returns_none() {
        let scored = scored(ScoringConfig::coverage());
        // Pairwise distance of at least 5 between 3 tables is impossible on
        // the Fig. 1 schema graph (diameter 2).
        let space = PreviewSpace::diverse(3, 6, 5).unwrap();
        assert!(AprioriDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
    }

    #[test]
    fn parallel_discovery_is_byte_identical_to_sequential() {
        let scored = scored(ScoringConfig::coverage());
        for space in [
            PreviewSpace::tight(2, 6, 2).unwrap(),
            PreviewSpace::tight(3, 6, 10).unwrap(),
            PreviewSpace::diverse(2, 6, 2).unwrap(),
        ] {
            let sequential = AprioriDiscovery::new()
                .discover_with_threads(&scored, &space, 1)
                .unwrap();
            for threads in [0, 2, 4, 16] {
                let parallel = AprioriDiscovery::new()
                    .discover_with_threads(&scored, &space, threads)
                    .unwrap();
                assert_eq!(parallel, sequential, "threads={threads} {space:?}");
            }
        }
    }

    #[test]
    fn k_equals_one_ignores_distance() {
        let scored = scored(ScoringConfig::coverage());
        let space = PreviewSpace::tight(1, 3, 1).unwrap();
        let preview = AprioriDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        assert_eq!(preview.tables().len(), 1);
        // Same single-table optimum as the brute force.
        let bf = BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        assert!((scored.preview_score(&preview) - scored.preview_score(&bf)).abs() < 1e-9);
    }

    #[test]
    fn large_d_tight_equals_concise_optimum() {
        // With d larger than the schema diameter every pair qualifies, so the
        // tight optimum coincides with the concise optimum.
        let scored = scored(ScoringConfig::coverage());
        let tight = PreviewSpace::tight(2, 6, 10).unwrap();
        let concise = PreviewSpace::concise(2, 6).unwrap();
        let ap = AprioriDiscovery::new()
            .discover(&scored, &tight)
            .unwrap()
            .unwrap();
        let bf = BruteForceDiscovery::new()
            .discover(&scored, &concise)
            .unwrap()
            .unwrap();
        assert!((scored.preview_score(&ap) - scored.preview_score(&bf)).abs() < 1e-9);
    }
}
