//! Brute-force optimal preview discovery (Alg. 1).
//!
//! Enumerates every `k`-subset of eligible entity types, assembles the best
//! preview for each subset via Theorem 3, and keeps the highest-scoring one.
//! With a distance constraint, subsets whose key attributes violate the
//! pairwise bound are discarded before assembly. The worst-case cost is
//! `O(K·N·logN + C(K,k)·(k + n))`, exponential in `k` — the paper uses this
//! algorithm as the baseline that the DP and Apriori algorithms beat by orders
//! of magnitude (Figs. 8–9).
//!
//! The enumeration is decomposed by the subset's first (smallest) eligible
//! index: each first index scans its lexicographic suffix combinations
//! independently, so the groups fan out across the fork-join pool while the
//! index-ordered merge keeps the winner — and thus the output — byte-identical
//! to the one-loop sequential scan.

use crate::algo::common::{compute_preview, merge_best, space_is_empty, Combinations};
use crate::algo::PreviewDiscovery;
use crate::constraint::PreviewSpace;
use crate::error::Result;
use crate::par::FjPool;
use crate::preview::Preview;
use crate::scoring::ScoredSchema;

/// The brute-force algorithm (Alg. 1). Supports all three preview spaces.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceDiscovery;

impl BruteForceDiscovery {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl PreviewDiscovery for BruteForceDiscovery {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn discover_with_threads(
        &self,
        scored: &ScoredSchema,
        space: &PreviewSpace,
        threads: usize,
    ) -> Result<Option<Preview>> {
        let size = space.size();
        if space_is_empty(scored, size) {
            return Ok(None);
        }
        let distance_constraint = space.distance();
        let eligible = scored.eligible_types();
        let k = size.tables;
        // One work unit per first (smallest) subset index; together they
        // enumerate exactly the lexicographic order of the one-loop scan.
        let firsts: Vec<usize> = (0..=eligible.len() - k).collect();
        let per_first = FjPool::global().map(threads, &firsts, |_, &first| {
            let distances = scored.distances();
            let mut best: Option<(Preview, f64)> = None;
            let mut subset = Vec::with_capacity(k);
            for combo in Combinations::new(eligible.len() - first - 1, k - 1) {
                subset.clear();
                subset.push(eligible[first]);
                subset.extend(combo.iter().map(|&i| eligible[first + 1 + i]));
                if let Some(constraint) = distance_constraint {
                    let mut ok = true;
                    'pairs: for (i, &a) in subset.iter().enumerate() {
                        for &b in subset.iter().skip(i + 1) {
                            if !constraint.pair_ok(distances.distance(a, b)) {
                                ok = false;
                                break 'pairs;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                }
                if let Some((preview, score)) = compute_preview(scored, &subset, size) {
                    best = merge_best(best, Some((preview, score)));
                }
            }
            best
        });
        Ok(per_first
            .into_iter()
            .fold(None, merge_best)
            .map(|(preview, _)| preview))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::PreviewSpace;
    use crate::scoring::{ScoredSchema, ScoringConfig};
    use entity_graph::fixtures::{self, types};

    fn scored() -> ScoredSchema {
        let g = fixtures::figure1_graph();
        ScoredSchema::build(&g, &ScoringConfig::coverage()).unwrap()
    }

    #[test]
    fn concise_running_example_scores_84() {
        // Sec. 4's optimal concise preview for k=2, n=6 (coverage/coverage).
        let scored = scored();
        let space = PreviewSpace::concise(2, 6).unwrap();
        let preview = BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        assert!((scored.preview_score(&preview) - 84.0).abs() < 1e-9);
        let schema = scored.schema();
        let film = schema.type_by_name(types::FILM).unwrap();
        let actor = schema.type_by_name(types::FILM_ACTOR).unwrap();
        assert!(preview.has_key(film));
        assert!(preview.has_key(actor));
    }

    #[test]
    fn diverse_running_example_picks_award() {
        // Sec. 4: k=2, n=6, d=2 diverse preview keys are FILM and AWARD.
        let scored = scored();
        let space = PreviewSpace::diverse(2, 6, 2).unwrap();
        let preview = BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        let schema = scored.schema();
        assert!(preview.has_key(schema.type_by_name(types::FILM).unwrap()));
        assert!(preview.has_key(schema.type_by_name(types::AWARD).unwrap()));
        // FILM keeps all its five candidates, AWARD takes one: score
        // 4 * 18 + 3 * 2 = 78.
        assert!((scored.preview_score(&preview) - 78.0).abs() < 1e-9);
    }

    #[test]
    fn tight_constraint_is_enforced() {
        let scored = scored();
        let space = PreviewSpace::tight(3, 6, 2).unwrap();
        let preview = BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        assert!(space.contains(&preview, scored.distances()));
        // No three types of the Fig. 1 schema graph are pairwise adjacent, so
        // a tight preview with d = 1 and k = 3 does not exist.
        let infeasible = PreviewSpace::tight(3, 6, 1).unwrap();
        assert!(BruteForceDiscovery::new()
            .discover(&scored, &infeasible)
            .unwrap()
            .is_none());
    }

    #[test]
    fn too_many_tables_returns_none() {
        let scored = scored();
        let space = PreviewSpace::concise(10, 20).unwrap();
        assert!(BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
    }

    #[test]
    fn infeasible_distance_returns_none() {
        // The Fig. 1 schema graph has diameter 2; requiring pairwise distance
        // of at least 5 between three tables is infeasible.
        let scored = scored();
        let space = PreviewSpace::diverse(3, 6, 5).unwrap();
        assert!(BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
    }

    #[test]
    fn parallel_discovery_is_byte_identical_to_sequential() {
        let scored = scored();
        for space in [
            PreviewSpace::concise(2, 6).unwrap(),
            PreviewSpace::tight(3, 6, 2).unwrap(),
            PreviewSpace::diverse(2, 6, 2).unwrap(),
        ] {
            let sequential = BruteForceDiscovery::new()
                .discover_with_threads(&scored, &space, 1)
                .unwrap();
            for threads in [0, 2, 4, 16] {
                let parallel = BruteForceDiscovery::new()
                    .discover_with_threads(&scored, &space, threads)
                    .unwrap();
                assert_eq!(parallel, sequential, "threads={threads} {space:?}");
            }
        }
    }

    #[test]
    fn k_equals_one_picks_best_single_table() {
        let scored = scored();
        let space = PreviewSpace::concise(1, 3).unwrap();
        let preview = BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        // FILM with its top three candidates: 4 * (6 + 5 + 4) = 60.
        assert!((scored.preview_score(&preview) - 60.0).abs() < 1e-9);
        assert_eq!(preview.tables().len(), 1);
    }
}
