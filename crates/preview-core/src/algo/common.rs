//! Shared machinery of the discovery algorithms: Theorem-3 preview assembly
//! for a fixed set of key attributes, and k-subset enumeration.

use entity_graph::TypeId;

use crate::constraint::SizeConstraint;
use crate::preview::{NonKeyAttr, Preview, PreviewTable};
use crate::scoring::ScoredSchema;

/// Whether the preview space is trivially empty for `scored`, so every
/// algorithm must return `Ok(None)` without running.
///
/// Covers the degenerate corners the three algorithms historically disagreed
/// on: `k == 0` (a preview is non-empty by Def. 1; `SizeConstraint::new`
/// rejects it, but the fields are public and hand-built constraints reach the
/// algorithms), `n < k` (every table needs one non-key attribute, so no
/// preview fits the budget), and fewer eligible entity types than requested
/// tables.
pub(crate) fn space_is_empty(scored: &ScoredSchema, size: SizeConstraint) -> bool {
    size.tables == 0 || size.non_keys < size.tables || scored.eligible_types().len() < size.tables
}

/// Merges two scored candidates in index order, keeping the earlier one
/// unless the later is *strictly* better — exactly the tie-break of the
/// sequential enumeration loop. Earliest-strict-argmax is associative, so
/// per-chunk winners merged in chunk order equal the full sequential scan.
pub(crate) fn merge_best(
    earlier: Option<(Preview, f64)>,
    later: Option<(Preview, f64)>,
) -> Option<(Preview, f64)> {
    match (earlier, later) {
        (Some(a), Some(b)) => {
            if b.1 > a.1 {
                Some(b)
            } else {
                Some(a)
            }
        }
        (a, b) => a.or(b),
    }
}

/// Whether a freshly evaluated subset replaces the current incumbent under
/// the sequential enumeration's tie-break, for algorithms that do **not**
/// visit subsets in lexicographic order (best-first search pops by bound).
///
/// The sequential scan keeps the *first* subset in lexicographic order that
/// attains the maximum score ([`merge_best`] realizes this as
/// earliest-strict-argmax). Out of visit order, the same winner is the
/// lexicographically smallest max-scoring subset, so a candidate replaces the
/// incumbent iff it scores strictly higher, or ties the score with a
/// lexicographically smaller index subset.
pub(crate) fn replaces_incumbent(
    candidate_score: f64,
    candidate_subset: &[u32],
    incumbent_score: f64,
    incumbent_subset: &[u32],
) -> bool {
    candidate_score > incumbent_score
        || (candidate_score == incumbent_score && candidate_subset < incumbent_subset)
}

/// Assembles the best preview whose key attributes are exactly `subset`
/// (Alg. 1, lines 5–14; the `ComputePreview` routine of Alg. 3).
///
/// Following Theorem 3, every table takes its highest-scoring candidate
/// non-key attribute first; the remaining `n − k` attribute slots are filled
/// with the globally best remaining candidates weighted by
/// `S(τ) × Sτ(γ)`. Returns `None` if any key attribute has no candidate
/// non-key attribute (such a table would violate Def. 1).
pub(crate) fn compute_preview(
    scored: &ScoredSchema,
    subset: &[TypeId],
    size: SizeConstraint,
) -> Option<(Preview, f64)> {
    debug_assert_eq!(subset.len(), size.tables);
    let k = subset.len();
    let mut per_table: Vec<Vec<NonKeyAttr>> = Vec::with_capacity(k);
    let mut score = 0.0;

    // Mandatory top-1 candidate per table.
    for &ty in subset {
        let cands = scored.candidates(ty);
        let first = cands.first()?;
        per_table.push(vec![NonKeyAttr::new(first.edge, first.direction)]);
        score += scored.key_score(ty) * first.score;
    }

    // Remaining budget: globally best candidates weighted by key score.
    let remaining = size.non_keys.saturating_sub(k);
    if remaining > 0 {
        let mut pool: Vec<(f64, usize, usize)> = Vec::new();
        for (pos, &ty) in subset.iter().enumerate() {
            let key_score = scored.key_score(ty);
            for (cand_idx, cand) in scored.candidates(ty).iter().enumerate().skip(1) {
                pool.push((key_score * cand.score, pos, cand_idx));
            }
        }
        // Sort descending by weighted score; deterministic tie-break by table
        // position and candidate rank.
        pool.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("scores must not be NaN")
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        for &(weighted, pos, cand_idx) in pool.iter().take(remaining) {
            let cand = scored.candidates(subset[pos])[cand_idx];
            per_table[pos].push(NonKeyAttr::new(cand.edge, cand.direction));
            score += weighted;
        }
    }

    let tables = subset
        .iter()
        .zip(per_table)
        .map(|(&ty, non_keys)| PreviewTable::new(ty, non_keys))
        .collect();
    Some((Preview::new(tables), score))
}

/// Iterator over all `k`-subsets of `0..n`, yielded as index vectors in
/// lexicographic order. Used by the brute-force algorithm (Alg. 1, line 4).
pub(crate) struct Combinations {
    n: usize,
    k: usize,
    indices: Vec<usize>,
    started: bool,
    done: bool,
}

impl Combinations {
    pub(crate) fn new(n: usize, k: usize) -> Self {
        Self {
            n,
            k,
            indices: (0..k).collect(),
            started: false,
            done: k > n,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.k == 0 {
                self.done = true;
                return Some(Vec::new());
            }
            return Some(self.indices.clone());
        }
        // Advance to the next combination.
        let k = self.k;
        let n = self.n;
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return None;
            }
            i -= 1;
            if self.indices[i] != i + n - k {
                break;
            }
        }
        self.indices[i] += 1;
        for j in i + 1..k {
            self.indices[j] = self.indices[j - 1] + 1;
        }
        Some(self.indices.clone())
    }
}

/// Number of `k`-subsets of an `n`-set, saturating at `u128::MAX`.
pub(crate) fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::ScoringConfig;
    use entity_graph::fixtures::{self, types};

    #[test]
    fn combinations_enumerate_all_subsets() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ]
        );
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(3, 0).count(), 1);
        assert_eq!(Combinations::new(3, 3).count(), 1);
        assert_eq!(Combinations::new(3, 4).count(), 0);
        assert_eq!(Combinations::new(0, 0).count(), 1);
        assert_eq!(Combinations::new(6, 3).count(), 20);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(69, 6), 119_877_472);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(10, 0), 1);
    }

    #[test]
    fn compute_preview_reproduces_running_example() {
        // Sec. 4: coverage/coverage, k=2, n=6 with key attributes FILM and
        // FILM ACTOR yields score 84.
        let g = fixtures::figure1_graph();
        let scored = ScoredSchema::build(&g, &ScoringConfig::coverage()).unwrap();
        let schema = scored.schema();
        let film = schema.type_by_name(types::FILM).unwrap();
        let actor = schema.type_by_name(types::FILM_ACTOR).unwrap();
        let size = SizeConstraint::new(2, 6).unwrap();
        let (preview, score) = compute_preview(&scored, &[film, actor], size).unwrap();
        assert!((score - 84.0).abs() < 1e-9);
        assert_eq!(preview.tables().len(), 2);
        assert_eq!(preview.non_key_count(), 6);
        assert!((scored.preview_score(&preview) - score).abs() < 1e-9);
    }

    #[test]
    fn compute_preview_caps_at_available_candidates() {
        let g = fixtures::figure1_graph();
        let scored = ScoredSchema::build(&g, &ScoringConfig::coverage()).unwrap();
        let schema = scored.schema();
        let award = schema.type_by_name(types::AWARD).unwrap();
        let size = SizeConstraint::new(1, 10).unwrap();
        let (preview, _) = compute_preview(&scored, &[award], size).unwrap();
        // AWARD only has two incident relationship types.
        assert_eq!(preview.non_key_count(), 2);
    }

    #[test]
    fn compute_preview_rejects_type_without_candidates() {
        use entity_graph::EntityGraphBuilder;
        let mut b = EntityGraphBuilder::new();
        let a = b.entity_type("A");
        let iso = b.entity_type("ISOLATED");
        let c = b.entity_type("B");
        let r = b.relationship_type("r", a, c);
        let x = b.entity("x", &[a]);
        let y = b.entity("y", &[c]);
        let _z = b.entity("z", &[iso]);
        b.edge(x, r, y).unwrap();
        let g = b.build();
        let scored = ScoredSchema::build(&g, &ScoringConfig::coverage()).unwrap();
        let iso_ty = scored.schema().type_by_name("ISOLATED").unwrap();
        let size = SizeConstraint::new(1, 2).unwrap();
        assert!(compute_preview(&scored, &[iso_ty], size).is_none());
    }
}
