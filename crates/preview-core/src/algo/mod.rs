//! Optimal preview discovery algorithms (Sec. 5 of the paper).
//!
//! Four algorithms implement the common [`PreviewDiscovery`] trait:
//!
//! | Algorithm | Paper | Supported spaces | Complexity |
//! |---|---|---|---|
//! | [`BruteForceDiscovery`] | Alg. 1 | concise, tight, diverse | exponential in `k` |
//! | [`DynamicProgrammingDiscovery`] | Alg. 2 | concise | `O(K·N·logN + K·k·n²)` |
//! | [`AprioriDiscovery`] | Alg. 3 | tight, diverse | exponential worst case, fast in practice |
//! | [`BestFirstDiscovery`] | — (this work) | concise, tight, diverse | best-first branch-and-bound: exact with admissible-bound pruning, anytime under a budget |
//!
//! All algorithms consume a pre-computed [`ScoredSchema`]
//! and return an optimal [`Preview`] (or `None` when the
//! constraint is infeasible, e.g. more tables requested than eligible entity
//! types, or no `k` types satisfy the distance constraint).

pub(crate) mod common;

pub mod bound;

mod apriori;
mod best_first;
mod brute_force;
mod dynamic_programming;

pub use apriori::AprioriDiscovery;
pub use best_first::{AnytimeBudget, AnytimeOutcome, BestFirstDiscovery, SearchStats};
pub use brute_force::BruteForceDiscovery;
pub use dynamic_programming::DynamicProgrammingDiscovery;

use crate::constraint::PreviewSpace;
use crate::error::Result;
use crate::preview::Preview;
use crate::scoring::ScoredSchema;

/// Common interface of the optimal preview discovery algorithms.
pub trait PreviewDiscovery {
    /// A short, stable identifier (used in benchmark and experiment output).
    fn name(&self) -> &'static str;

    /// Finds an optimal preview in the given space.
    ///
    /// Returns `Ok(None)` when the space is empty (no preview satisfies the
    /// constraints) and an error when the algorithm does not support the
    /// requested space (e.g. dynamic programming with a distance constraint).
    ///
    /// Uses the thread budget of the schema's
    /// [`ScoringConfig`](crate::ScoringConfig); see
    /// [`discover_with_threads`](Self::discover_with_threads) for an explicit
    /// override.
    fn discover(&self, scored: &ScoredSchema, space: &PreviewSpace) -> Result<Option<Preview>> {
        self.discover_with_threads(scored, space, scored.config().threads)
    }

    /// Like [`discover`](Self::discover) with an explicit fork-join thread
    /// budget (`0` = auto, `1` = sequential; see [`crate::par`]).
    ///
    /// The budget only affects wall-clock time: every implementation merges
    /// its parallel reductions in index order, so the returned preview is
    /// byte-identical across all `threads` values.
    fn discover_with_threads(
        &self,
        scored: &ScoredSchema,
        space: &PreviewSpace,
        threads: usize,
    ) -> Result<Option<Preview>>;
}

/// Number of `k`-subsets the brute-force algorithm would enumerate for a
/// schema with `eligible_types` candidate key attributes — useful for deciding
/// whether a brute-force run is feasible (the experiment harness extrapolates
/// instead of running the brute force when this is too large).
pub fn brute_force_subset_count(eligible_types: usize, k: usize) -> u128 {
    common::binomial(eligible_types, k)
}

/// Assembles the best preview whose key attributes are exactly `subset`,
/// together with its score, following Theorem 3 — the `ComputePreview`
/// routine every algorithm shares.
///
/// Returns `None` when any type in `subset` has no candidate non-key
/// attribute, or when the subset size does not match `space`'s table count.
/// Exposed so out-of-crate harnesses (the bound-admissibility property test,
/// `anytime-bench`) can score explicit subsets against algorithm output.
pub fn best_preview_for_subset(
    scored: &ScoredSchema,
    subset: &[entity_graph::TypeId],
    space: &PreviewSpace,
) -> Option<(Preview, f64)> {
    let size = space.size();
    if subset.len() != size.tables {
        return None;
    }
    common::compute_preview(scored, subset, size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{ScoredSchema, ScoringConfig};
    use entity_graph::fixtures;

    #[test]
    fn algorithms_expose_stable_names() {
        assert_eq!(BruteForceDiscovery::new().name(), "brute-force");
        assert_eq!(
            DynamicProgrammingDiscovery::new().name(),
            "dynamic-programming"
        );
        assert_eq!(AprioriDiscovery::new().name(), "apriori");
        assert_eq!(BestFirstDiscovery::new().name(), "best-first");
    }

    #[test]
    fn trait_objects_are_usable() {
        let g = fixtures::figure1_graph();
        let scored = ScoredSchema::build(&g, &ScoringConfig::coverage()).unwrap();
        let space = PreviewSpace::concise(2, 6).unwrap();
        let algorithms: Vec<Box<dyn PreviewDiscovery>> = vec![
            Box::new(BruteForceDiscovery::new()),
            Box::new(DynamicProgrammingDiscovery::new()),
            Box::new(BestFirstDiscovery::new()),
        ];
        for algo in &algorithms {
            let preview = algo.discover(&scored, &space).unwrap().unwrap();
            assert!((scored.preview_score(&preview) - 84.0).abs() < 1e-9);
        }
    }

    #[test]
    fn subset_count_helper() {
        assert_eq!(brute_force_subset_count(69, 6), 119_877_472);
        assert_eq!(brute_force_subset_count(6, 5), 6);
    }
}
