//! Error types for preview discovery.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by scoring or preview discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A size or distance constraint is structurally invalid (e.g. `k = 0` or
    /// `n < k`).
    InvalidConstraint {
        /// Description of the violated requirement.
        message: String,
    },
    /// The scoring configuration cannot be evaluated on the given input
    /// (e.g. random-walk scoring failed to converge).
    Scoring {
        /// Description of the problem.
        message: String,
    },
}

impl Error {
    pub(crate) fn invalid_constraint(message: impl Into<String>) -> Self {
        Error::InvalidConstraint {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConstraint { message } => write!(f, "invalid constraint: {message}"),
            Error::Scoring { message } => write!(f, "scoring error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::invalid_constraint("k must be at least 1");
        assert!(e.to_string().contains("k must be at least 1"));
        let e = Error::Scoring {
            message: "power iteration diverged".into(),
        };
        assert!(e.to_string().contains("power iteration"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_: &E) {}
        takes_error(&Error::invalid_constraint("x"));
    }
}
