//! Candidate non-key attribute lists (Theorem 3).
//!
//! For every entity type `τ`, the candidate non-key attributes of a preview
//! table keyed on `τ` are the relationship types incident on `τ` in the schema
//! graph, in either orientation. Theorem 3 states that the non-key attributes
//! of a table in an *optimal* preview are always the top-`m` candidates by
//! score; every discovery algorithm therefore works off the per-type candidate
//! lists sorted by descending score that this module produces.

use entity_graph::{Direction, SchemaGraph, TypeId};
use serde::{Deserialize, Serialize};

/// One candidate non-key attribute of a preview table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Index of the schema edge (relationship type).
    pub edge: usize,
    /// Orientation relative to the key attribute.
    pub direction: Direction,
    /// The non-key attribute score `Sτ(γ)` for this orientation.
    pub score: f64,
}

/// Builds, for each entity type, the list of candidate non-key attributes
/// sorted by descending score.
///
/// `outgoing[e]` / `incoming[e]` give the non-key attribute score of schema
/// edge `e` when the key attribute is the edge's source / destination type.
/// Ties are broken deterministically by edge index, outgoing before incoming.
pub fn candidate_lists(
    schema: &SchemaGraph,
    outgoing: &[f64],
    incoming: &[f64],
) -> Vec<Vec<Candidate>> {
    let mut lists: Vec<Vec<Candidate>> = vec![Vec::new(); schema.type_count()];
    for (idx, edge) in schema.edges().iter().enumerate() {
        lists[edge.src.index()].push(Candidate {
            edge: idx,
            direction: Direction::Outgoing,
            score: outgoing[idx],
        });
        lists[edge.dst.index()].push(Candidate {
            edge: idx,
            direction: Direction::Incoming,
            score: incoming[idx],
        });
    }
    for list in &mut lists {
        list.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("candidate scores must not be NaN")
                .then_with(|| a.edge.cmp(&b.edge))
                .then_with(|| direction_rank(a.direction).cmp(&direction_rank(b.direction)))
        });
    }
    lists
}

fn direction_rank(d: Direction) -> u8 {
    match d {
        Direction::Outgoing => 0,
        Direction::Incoming => 1,
    }
}

/// Prefix sums over each sorted candidate list: `prefix[τ][m]` is the sum of
/// the top-`m` candidate scores of type `τ` (with `prefix[τ][0] = 0`).
///
/// Used by the dynamic-programming algorithm to evaluate
/// `S(τ) × Σ top-m scores` in O(1).
pub fn prefix_sums(candidates: &[Vec<Candidate>]) -> Vec<Vec<f64>> {
    candidates
        .iter()
        .map(|list| {
            let mut sums = Vec::with_capacity(list.len() + 1);
            sums.push(0.0);
            let mut acc = 0.0;
            for c in list {
                acc += c.score;
                sums.push(acc);
            }
            sums
        })
        .collect()
}

/// The entity types that can serve as key attributes: those with at least one
/// candidate non-key attribute (Def. 1 requires every preview table to have a
/// non-key attribute).
pub fn eligible_types(candidates: &[Vec<Candidate>]) -> Vec<TypeId> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, list)| !list.is_empty())
        .map(|(i, _)| TypeId::from_usize(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_graph::fixtures::{self, types};

    fn figure1_candidates() -> (SchemaGraph, Vec<Vec<Candidate>>) {
        let g = fixtures::figure1_graph();
        let s = g.schema_graph().clone();
        let coverage = crate::scoring::nonkey::coverage_scores(&s);
        let lists = candidate_lists(&s, &coverage, &coverage);
        (s, lists)
    }

    #[test]
    fn film_candidates_sorted_by_coverage() {
        let (s, lists) = figure1_candidates();
        let film = s.type_by_name(types::FILM).unwrap();
        let film_list = &lists[film.index()];
        // FILM is incident to Actor(6), Genres(5), Director(4), Producer(2),
        // Executive Producer(1): five candidates in this order.
        assert_eq!(film_list.len(), 5);
        let names: Vec<&str> = film_list
            .iter()
            .map(|c| s.edge(c.edge).name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "Actor",
                "Genres",
                "Director",
                "Producer",
                "Executive Producer"
            ]
        );
        let scores: Vec<f64> = film_list.iter().map(|c| c.score).collect();
        assert_eq!(scores, vec![6.0, 5.0, 4.0, 2.0, 1.0]);
    }

    #[test]
    fn directions_are_relative_to_key() {
        let (s, lists) = figure1_candidates();
        let film = s.type_by_name(types::FILM).unwrap();
        let genre = s.type_by_name(types::FILM_GENRE).unwrap();
        // From FILM, "Genres" is outgoing; from FILM GENRE it is incoming.
        let from_film = lists[film.index()]
            .iter()
            .find(|c| s.edge(c.edge).name == "Genres")
            .unwrap();
        assert_eq!(from_film.direction, Direction::Outgoing);
        let from_genre = lists[genre.index()]
            .iter()
            .find(|c| s.edge(c.edge).name == "Genres")
            .unwrap();
        assert_eq!(from_genre.direction, Direction::Incoming);
    }

    #[test]
    fn award_has_two_candidates() {
        let (s, lists) = figure1_candidates();
        let award = s.type_by_name(types::AWARD).unwrap();
        assert_eq!(lists[award.index()].len(), 2);
    }

    #[test]
    fn prefix_sums_accumulate() {
        let (s, lists) = figure1_candidates();
        let film = s.type_by_name(types::FILM).unwrap();
        let sums = prefix_sums(&lists);
        let film_sums = &sums[film.index()];
        assert_eq!(film_sums, &vec![0.0, 6.0, 11.0, 15.0, 17.0, 18.0]);
    }

    #[test]
    fn all_figure1_types_are_eligible() {
        let (s, lists) = figure1_candidates();
        assert_eq!(eligible_types(&lists).len(), s.type_count());
    }

    #[test]
    fn isolated_type_is_not_eligible() {
        use entity_graph::EntityGraphBuilder;
        let mut b = EntityGraphBuilder::new();
        let a = b.entity_type("A");
        let iso = b.entity_type("ISOLATED");
        let c = b.entity_type("B");
        let r = b.relationship_type("r", a, c);
        let x = b.entity("x", &[a]);
        let y = b.entity("y", &[c]);
        let _z = b.entity("z", &[iso]);
        b.edge(x, r, y).unwrap();
        let g = b.build();
        let s = g.schema_graph();
        let coverage = crate::scoring::nonkey::coverage_scores(s);
        let lists = candidate_lists(s, &coverage, &coverage);
        let eligible = eligible_types(&lists);
        assert_eq!(eligible.len(), 2);
        assert!(!eligible.contains(&s.type_by_name("ISOLATED").unwrap()));
    }

    #[test]
    fn self_loop_contributes_both_orientations() {
        use entity_graph::EntityGraphBuilder;
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let sequel = b.relationship_type("Sequel", film, film);
        let f1 = b.entity("f1", &[film]);
        let f2 = b.entity("f2", &[film]);
        b.edge(f1, sequel, f2).unwrap();
        let g = b.build();
        let s = g.schema_graph();
        let coverage = crate::scoring::nonkey::coverage_scores(s);
        let lists = candidate_lists(s, &coverage, &coverage);
        let film_s = s.type_by_name("FILM").unwrap();
        assert_eq!(lists[film_s.index()].len(), 2);
    }
}
