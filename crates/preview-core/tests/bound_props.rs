//! Property test for the branch-and-bound admissibility invariant: on random
//! graphs, spaces and prefixes, the upper bound computed by
//! [`BoundContext::upper_bound`] dominates the true preview score of **every**
//! feasible completion of the prefix (brute-force enumerated — the spaces are
//! kept small enough to check them all). This is the property that makes the
//! best-first search exact: an inadmissible bound could prune the optimum.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use entity_graph::{EntityGraph, EntityGraphBuilder};
use preview_core::algo::bound::BoundContext;
use preview_core::{
    best_preview_for_subset, KeyScoring, NonKeyScoring, PreviewSpace, ScoredSchema, ScoringConfig,
};

/// A small random multigraph (same shape as the cross-algorithm agreement
/// suite): a handful of types and entities, random well-typed edges.
fn random_graph(seed: u64, types: usize, rel_types: usize, edges: usize) -> EntityGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = EntityGraphBuilder::new();
    let type_ids: Vec<_> = (0..types)
        .map(|t| builder.entity_type(&format!("T{t}")))
        .collect();
    let entities: Vec<Vec<_>> = type_ids
        .iter()
        .map(|&ty| {
            let count = rng.gen_range(1..5);
            (0..count)
                .map(|e| builder.entity(&format!("e{ty:?}-{e}"), &[ty]))
                .collect()
        })
        .collect();
    let rels: Vec<(_, usize, usize)> = (0..rel_types)
        .map(|r| {
            let src = rng.gen_range(0..types);
            let dst = rng.gen_range(0..types);
            (
                builder.relationship_type(&format!("r{r}"), type_ids[src], type_ids[dst]),
                src,
                dst,
            )
        })
        .collect();
    for _ in 0..edges {
        let &(rel, src, dst) = &rels[rng.gen_range(0..rels.len())];
        let s = entities[src][rng.gen_range(0..entities[src].len())];
        let d = entities[dst][rng.gen_range(0..entities[dst].len())];
        builder.edge(s, rel, d).expect("well-typed edge");
    }
    builder.build()
}

/// Calls `check` with every size-`need` combination of `feasible` whose
/// members are pairwise compatible under `ctx` (compatibility against the
/// prefix is already guaranteed by the feasible-extension set).
fn for_each_feasible_completion(
    ctx: &BoundContext<'_>,
    feasible: &[u32],
    need: usize,
    chosen: &mut Vec<u32>,
    start: usize,
    check: &mut dyn FnMut(&[u32]),
) {
    if chosen.len() == need {
        check(chosen);
        return;
    }
    for pos in start..feasible.len() {
        let j = feasible[pos];
        if chosen.iter().all(|&c| ctx.pair_ok(c, j)) {
            chosen.push(j);
            for_each_feasible_completion(ctx, feasible, need, chosen, pos + 1, check);
            chosen.pop();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every prefix of every feasible subset shape: the bound dominates
    /// the exact score of each feasible completion, and when the prefix has
    /// no completion the bound is `None` only if the feasible set is truly
    /// too small.
    #[test]
    fn bound_dominates_every_feasible_completion(
        seed in 0u64..2_000,
        types in 3usize..7,
        k in 1usize..4,
        extra in 0usize..3,
        space_kind in 0u8..3,
        d in 1u32..4,
        entropy in proptest::bool::ANY,
    ) {
        let graph = random_graph(seed, types, 1 + (seed as usize % 6), 35);
        let config = if entropy {
            ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy)
        } else {
            ScoringConfig::coverage()
        };
        let scored = ScoredSchema::build(&graph, &config).unwrap();
        let space = match space_kind {
            0 => PreviewSpace::concise(k, k + extra).unwrap(),
            1 => PreviewSpace::tight(k, k + extra, d).unwrap(),
            _ => PreviewSpace::diverse(k, k + extra, d).unwrap(),
        };
        let ctx = BoundContext::new(&scored, &space);
        let eligible = scored.eligible_types();

        // Every strictly increasing prefix of length < k over the eligible
        // indices, enumerated the same way the search grows them: start from
        // the empty prefix and extend through the feasible-extension sets.
        let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
        while let Some(prefix) = stack.pop() {
            let feasible = ctx.feasible_extensions(&prefix);
            let need = k - prefix.len();
            let bound = ctx.upper_bound(&prefix, &feasible);
            if feasible.len() < need {
                prop_assert!(
                    bound.is_none(),
                    "prefix {prefix:?}: bound must be None when no completion exists"
                );
                continue;
            }
            let mut chosen = Vec::with_capacity(need);
            let mut violations: Vec<String> = Vec::new();
            for_each_feasible_completion(&ctx, &feasible, need, &mut chosen, 0, &mut |completion| {
                let subset: Vec<_> = prefix
                    .iter()
                    .chain(completion)
                    .map(|&i| eligible[i as usize])
                    .collect();
                if let Some((_, score)) = best_preview_for_subset(&scored, &subset, &space) {
                    match bound {
                        None => violations.push(format!(
                            "prefix {prefix:?} completion {completion:?}: \
                             bound None but completion scores {score}"
                        )),
                        Some(bound) if bound < score => violations.push(format!(
                            "prefix {prefix:?} completion {completion:?}: \
                             bound {bound} < score {score}"
                        )),
                        Some(_) => {}
                    }
                }
            });
            prop_assert!(violations.is_empty(), "{}", violations.join("\n"));
            // Grow the prefix one level (children of this node).
            if prefix.len() + 1 < k {
                for &j in &feasible {
                    let mut child = prefix.clone();
                    child.push(j);
                    stack.push(child);
                }
            }
        }
    }
}
