//! Cross-algorithm agreement: the exact discovery algorithms are optimizers
//! over the same space, so on any graph they must agree on feasibility and
//! on the optimal score — including the degenerate corners (`k == 0`,
//! `n < k`, empty eligible sets, `k == 1` under a tight bound) where they
//! historically diverged: the brute force assembled previews that violated
//! Def. 1 (zero tables, or one mandatory non-key attribute per table
//! overflowing `n`) while the Apriori join returned nothing. Best-first
//! branch-and-bound additionally claims *bitwise* identity with the brute
//! force (same earliest-strict-argmax tie-break), asserted below.

use preview_core::{
    AnytimeBudget, AprioriDiscovery, BestFirstDiscovery, BruteForceDiscovery,
    DynamicProgrammingDiscovery, KeyScoring, NonKeyScoring, PreviewDiscovery, PreviewSpace,
    ScoredSchema, ScoringConfig, SizeConstraint,
};

use entity_graph::{EntityGraph, EntityGraphBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small random multigraph: `types` entity types, a few entities each,
/// `rel_types` relationship types between random type pairs, `edges` random
/// well-typed edges.
fn random_graph(seed: u64, types: usize, rel_types: usize, edges: usize) -> EntityGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = EntityGraphBuilder::new();
    let type_ids: Vec<_> = (0..types)
        .map(|t| builder.entity_type(&format!("T{t}")))
        .collect();
    let entities: Vec<Vec<_>> = type_ids
        .iter()
        .map(|&ty| {
            let count = rng.gen_range(1..5);
            (0..count)
                .map(|e| builder.entity(&format!("e{ty:?}-{e}"), &[ty]))
                .collect()
        })
        .collect();
    let rels: Vec<(_, usize, usize)> = (0..rel_types)
        .map(|r| {
            let src = rng.gen_range(0..types);
            let dst = rng.gen_range(0..types);
            (
                builder.relationship_type(&format!("r{r}"), type_ids[src], type_ids[dst]),
                src,
                dst,
            )
        })
        .collect();
    for _ in 0..edges {
        let &(rel, src, dst) = &rels[rng.gen_range(0..rels.len())];
        let s = entities[src][rng.gen_range(0..entities[src].len())];
        let d = entities[dst][rng.gen_range(0..entities[dst].len())];
        builder.edge(s, rel, d).expect("well-typed edge");
    }
    builder.build()
}

/// Asserts two exact algorithms agree on feasibility and optimal score.
fn assert_agree(
    scored: &ScoredSchema,
    space: &PreviewSpace,
    a: &dyn PreviewDiscovery,
    b: &dyn PreviewDiscovery,
    context: &str,
) {
    let pa = a.discover(scored, space).unwrap();
    let pb = b.discover(scored, space).unwrap();
    match (pa, pb) {
        (Some(pa), Some(pb)) => {
            let sa = scored.preview_score(&pa);
            let sb = scored.preview_score(&pb);
            assert!(
                (sa - sb).abs() < 1e-9 * (1.0 + sb.abs()),
                "{context}: {} found {sa}, {} found {sb}",
                a.name(),
                b.name()
            );
            assert!(space.contains(&pa, scored.distances()), "{context}");
            assert!(space.contains(&pb, scored.distances()), "{context}");
        }
        (None, None) => {}
        (pa, pb) => panic!(
            "{context}: {} feasible={}, {} feasible={}",
            a.name(),
            pa.is_some(),
            b.name(),
            pb.is_some()
        ),
    }
}

/// Asserts best-first output is *bitwise* identical to the brute force:
/// identical preview structure and identical score bits, not just an
/// epsilon-close score.
fn assert_bitwise_matches_brute_force(scored: &ScoredSchema, space: &PreviewSpace, context: &str) {
    let bf = BruteForceDiscovery::new().discover(scored, space).unwrap();
    let best = BestFirstDiscovery::new().discover(scored, space).unwrap();
    match (bf, best) {
        (None, None) => {}
        (Some(bf), Some(best)) => {
            assert_eq!(bf, best, "{context}: preview diverged");
            assert_eq!(
                scored.preview_score(&bf).to_bits(),
                scored.preview_score(&best).to_bits(),
                "{context}: score bits diverged"
            );
        }
        (bf, best) => panic!(
            "{context}: feasibility diverged (brute-force={}, best-first={})",
            bf.is_some(),
            best.is_some()
        ),
    }
}

#[test]
fn algorithms_agree_on_small_random_graphs() {
    let configs = [
        ScoringConfig::coverage(),
        ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Entropy),
    ];
    for seed in 0..24u64 {
        let graph = random_graph(seed, 2 + (seed as usize % 5), 1 + (seed as usize % 7), 40);
        for config in &configs {
            let scored = ScoredSchema::build(&graph, config).unwrap();
            for k in 1..=3usize {
                for n in k..=(k + 3) {
                    let concise = PreviewSpace::concise(k, n).unwrap();
                    assert_agree(
                        &scored,
                        &concise,
                        &DynamicProgrammingDiscovery::new(),
                        &BruteForceDiscovery::new(),
                        &format!("seed={seed} k={k} n={n} concise"),
                    );
                    assert_bitwise_matches_brute_force(
                        &scored,
                        &concise,
                        &format!("seed={seed} k={k} n={n} concise"),
                    );
                    for d in 1..=3u32 {
                        for space in [
                            PreviewSpace::tight(k, n, d).unwrap(),
                            PreviewSpace::diverse(k, n, d).unwrap(),
                        ] {
                            assert_agree(
                                &scored,
                                &space,
                                &AprioriDiscovery::new(),
                                &BruteForceDiscovery::new(),
                                &format!("seed={seed} k={k} n={n} d={d} {space:?}"),
                            );
                            assert_bitwise_matches_brute_force(
                                &scored,
                                &space,
                                &format!("seed={seed} k={k} n={n} d={d} {space:?}"),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// All algorithms must treat a zero-table constraint as an empty space.
///
/// `SizeConstraint::new` rejects `k == 0`, but the fields are public, so
/// hand-built (or deserialized) constraints still reach the algorithms.
/// Pre-fix, the brute force and the DP returned `Some` zero-table preview —
/// not a member of any space per Def. 1 — while Apriori returned `None`.
#[test]
fn zero_table_constraint_is_an_empty_space_for_every_algorithm() {
    let graph = entity_graph::fixtures::figure1_graph();
    let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
    let size = SizeConstraint {
        tables: 0,
        non_keys: 0,
    };
    assert!(BruteForceDiscovery::new()
        .discover(&scored, &PreviewSpace::Concise(size))
        .unwrap()
        .is_none());
    assert!(DynamicProgrammingDiscovery::new()
        .discover(&scored, &PreviewSpace::Concise(size))
        .unwrap()
        .is_none());
    assert!(BestFirstDiscovery::new()
        .discover(&scored, &PreviewSpace::Concise(size))
        .unwrap()
        .is_none());
    for space in [PreviewSpace::Tight(size, 1), PreviewSpace::Diverse(size, 1)] {
        assert!(BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
        assert!(AprioriDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
        assert!(BestFirstDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
    }
}

/// With `n < k` some table must go without a non-key attribute, violating
/// Def. 1: the space is empty. Pre-fix the brute force still assembled a
/// preview carrying `k > n` non-key attributes.
#[test]
fn overfull_table_budget_is_an_empty_space_for_every_algorithm() {
    let graph = entity_graph::fixtures::figure1_graph();
    let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
    let size = SizeConstraint {
        tables: 3,
        non_keys: 2,
    };
    assert!(BruteForceDiscovery::new()
        .discover(&scored, &PreviewSpace::Concise(size))
        .unwrap()
        .is_none());
    assert!(DynamicProgrammingDiscovery::new()
        .discover(&scored, &PreviewSpace::Concise(size))
        .unwrap()
        .is_none());
    assert!(BestFirstDiscovery::new()
        .discover(&scored, &PreviewSpace::Concise(size))
        .unwrap()
        .is_none());
    for space in [
        PreviewSpace::Tight(size, 10),
        PreviewSpace::Diverse(size, 1),
    ] {
        assert!(BruteForceDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
        assert!(AprioriDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
        assert!(BestFirstDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .is_none());
    }
}

/// A graph with no edges has no eligible key attributes: every algorithm
/// reports the space empty at any `k`, including `k == 1` under a tight
/// constraint (where Apriori skips its pair-join entirely).
#[test]
fn empty_eligible_set_is_an_empty_space_for_every_algorithm() {
    let mut builder = EntityGraphBuilder::new();
    let a = builder.entity_type("A");
    let b = builder.entity_type("B");
    builder.entity("x", &[a]);
    builder.entity("y", &[b]);
    let graph = builder.build();
    let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
    assert!(scored.eligible_types().is_empty());
    for k in 1..=2usize {
        let concise = PreviewSpace::concise(k, k + 1).unwrap();
        assert!(BruteForceDiscovery::new()
            .discover(&scored, &concise)
            .unwrap()
            .is_none());
        assert!(DynamicProgrammingDiscovery::new()
            .discover(&scored, &concise)
            .unwrap()
            .is_none());
        assert!(BestFirstDiscovery::new()
            .discover(&scored, &concise)
            .unwrap()
            .is_none());
        let tight = PreviewSpace::tight(k, k + 1, 1).unwrap();
        assert!(BruteForceDiscovery::new()
            .discover(&scored, &tight)
            .unwrap()
            .is_none());
        assert!(AprioriDiscovery::new()
            .discover(&scored, &tight)
            .unwrap()
            .is_none());
        assert!(BestFirstDiscovery::new()
            .discover(&scored, &tight)
            .unwrap()
            .is_none());
    }
}

/// The anytime path is the same search: under an unlimited budget it proves
/// optimality and returns a preview bitwise identical to [`discover`]
/// (and hence to the brute force); under shrinking node budgets the
/// incumbent score never increases past the optimum and the reported upper
/// bound always dominates the exact optimum.
///
/// [`discover`]: PreviewDiscovery::discover
#[test]
fn anytime_agrees_with_exact_discovery_on_random_graphs() {
    for seed in 0..6u64 {
        let graph = random_graph(seed, 3 + (seed as usize % 4), 2 + (seed as usize % 5), 40);
        let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
        for space in [
            PreviewSpace::concise(2, 4).unwrap(),
            PreviewSpace::diverse(2, 4, 2).unwrap(),
        ] {
            let exact = BestFirstDiscovery::new().discover(&scored, &space).unwrap();
            let unlimited = BestFirstDiscovery::new()
                .discover_anytime(&scored, &space, AnytimeBudget::UNLIMITED)
                .unwrap();
            assert!(unlimited.exact, "seed={seed}: unlimited budget must prove");
            assert_eq!(unlimited.optimality_gap(), 0.0);
            assert_eq!(exact, unlimited.preview, "seed={seed}: preview diverged");
            let Some(exact) = exact else { continue };
            let exact_score = scored.preview_score(&exact);
            for budget in [0, 1, 2, 4, 8, 64] {
                let outcome = BestFirstDiscovery::new()
                    .discover_anytime(&scored, &space, AnytimeBudget::nodes(budget))
                    .unwrap();
                assert!(
                    outcome.score <= exact_score,
                    "seed={seed} budget={budget}: incumbent beat the optimum"
                );
                assert!(
                    outcome.upper_bound >= exact_score,
                    "seed={seed} budget={budget}: upper bound {} below optimum {exact_score}",
                    outcome.upper_bound
                );
                if outcome.exact {
                    assert_eq!(
                        outcome.score.to_bits(),
                        exact_score.to_bits(),
                        "seed={seed} budget={budget}: proved but not optimal"
                    );
                }
            }
        }
    }
}
