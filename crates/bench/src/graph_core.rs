//! Graph-core micro-workloads: the CSR storage layer versus a naive
//! `Vec<Vec<_>>`-era reference on a datagen graph.
//!
//! The naive functions reproduce the pre-CSR implementation of
//! `EntityGraph::neighbors_via` — scan the entity's edge list, filter by
//! relationship type, collect, sort, dedup, allocate — so the `graph-bench`
//! binary and the `graph_core` Criterion bench can quantify what the flat,
//! pre-grouped representation buys on the scoring and materialisation hot
//! paths, and CI can fail if the gap regresses.

use entity_graph::{Direction, EntityGraph, EntityId, SchemaGraph};
use preview_core::{Preview, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig};

/// The pre-CSR `neighbors_via`: per-call scan + filter + sort + dedup into a
/// fresh allocation.
pub fn naive_neighbors_via(
    graph: &EntityGraph,
    entity: EntityId,
    rel: entity_graph::RelTypeId,
    direction: Direction,
) -> Vec<EntityId> {
    let edge_ids = match direction {
        Direction::Outgoing => graph.out_edges(entity),
        Direction::Incoming => graph.in_edges(entity),
    };
    let mut out: Vec<EntityId> = edge_ids
        .iter()
        .map(|&eid| graph.edge(eid))
        .filter(|e| e.rel == rel)
        .map(|e| match direction {
            Direction::Outgoing => e.dst,
            Direction::Incoming => e.src,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Sweeps every (entity of key type, relationship type, direction)
/// combination the entropy scorer visits, using the zero-alloc CSR lookup.
/// Returns (total neighbor references, XOR checksum) so the work cannot be
/// optimised away.
pub fn csr_neighbor_sweep(graph: &EntityGraph, schema: &SchemaGraph) -> (u64, u64) {
    let mut total = 0u64;
    let mut checksum = 0u64;
    for edge in schema.edges() {
        for direction in [Direction::Outgoing, Direction::Incoming] {
            let key_type = match direction {
                Direction::Outgoing => edge.src,
                Direction::Incoming => edge.dst,
            };
            for &entity in graph.entities_of_type(key_type) {
                let value = graph.neighbors_via(entity, edge.rel, direction);
                total += value.len() as u64;
                for &n in value {
                    checksum ^= u64::from(n.raw()).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
            }
        }
    }
    (total, checksum)
}

/// The same sweep through the naive per-call implementation.
pub fn naive_neighbor_sweep(graph: &EntityGraph, schema: &SchemaGraph) -> (u64, u64) {
    let mut total = 0u64;
    let mut checksum = 0u64;
    for edge in schema.edges() {
        for direction in [Direction::Outgoing, Direction::Incoming] {
            let key_type = match direction {
                Direction::Outgoing => edge.src,
                Direction::Incoming => edge.dst,
            };
            for &entity in graph.entities_of_type(key_type) {
                let value = naive_neighbors_via(graph, entity, edge.rel, direction);
                total += value.len() as u64;
                for &n in &value {
                    checksum ^= u64::from(n.raw()).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
            }
        }
    }
    (total, checksum)
}

/// Entropy scoring through the public (CSR-backed) pipeline.
pub fn csr_entropy_scores(graph: &EntityGraph, schema: &SchemaGraph) -> (Vec<f64>, Vec<f64>) {
    preview_core::scoring::entropy_scores(graph, schema)
}

/// Entropy scoring where every attribute value is fetched through the naive
/// per-call implementation — the pre-CSR *fetch* path. The final summation
/// uses the current sorted-count order (the pre-CSR code summed in randomized
/// HashMap order and drifted by ulps run to run), so the scores are bitwise
/// comparable with [`csr_entropy_scores`]: the cross-check proves fetch-path
/// equivalence, and the timing difference isolates the neighbor-access cost.
pub fn naive_entropy_scores(graph: &EntityGraph, schema: &SchemaGraph) -> (Vec<f64>, Vec<f64>) {
    use std::collections::HashMap;
    let orientation = |rel_name: &str,
                       src: entity_graph::TypeId,
                       dst: entity_graph::TypeId,
                       direction: Direction|
     -> f64 {
        let (src_in_graph, dst_in_graph) = match (
            graph.type_by_name(schema.type_name(src)),
            graph.type_by_name(schema.type_name(dst)),
        ) {
            (Some(s), Some(d)) => (s, d),
            _ => return 0.0,
        };
        let rel = match graph.rel_type_by_key(rel_name, src_in_graph, dst_in_graph) {
            Some(r) => r,
            None => return 0.0,
        };
        let key_type = match direction {
            Direction::Outgoing => src_in_graph,
            Direction::Incoming => dst_in_graph,
        };
        let mut groups: HashMap<Vec<EntityId>, u64> = HashMap::new();
        let mut non_empty = 0u64;
        for &entity in graph.entities_of_type(key_type) {
            let value = naive_neighbors_via(graph, entity, rel, direction);
            if value.is_empty() {
                continue;
            }
            non_empty += 1;
            *groups.entry(value).or_insert(0) += 1;
        }
        if non_empty == 0 {
            return 0.0;
        }
        let mut counts: Vec<u64> = groups.into_values().collect();
        counts.sort_unstable();
        let total = non_empty as f64;
        counts
            .into_iter()
            .map(|n| {
                let p = n as f64 / total;
                p * (total / n as f64).log10()
            })
            .sum()
    };
    let mut outgoing = Vec::with_capacity(schema.relationship_type_count());
    let mut incoming = Vec::with_capacity(schema.relationship_type_count());
    for edge in schema.edges() {
        outgoing.push(orientation(
            &edge.name,
            edge.src,
            edge.dst,
            Direction::Outgoing,
        ));
        incoming.push(orientation(
            &edge.name,
            edge.src,
            edge.dst,
            Direction::Incoming,
        ));
    }
    (outgoing, incoming)
}

/// Discovers the top concise preview and fully materialises it (all rows).
/// Returns the total number of materialised cells as a liveness witness.
pub fn materialise_preview(graph: &EntityGraph, scored: &ScoredSchema, preview: &Preview) -> u64 {
    let tables = preview.materialize(graph, scored.schema(), usize::MAX);
    tables
        .iter()
        .flat_map(|t| t.rows.iter())
        .map(|r| r.values.iter().map(|v| v.len() as u64).sum::<u64>() + 1)
        .sum()
}

/// Builds the scored schema and discovers a concise preview to materialise.
pub fn discovery_fixture(graph: &EntityGraph) -> (ScoredSchema, Preview) {
    let scored = ScoredSchema::build(graph, &ScoringConfig::coverage())
        .expect("scoring the datagen graph succeeds");
    let space = PreviewSpace::concise(3.min(scored.eligible_types().len().max(1)), 8)
        .expect("valid concise space");
    let preview = preview_core::DynamicProgrammingDiscovery::new()
        .discover(&scored, &space)
        .expect("discovery succeeds")
        .expect("a preview exists");
    (scored, preview)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{FreebaseDomain, SyntheticGenerator};

    #[test]
    fn sweeps_agree_between_csr_and_naive() {
        let graph = SyntheticGenerator::new(7).generate(&FreebaseDomain::Basketball.spec(1e-3));
        let schema = graph.schema_graph();
        assert_eq!(
            csr_neighbor_sweep(&graph, schema),
            naive_neighbor_sweep(&graph, schema)
        );
    }

    #[test]
    fn entropy_scores_agree_bitwise_between_csr_and_naive() {
        let graph = SyntheticGenerator::new(7).generate(&FreebaseDomain::Basketball.spec(1e-3));
        let schema = graph.schema_graph();
        let (csr_out, csr_in) = csr_entropy_scores(&graph, schema);
        let (naive_out, naive_in) = naive_entropy_scores(&graph, schema);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&csr_out), bits(&naive_out));
        assert_eq!(bits(&csr_in), bits(&naive_in));
    }

    #[test]
    fn materialisation_counts_cells() {
        let graph = SyntheticGenerator::new(7).generate(&FreebaseDomain::Basketball.spec(1e-3));
        let (scored, preview) = discovery_fixture(&graph);
        assert!(materialise_preview(&graph, &scored, &preview) > 0);
    }
}
