//! User-study experiments: Tables 5–9, 13–21 and Figs. 10–14.
//!
//! The behavioural simulation lives in `datagen::userstudy`; this module
//! derives the per-approach summary descriptors from the *actual* artefacts
//! (discovered previews, the YPS09 summary, the raw schema graph, the gold
//! standard and the expert previews) and turns the simulated responses into
//! the paper's tables.

use std::collections::HashSet;

use baseline::Yps09Summarizer;
use datagen::userstudy::{
    default_profiles, simulate, Approach, ApproachOutcome, StudyConfig, StudyOutcome,
    SummaryProfile, QUESTIONS,
};
use datagen::{expert_preview, FreebaseDomain};
use eval::{five_number_summary, median, two_proportion_z_test};
use preview_core::{
    AprioriDiscovery, DynamicProgrammingDiscovery, Preview, PreviewDiscovery, PreviewSpace,
    ScoringConfig,
};

use crate::context::DomainContext;
use crate::util::{fmt2, fmt3, TextTable};

/// All artefacts of one domain's user study: the derived profiles and the
/// simulated outcome.
#[derive(Debug, Clone)]
pub struct DomainStudy {
    /// The domain.
    pub domain: FreebaseDomain,
    /// Per-approach behavioural descriptors.
    pub profiles: Vec<SummaryProfile>,
    /// Simulated responses.
    pub outcome: StudyOutcome,
}

impl DomainStudy {
    /// The aggregate for one approach.
    pub fn approach(&self, approach: Approach) -> &ApproachOutcome {
        self.outcome
            .by_approach
            .iter()
            .find(|a| a.approach == approach)
            .expect("every approach is simulated")
    }
}

/// Elements of a domain considered "important" for coverage purposes: the
/// gold-standard key attributes and their editor-selected non-key attributes.
fn important_elements(ctx: &DomainContext) -> HashSet<String> {
    let mut set = HashSet::new();
    if let Some(gold) = ctx.domain.gold_standard() {
        for table in gold.tables {
            set.insert(table.key.to_string());
            for &attr in table.non_keys {
                set.insert(format!("{}::{attr}", table.key));
            }
        }
    }
    set
}

/// Coverage of the important elements by a discovered preview.
fn preview_coverage(ctx: &DomainContext, preview: &Preview, important: &HashSet<String>) -> f64 {
    if important.is_empty() {
        return 0.5;
    }
    let mut covered = 0usize;
    for element in important {
        let hit = match element.split_once("::") {
            None => preview
                .tables()
                .iter()
                .any(|t| ctx.schema.type_name(t.key()) == element),
            Some((key, attr)) => preview.tables().iter().any(|t| {
                ctx.schema.type_name(t.key()) == key
                    && t.non_keys()
                        .iter()
                        .any(|a| ctx.schema.edge(a.edge).name == attr)
            }),
        };
        if hit {
            covered += 1;
        }
    }
    covered as f64 / important.len() as f64
}

/// Normalised visual complexity of a presentation showing `elements` schema
/// elements, relative to the full schema graph.
fn complexity(ctx: &DomainContext, elements: usize) -> f64 {
    let full = ctx.schema.type_count() + ctx.schema.relationship_type_count();
    (elements as f64 / full as f64).min(1.0)
}

/// Derives the seven approach profiles of one domain from its artefacts.
pub fn derive_profiles(ctx: &DomainContext) -> Vec<SummaryProfile> {
    let Some(gold) = ctx.domain.gold_standard() else {
        return default_profiles();
    };
    let important = important_elements(ctx);
    let k = gold.table_count();
    let n = gold.non_key_count().max(k);
    let scored = ctx.scored(&ScoringConfig::coverage());

    let discovered = |space: PreviewSpace| -> Option<Preview> {
        let algo: Box<dyn PreviewDiscovery> = match space {
            PreviewSpace::Concise(_) => Box::new(DynamicProgrammingDiscovery::new()),
            _ => Box::new(AprioriDiscovery::new()),
        };
        algo.discover(&scored, &space).ok().flatten()
    };
    let preview_profile = |approach: Approach, preview: Option<Preview>| -> SummaryProfile {
        match preview {
            Some(p) => SummaryProfile {
                approach,
                coverage: preview_coverage(ctx, &p, &important),
                complexity: complexity(ctx, p.tables().len() + p.non_key_count()),
            },
            // Infeasible constraint (e.g. no diverse preview exists): fall
            // back to the documented defaults for that approach.
            None => *default_profiles()
                .iter()
                .find(|p| p.approach == approach)
                .expect("default profile exists"),
        }
    };

    let concise = preview_profile(
        Approach::Concise,
        discovered(PreviewSpace::concise(k, n).expect("valid size")),
    );
    let tight = preview_profile(
        Approach::Tight,
        discovered(PreviewSpace::tight(k, n, 2).expect("valid size")),
    );
    let diverse = preview_profile(
        Approach::Diverse,
        discovered(PreviewSpace::diverse(k, n, 3).expect("valid size")),
    );

    // Freebase gold standard: covers all of its own elements by definition.
    let freebase = SummaryProfile {
        approach: Approach::Freebase,
        coverage: 1.0,
        complexity: complexity(ctx, k + gold.non_key_count()),
    };

    // Experts: covers the shared key attributes plus their attributes.
    let expert_cov = expert_preview(ctx.domain)
        .map(|e| {
            let gold_keys = gold.key_attributes();
            let shared = e
                .keys
                .iter()
                .filter(|k| gold_keys.contains(&k.as_str()))
                .count();
            // Shared keys and their attributes are covered; the rest are not.
            shared as f64 / gold_keys.len() as f64
        })
        .unwrap_or(0.7);
    let experts = SummaryProfile {
        approach: Approach::Experts,
        coverage: expert_cov,
        complexity: complexity(ctx, k + n),
    };

    // YPS09: k cluster-centre tables, each showing *all* incident relationship
    // types (Sec. 6.3.1 explains the resulting tables are wide).
    let yps09_summary = Yps09Summarizer::new().summarize(&ctx.graph, &ctx.schema, k);
    let (yps_cov, yps_elems) = match &yps09_summary {
        Some(summary) => {
            let center_names: HashSet<&str> = summary
                .centers
                .iter()
                .map(|&t| ctx.schema.type_name(t))
                .collect();
            let covered = important
                .iter()
                .filter(|e| {
                    let key = e.split_once("::").map(|(k, _)| k).unwrap_or(e.as_str());
                    center_names.contains(key)
                })
                .count();
            let width: usize = summary
                .centers
                .iter()
                .map(|&t| 1 + ctx.schema.incident_edges(t).len())
                .sum();
            (covered as f64 / important.len().max(1) as f64, width)
        }
        None => (0.5, ctx.schema.type_count()),
    };
    let yps09 = SummaryProfile {
        approach: Approach::Yps09,
        coverage: yps_cov,
        complexity: complexity(ctx, yps_elems),
    };

    // Raw schema graph: complete but maximally complex.
    let graph = SummaryProfile {
        approach: Approach::Graph,
        coverage: 1.0,
        complexity: 1.0,
    };

    vec![concise, tight, diverse, freebase, experts, yps09, graph]
}

/// Runs the simulated user study for one domain.
pub fn run_domain_study(ctx: &DomainContext) -> DomainStudy {
    let profiles = derive_profiles(ctx);
    let config = StudyConfig {
        seed: 84 + ctx.domain as u64,
        ..StudyConfig::default()
    };
    let outcome = simulate(&profiles, &config);
    DomainStudy {
        domain: ctx.domain,
        profiles,
        outcome,
    }
}

/// Runs the study for all five gold-standard domains.
pub fn run_all_studies(contexts: &[DomainContext]) -> Vec<DomainStudy> {
    contexts
        .iter()
        .filter(|c| c.domain.gold_standard().is_some())
        .map(run_domain_study)
        .collect()
}

/// Table 5: sample sizes and conversion rates.
pub fn table5(studies: &[DomainStudy]) -> String {
    let mut out = String::from("Table 5: Sample sizes and conversion rates (simulated study)\n");
    let mut header = vec!["Approach".to_string()];
    header.extend(studies.iter().map(|s| s.domain.name().to_string()));
    let mut table = TextTable::new(header);
    for approach in Approach::ALL {
        let mut row = vec![approach.label().to_string()];
        for study in studies {
            let a = study.approach(approach);
            row.push(format!("n={} c={}", a.responses, fmt3(a.conversion_rate())));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

/// Table 6: approaches sorted by median existence-test time per domain.
pub fn table6(studies: &[DomainStudy]) -> String {
    let mut out =
        String::from("Table 6: Approaches in ascending order of median existence-test time\n");
    let mut table = TextTable::new(vec!["Domain", "1", "2", "3", "4", "5", "6", "7"]);
    for study in studies {
        let mut order: Vec<(Approach, f64)> = Approach::ALL
            .iter()
            .map(|&a| (a, median(&study.approach(a).times).unwrap_or(f64::MAX)))
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"));
        let mut row = vec![study.domain.name().to_string()];
        row.extend(order.iter().map(|(a, _)| a.label().to_string()));
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

/// Tables 7 and 13–16: pairwise z-tests of conversion rates for one domain.
pub fn pairwise_z_table(studies: &[DomainStudy], domain: FreebaseDomain) -> String {
    let Some(study) = studies.iter().find(|s| s.domain == domain) else {
        return format!("no study available for domain {}", domain.name());
    };
    let mut out = format!(
        "Pairwise two-proportion one-tailed z-tests of conversion rates, domain={} (alpha=0.1)\n",
        domain.name()
    );
    let mut header = vec!["".to_string()];
    header.extend(Approach::ALL.iter().skip(1).map(|a| a.label().to_string()));
    let mut table = TextTable::new(header);
    for (i, &row_approach) in Approach::ALL.iter().enumerate() {
        if i + 1 >= Approach::ALL.len() {
            break;
        }
        let mut row = vec![row_approach.label().to_string()];
        for (j, &col_approach) in Approach::ALL.iter().enumerate().skip(1) {
            if j <= i {
                row.push(String::new());
                continue;
            }
            let a = study.approach(row_approach);
            let b = study.approach(col_approach);
            match two_proportion_z_test(a.correct, a.responses, b.correct, b.responses) {
                Some(result) => {
                    let marker = if result.significant(0.1) { "*" } else { "" };
                    row.push(format!(
                        "z={}{} p={}",
                        fmt2(result.z),
                        marker,
                        fmt3(result.p_value)
                    ));
                }
                None => row.push("n/a".to_string()),
            }
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str("(* = statistically significant at alpha = 0.1; the row approach is more accurate when z > 0)\n");
    out
}

/// Table 8: the user-experience questionnaire.
pub fn table8() -> String {
    let mut out = String::from("Table 8: User experience questionnaire (5-point Likert scale)\n");
    for q in QUESTIONS {
        out.push_str(q);
        out.push('\n');
    }
    out
}

/// Table 9: approaches sorted by average user-experience score across domains.
pub fn table9(studies: &[DomainStudy]) -> String {
    let mut out =
        String::from("Table 9: Approaches in descending order of average user-experience score\n");
    let mut table = TextTable::new(vec!["Question", "1", "2", "3", "4", "5", "6", "7"]);
    for q in 0..4 {
        let mut averages: Vec<(Approach, f64)> = Approach::ALL
            .iter()
            .map(|&a| {
                let mean = studies
                    .iter()
                    .map(|s| s.approach(a).experience_means[q])
                    .sum::<f64>()
                    / studies.len().max(1) as f64;
                (a, mean)
            })
            .collect();
        averages.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        let mut row = vec![format!("Q{}", q + 1)];
        row.extend(averages.iter().map(|(a, _)| a.label().to_string()));
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

/// Tables 17–21: per-domain user-experience scores.
pub fn experience_table(studies: &[DomainStudy], domain: FreebaseDomain) -> String {
    let Some(study) = studies.iter().find(|s| s.domain == domain) else {
        return format!("no study available for domain {}", domain.name());
    };
    let mut out = format!("User experience scores, domain={}\n", domain.name());
    let mut table = TextTable::new(vec!["System", "Q1", "Q2", "Q3", "Q4"]);
    for approach in Approach::ALL {
        let a = study.approach(approach);
        table.row(vec![
            approach.label().to_string(),
            fmt2(a.experience_means[0]),
            fmt2(a.experience_means[1]),
            fmt2(a.experience_means[2]),
            fmt2(a.experience_means[3]),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Figs. 10–14: box-plot statistics of time per existence-test task.
pub fn time_boxplot(studies: &[DomainStudy], domain: FreebaseDomain) -> String {
    let Some(study) = studies.iter().find(|s| s.domain == domain) else {
        return format!("no study available for domain {}", domain.name());
    };
    let mut out = format!(
        "Time per existence-test task (seconds), domain={}\n",
        domain.name()
    );
    let mut table = TextTable::new(vec!["Approach", "min", "q1", "median", "q3", "max"]);
    for approach in Approach::ALL {
        let times = &study.approach(approach).times;
        if let Some(s) = five_number_summary(times) {
            table.row(vec![
                approach.label().to_string(),
                fmt2(s.min),
                fmt2(s.q1),
                fmt2(s.median),
                fmt2(s.q3),
                fmt2(s.max),
            ]);
        }
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn studies() -> Vec<DomainStudy> {
        let ctxs = vec![
            DomainContext::build(FreebaseDomain::Film, 2e-4, 7),
            DomainContext::build(FreebaseDomain::Tv, 2e-4, 7),
        ];
        run_all_studies(&ctxs)
    }

    #[test]
    fn profiles_are_derived_for_all_seven_approaches() {
        let ctx = DomainContext::build(FreebaseDomain::Film, 2e-4, 7);
        let profiles = derive_profiles(&ctx);
        assert_eq!(profiles.len(), 7);
        for p in &profiles {
            assert!((0.0..=1.0).contains(&p.coverage), "{:?}", p);
            assert!((0.0..=1.0).contains(&p.complexity), "{:?}", p);
        }
        // The raw schema graph is the most complex presentation.
        let graph = profiles
            .iter()
            .find(|p| p.approach == Approach::Graph)
            .unwrap();
        let concise = profiles
            .iter()
            .find(|p| p.approach == Approach::Concise)
            .unwrap();
        assert!(graph.complexity > concise.complexity);
    }

    #[test]
    fn previews_cover_a_reasonable_share_of_gold_elements() {
        let ctx = DomainContext::build(FreebaseDomain::Film, 2e-4, 7);
        let profiles = derive_profiles(&ctx);
        let concise = profiles
            .iter()
            .find(|p| p.approach == Approach::Concise)
            .unwrap();
        assert!(concise.coverage > 0.2, "coverage {}", concise.coverage);
    }

    #[test]
    fn all_user_study_tables_render() {
        let studies = studies();
        assert_eq!(studies.len(), 2);
        assert!(table5(&studies).contains("Concise"));
        assert!(table6(&studies).contains("film"));
        assert!(pairwise_z_table(&studies, FreebaseDomain::Film).contains("z="));
        assert!(table8().contains("Q4"));
        assert!(table9(&studies).contains("Q1"));
        assert!(experience_table(&studies, FreebaseDomain::Tv).contains("YPS09"));
        assert!(time_boxplot(&studies, FreebaseDomain::Film).contains("median"));
        assert!(pairwise_z_table(&studies, FreebaseDomain::Books).contains("no study available"));
    }

    #[test]
    fn compact_approaches_answer_faster_than_graph() {
        let studies = studies();
        for study in &studies {
            let tight = median(&study.approach(Approach::Tight).times).unwrap();
            let graph = median(&study.approach(Approach::Graph).times).unwrap();
            assert!(
                tight < graph,
                "{}: tight {tight} graph {graph}",
                study.domain.name()
            );
        }
    }
}
