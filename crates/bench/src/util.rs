//! Small formatting and timing helpers shared by the experiments.

use std::time::{Duration, Instant};

/// A simple fixed-width text table builder for paper-style output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Times a closure, returning its result and the elapsed wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Parses a CLI flag value, validating it with `ok`; the smoke-bench
/// binaries share this for their hand-rolled argument loops.
pub fn parse_checked<T: std::str::FromStr + Copy>(
    value: &str,
    ok: impl Fn(T) -> bool,
) -> Result<T, String> {
    value
        .parse::<T>()
        .ok()
        .filter(|v| ok(*v))
        .ok_or_else(|| format!("invalid value {value:?}"))
}

/// Runs `f` `repeats` times and returns the minimum wall-clock seconds plus
/// the last result (the workloads are deterministic, so every repetition
/// agrees; callers cross-check the returned value).
pub fn min_timed<T>(repeats: usize, f: impl FnMut() -> T) -> (f64, T) {
    min_timed_n(repeats, 1, f)
}

/// Like [`min_timed`] but each repetition runs `f` `iters` times back to
/// back and reports per-iteration seconds: sub-millisecond sections are
/// amortised over several iterations so the min-of-`repeats` timing sits
/// well above scheduler and timer noise — regression floors must not flake
/// on a loaded CI runner.
pub fn min_timed_n<T>(repeats: usize, iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        for _ in 0..iters {
            last = Some(f());
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    (best, last.expect("repeats and iters >= 1"))
}

/// Formats a duration in the paper's milliseconds-with-floor-of-one style
/// ("execution time less than 1 millisecond is rounded to 1 millisecond").
pub fn format_millis(duration: Duration) -> String {
    let ms = duration.as_secs_f64() * 1e3;
    if ms < 1.0 {
        "1".to_string()
    } else if ms < 100.0 {
        format!("{ms:.1}")
    } else {
        format!("{:.0}", ms)
    }
}

/// Levenshtein edit distance between two ASCII-ish names (insertions,
/// deletions and substitutions all cost 1). Used for CLI "did you mean"
/// suggestions.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let substitution = previous[j] + usize::from(ca != cb);
            current.push(substitution.min(previous[j + 1] + 1).min(current[j] + 1));
        }
        previous = current;
    }
    previous[b.len()]
}

/// The candidates closest to `name` by edit distance, nearest first, keeping
/// only those within `max_distance` (ties keep candidate order).
pub fn closest_matches<'a>(
    name: &str,
    candidates: impl IntoIterator<Item = &'a str>,
    max_distance: usize,
) -> Vec<&'a str> {
    let mut scored: Vec<(usize, &str)> = candidates
        .into_iter()
        .map(|c| (levenshtein(name, c), c))
        .filter(|&(d, _)| d <= max_distance)
        .collect();
    scored.sort_by_key(|&(d, _)| d);
    scored.into_iter().map(|(_, c)| c).collect()
}

/// Peak resident set size (high-water mark) of this process in bytes, or
/// `None` where the platform doesn't expose it.
///
/// Delegates to [`preview_obs::peak_rss_bytes`], the canonical reader (on
/// Linux: `VmHWM` from `/proc/self/status`, the lifetime RSS high-water
/// mark — exactly the "peak memory" a scale benchmark should report, since
/// a post-build measurement still sees the build-time peak). Elsewhere it
/// returns `None` and benchmarks emit `null` rather than a fabricated
/// number.
pub fn peak_rss_bytes() -> Option<u64> {
    preview_obs::peak_rss_bytes()
}

/// Renders an `Option<u64>` as a JSON value: the number, or `null`.
pub fn json_opt_u64(value: Option<u64>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Formats a float with three decimals (the paper's usual precision).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a float with two decimals.
pub fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Domain", "Coverage"]);
        t.row(vec!["books", "0.800"]);
        t.row(vec!["film", "0.2"]);
        let rendered = t.render();
        assert!(rendered.contains("Domain"));
        assert!(rendered.contains("books"));
        assert_eq!(rendered.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only one"]);
        assert!(t.render().contains("only one"));
    }

    #[test]
    fn timed_returns_value_and_duration() {
        let (value, duration) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(duration.as_nanos() > 0);
    }

    #[test]
    fn millis_formatting_floors_at_one() {
        assert_eq!(format_millis(Duration::from_micros(10)), "1");
        assert_eq!(format_millis(Duration::from_millis(2)), "2.0");
        assert_eq!(format_millis(Duration::from_millis(1500)), "1500");
    }

    #[test]
    fn levenshtein_counts_edits() {
        assert_eq!(levenshtein("table3", "table3"), 0);
        assert_eq!(levenshtein("tabel3", "table3"), 2);
        assert_eq!(levenshtein("fig5", "fig15"), 1);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn closest_matches_ranks_by_distance() {
        let catalog = ["table2", "table3", "fig5"];
        assert_eq!(
            closest_matches("tabl3", catalog, 2),
            vec!["table3", "table2"]
        );
        assert_eq!(closest_matches("figure5", catalog, 2), Vec::<&str>::new());
        assert_eq!(closest_matches("fig6", catalog, 2), vec!["fig5"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt2(5.67891), "5.68");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        let peak = peak_rss_bytes().expect("/proc/self/status has VmHWM");
        assert!(peak > 0);
    }

    #[test]
    fn json_opt_u64_renders_null_and_numbers() {
        assert_eq!(json_opt_u64(Some(7)), "7");
        assert_eq!(json_opt_u64(None), "null");
    }
}
