//! Scoring-accuracy experiments: Figs. 5–7, Table 3 and Table 4.

use std::collections::HashSet;

use datagen::crowd::{correlation_samples, simulate_pairwise_judgments, CrowdConfig};
use datagen::FreebaseDomain;
use entity_graph::TypeId;
use eval::ranking::{average_precision, ndcg_at_k, precision_at_k, reciprocal_rank};
use preview_core::{KeyScoring, NonKeyScoring, ScoringConfig};

use crate::context::DomainContext;
use crate::util::{fmt2, fmt3, TextTable};

/// The K values reported in Figs. 5–7.
pub const K_VALUES: [usize; 5] = [1, 5, 10, 15, 20];

/// One key-attribute ranking method compared in Figs. 5–7 and Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyRankingMethod {
    /// Coverage-based scoring (Sec. 3.2).
    Coverage,
    /// Random-walk-based scoring (Sec. 3.2).
    RandomWalk,
    /// The YPS09 table-importance baseline.
    Yps09,
}

impl KeyRankingMethod {
    /// All methods, in the paper's column order.
    pub const ALL: [KeyRankingMethod; 3] = [
        KeyRankingMethod::Coverage,
        KeyRankingMethod::RandomWalk,
        KeyRankingMethod::Yps09,
    ];

    /// Label used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            KeyRankingMethod::Coverage => "Coverage",
            KeyRankingMethod::RandomWalk => "Random Walk",
            KeyRankingMethod::Yps09 => "YPS09",
        }
    }
}

/// Ranks the entity types of a domain under one method.
pub fn key_ranking(ctx: &DomainContext, method: KeyRankingMethod) -> Vec<TypeId> {
    match method {
        KeyRankingMethod::Coverage => ctx
            .scored(&ScoringConfig::new(
                KeyScoring::Coverage,
                NonKeyScoring::Coverage,
            ))
            .ranked_key_attributes(),
        KeyRankingMethod::RandomWalk => ctx
            .scored(&ScoringConfig::new(
                KeyScoring::RandomWalk,
                NonKeyScoring::Coverage,
            ))
            .ranked_key_attributes(),
        KeyRankingMethod::Yps09 => ctx.yps09_ranking(),
    }
}

/// The ranking metric reproduced by one of Figs. 5–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMetric {
    /// Fig. 5.
    PrecisionAtK,
    /// Fig. 6.
    AveragePrecision,
    /// Fig. 7.
    Ndcg,
}

impl KeyMetric {
    fn evaluate(self, ranked: &[TypeId], gold: &HashSet<TypeId>, k: usize) -> f64 {
        match self {
            KeyMetric::PrecisionAtK => precision_at_k(ranked, gold, k),
            KeyMetric::AveragePrecision => average_precision(ranked, gold, k),
            KeyMetric::Ndcg => ndcg_at_k(ranked, gold, k),
        }
    }

    /// The best value any method could achieve (the paper's "Optimal" curve).
    fn optimal(self, gold_size: usize, k: usize) -> f64 {
        let ideal: Vec<TypeId> = (0..gold_size as u32).map(TypeId::new).collect();
        let gold: HashSet<TypeId> = ideal.iter().copied().collect();
        self.evaluate(&ideal, &gold, k)
    }

    fn figure_name(self) -> &'static str {
        match self {
            KeyMetric::PrecisionAtK => "Figure 5: Precision-at-K of key attribute scoring",
            KeyMetric::AveragePrecision => "Figure 6: Average precision of key attribute scoring",
            KeyMetric::Ndcg => "Figure 7: nDCG of key attribute scoring",
        }
    }
}

/// Regenerates one of Figs. 5–7 over the five gold-standard domains, using
/// already-built domain contexts (so the expensive generation is shared).
pub fn key_accuracy_figure(contexts: &[DomainContext], metric: KeyMetric) -> String {
    let mut out = String::new();
    out.push_str(metric.figure_name());
    out.push('\n');
    let mut table = TextTable::new(vec![
        "Domain",
        "K",
        "Coverage",
        "Random Walk",
        "YPS09",
        "Optimal",
    ]);
    for ctx in contexts {
        let gold: HashSet<TypeId> = ctx.gold_key_types().into_iter().collect();
        if gold.is_empty() {
            continue;
        }
        let rankings: Vec<(KeyRankingMethod, Vec<TypeId>)> = KeyRankingMethod::ALL
            .iter()
            .map(|&m| (m, key_ranking(ctx, m)))
            .collect();
        for &k in &K_VALUES {
            let mut cells = vec![ctx.domain.name().to_string(), k.to_string()];
            for (_, ranking) in &rankings {
                cells.push(fmt3(metric.evaluate(ranking, &gold, k)));
            }
            cells.push(fmt3(metric.optimal(gold.len(), k)));
            table.row(cells);
        }
    }
    out.push_str(&table.render());
    out
}

/// Regenerates Table 3: MRR of non-key attribute scoring for the coverage- and
/// entropy-based measures, per domain.
pub fn table3_mrr(contexts: &[DomainContext]) -> String {
    let mut out = String::new();
    out.push_str("Table 3: MRR of non-key attribute scoring\n");
    let mut table = TextTable::new(vec!["Domain", "Coverage", "Entropy"]);
    for ctx in contexts {
        let Some(gold) = ctx.domain.gold_standard() else {
            continue;
        };
        let mut row = vec![ctx.domain.name().to_string()];
        for non_key in [NonKeyScoring::Coverage, NonKeyScoring::Entropy] {
            let scored = ctx.scored(&ScoringConfig::new(KeyScoring::Coverage, non_key));
            let mut reciprocal_ranks = Vec::new();
            for table_spec in gold.tables {
                let Some(key_ty) = ctx.schema.type_by_name(table_spec.key) else {
                    continue;
                };
                let candidates = scored.candidates(key_ty);
                // The paper only evaluates entity types with at least five
                // candidate non-key attributes.
                if candidates.len() < 5 {
                    continue;
                }
                let ranked: Vec<String> = candidates
                    .iter()
                    .map(|c| ctx.schema.edge(c.edge).name.clone())
                    .collect();
                let gold_set: HashSet<String> =
                    table_spec.non_keys.iter().map(|s| s.to_string()).collect();
                reciprocal_ranks.push(reciprocal_rank(&ranked, &gold_set));
            }
            let mrr = if reciprocal_ranks.is_empty() {
                0.0
            } else {
                reciprocal_ranks.iter().sum::<f64>() / reciprocal_ranks.len() as f64
            };
            row.push(fmt3(mrr));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

/// Regenerates Table 4: Pearson correlation between the methods' rankings and
/// the (simulated) crowd's pairwise preferences, for key and non-key
/// attributes.
pub fn table4_pcc(contexts: &[DomainContext]) -> String {
    let mut out = String::new();
    out.push_str("Table 4: PCC of key and non-key attribute scoring vs. crowd ranking\n");
    let mut table = TextTable::new(vec![
        "Domain",
        "YPS09 (key)",
        "Coverage (key)",
        "Random Walk (key)",
        "Coverage (non-key)",
        "Entropy (non-key)",
    ]);
    for ctx in contexts {
        if ctx.domain.gold_standard().is_none() {
            continue;
        }
        let crowd_config = CrowdConfig {
            seed: 2016 + ctx.domain as u64,
            ..CrowdConfig::default()
        };

        // Key attributes: 50 simulated pairs of entity types.
        let key_judgments =
            simulate_pairwise_judgments(&ctx.latent_key_importance(), &crowd_config);
        let key_pcc = |ranking: &[TypeId]| -> f64 {
            let order: Vec<usize> = ranking.iter().map(|t| t.index()).collect();
            let (x, y) = correlation_samples(&key_judgments, &order);
            eval::pearson(&x, &y).unwrap_or(0.0)
        };

        // Non-key attributes: 50 simulated pairs of relationship types,
        // compared against the score-induced ranking of all schema edges.
        let nonkey_judgments =
            simulate_pairwise_judgments(&ctx.latent_nonkey_importance(), &crowd_config);
        let nonkey_pcc = |non_key: NonKeyScoring| -> f64 {
            let scored = ctx.scored(&ScoringConfig::new(KeyScoring::Coverage, non_key));
            let mut edges: Vec<usize> = (0..ctx.schema.relationship_type_count()).collect();
            edges.sort_by(|&a, &b| {
                let sa = scored
                    .non_key_score(a, entity_graph::Direction::Outgoing)
                    .max(scored.non_key_score(a, entity_graph::Direction::Incoming));
                let sb = scored
                    .non_key_score(b, entity_graph::Direction::Outgoing)
                    .max(scored.non_key_score(b, entity_graph::Direction::Incoming));
                sb.partial_cmp(&sa)
                    .expect("scores are finite")
                    .then_with(|| a.cmp(&b))
            });
            let (x, y) = correlation_samples(&nonkey_judgments, &edges);
            eval::pearson(&x, &y).unwrap_or(0.0)
        };

        table.row(vec![
            ctx.domain.name().to_string(),
            fmt2(key_pcc(&key_ranking(ctx, KeyRankingMethod::Yps09))),
            fmt2(key_pcc(&key_ranking(ctx, KeyRankingMethod::Coverage))),
            fmt2(key_pcc(&key_ranking(ctx, KeyRankingMethod::RandomWalk))),
            fmt2(nonkey_pcc(NonKeyScoring::Coverage)),
            fmt2(nonkey_pcc(NonKeyScoring::Entropy)),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Builds the contexts for the five gold-standard domains at a given scale.
pub fn gold_domain_contexts(scale: f64, seed: u64) -> Vec<DomainContext> {
    FreebaseDomain::GOLD
        .iter()
        .map(|&d| DomainContext::build(d, scale, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contexts() -> Vec<DomainContext> {
        // A small scale keeps the test fast; the schema shape is scale-free.
        vec![
            DomainContext::build(FreebaseDomain::Film, 2e-4, 7),
            DomainContext::build(FreebaseDomain::People, 2e-4, 7),
        ]
    }

    #[test]
    fn key_rankings_are_permutations() {
        let ctx = &contexts()[0];
        for method in KeyRankingMethod::ALL {
            let ranking = key_ranking(ctx, method);
            assert_eq!(ranking.len(), ctx.schema.type_count(), "{}", method.label());
            let mut sorted = ranking.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), ctx.schema.type_count());
        }
    }

    #[test]
    fn coverage_beats_random_guessing_on_gold_types() {
        let ctx = &contexts()[0];
        let gold: HashSet<TypeId> = ctx.gold_key_types().into_iter().collect();
        let ranking = key_ranking(ctx, KeyRankingMethod::Coverage);
        let p10 = precision_at_k(&ranking, &gold, 10);
        // Random guessing over 63 types would give ~6/63 ≈ 0.1; the synthetic
        // domains make gold types large, so coverage should do much better.
        assert!(p10 >= 0.3, "P@10 = {p10}");
    }

    #[test]
    fn figures_and_tables_render_for_every_domain_row() {
        let ctxs = contexts();
        let fig5 = key_accuracy_figure(&ctxs, KeyMetric::PrecisionAtK);
        assert!(fig5.contains("film"));
        assert!(fig5.contains("people"));
        assert_eq!(fig5.lines().count(), 2 + 2 * K_VALUES.len() + 1);
        let fig7 = key_accuracy_figure(&ctxs, KeyMetric::Ndcg);
        assert!(fig7.contains("nDCG"));

        let t3 = table3_mrr(&ctxs);
        assert!(t3.contains("Coverage"));
        let t4 = table4_pcc(&ctxs);
        assert!(t4.contains("Random Walk"));
    }

    #[test]
    fn optimal_curve_caps_precision() {
        assert!((KeyMetric::PrecisionAtK.optimal(6, 10) - 0.6).abs() < 1e-12);
        assert!((KeyMetric::PrecisionAtK.optimal(6, 5) - 1.0).abs() < 1e-12);
        assert!((KeyMetric::Ndcg.optimal(6, 20) - 1.0).abs() < 1e-12);
    }
}
