//! Shared per-domain experiment context: generated graph, schema and scores.

use baseline::Yps09Summarizer;
use datagen::{DomainSpec, FreebaseDomain, SyntheticGenerator};
use entity_graph::{EntityGraph, SchemaGraph, TypeId};
use preview_core::{ScoredSchema, ScoringConfig};

/// Default scale factor applied to the paper's Table 2 entity/edge totals.
///
/// At `1e-3` the largest domain ("music") has ~27 K entities and ~187 K edges,
/// which keeps every experiment laptop-sized while preserving the skew and
/// schema shape the algorithms care about.
pub const DEFAULT_SCALE: f64 = 1e-3;

/// Default generator seed used by the experiment harness.
pub const DEFAULT_SEED: u64 = 2016;

/// Everything the experiments need about one synthetic domain.
#[derive(Debug, Clone)]
pub struct DomainContext {
    /// Which Freebase domain this is.
    pub domain: FreebaseDomain,
    /// The synthetic specification the graph was generated from.
    pub spec: DomainSpec,
    /// The generated entity graph.
    pub graph: EntityGraph,
    /// The derived schema graph.
    pub schema: SchemaGraph,
}

impl DomainContext {
    /// Generates the context for a domain at the given scale and seed.
    pub fn build(domain: FreebaseDomain, scale: f64, seed: u64) -> Self {
        let spec = domain.spec(scale);
        let graph = SyntheticGenerator::new(seed).generate(&spec);
        let schema = graph.schema_graph().clone();
        Self {
            domain,
            spec,
            graph,
            schema,
        }
    }

    /// Generates the context with the harness defaults.
    pub fn default_for(domain: FreebaseDomain) -> Self {
        Self::build(domain, DEFAULT_SCALE, DEFAULT_SEED)
    }

    /// Pre-computes scores for a scoring configuration.
    pub fn scored(&self, config: &ScoringConfig) -> ScoredSchema {
        ScoredSchema::build_with_schema(&self.graph, self.schema.clone(), config)
            .expect("scoring the synthetic domains always succeeds")
    }

    /// The gold-standard key attributes resolved to [`TypeId`]s of this
    /// domain's schema graph (empty for the domains without a gold standard).
    pub fn gold_key_types(&self) -> Vec<TypeId> {
        self.domain
            .gold_standard()
            .map(|gold| {
                gold.key_attributes()
                    .iter()
                    .filter_map(|name| self.schema.type_by_name(name))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Latent ground-truth importance of every entity type, used to drive the
    /// simulated crowd (Sec. 6.1.3 substitution): the logarithm of the type's
    /// entity count plus a fixed bonus for entrance-page (gold-standard)
    /// types, which captures "commonsense importance" beyond raw size.
    pub fn latent_key_importance(&self) -> Vec<f64> {
        let gold: Vec<TypeId> = self.gold_key_types();
        self.schema
            .types()
            .map(|ty| {
                let base = (self.schema.entity_count_of(ty) as f64 + 1.0).log10();
                let bonus = if gold.contains(&ty) { 1.5 } else { 0.0 };
                base + bonus
            })
            .collect()
    }

    /// Latent ground-truth importance of every schema edge (relationship
    /// type), analogous to [`latent_key_importance`](Self::latent_key_importance).
    pub fn latent_nonkey_importance(&self) -> Vec<f64> {
        let gold = self.domain.gold_standard();
        self.schema
            .edges()
            .iter()
            .map(|edge| {
                let base = (edge.edge_count as f64 + 1.0).log10();
                let is_gold = gold
                    .map(|g| {
                        let src_name = self.schema.type_name(edge.src);
                        g.non_keys_of(src_name)
                            .map(|attrs| attrs.contains(&edge.name.as_str()))
                            .unwrap_or(false)
                    })
                    .unwrap_or(false);
                base + if is_gold { 1.5 } else { 0.0 }
            })
            .collect()
    }

    /// The YPS09 baseline's importance-ranked entity types.
    pub fn yps09_ranking(&self) -> Vec<TypeId> {
        Yps09Summarizer::new().ranked_tables(&self.graph, &self.schema)
    }

    /// Names of a ranked list of types (convenience for reports).
    pub fn type_names(&self, ranked: &[TypeId]) -> Vec<String> {
        ranked
            .iter()
            .map(|&t| self.schema.type_name(t).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_for_the_smallest_domain() {
        let ctx = DomainContext::build(FreebaseDomain::Basketball, 1e-3, 1);
        assert_eq!(ctx.schema.type_count(), 6);
        assert_eq!(ctx.schema.relationship_type_count(), 21);
        assert!(ctx.graph.entity_count() > 0);
        assert!(ctx.gold_key_types().is_empty());
    }

    #[test]
    fn gold_types_resolve_for_film() {
        let ctx = DomainContext::build(FreebaseDomain::Film, 1e-4, 1);
        assert_eq!(ctx.gold_key_types().len(), 6);
        let importance = ctx.latent_key_importance();
        assert_eq!(importance.len(), ctx.schema.type_count());
        let nonkey = ctx.latent_nonkey_importance();
        assert_eq!(nonkey.len(), ctx.schema.relationship_type_count());
    }

    #[test]
    fn scored_and_yps09_cover_all_types() {
        let ctx = DomainContext::build(FreebaseDomain::Architecture, 1e-3, 1);
        let scored = ctx.scored(&ScoringConfig::coverage());
        assert_eq!(scored.key_scores().len(), ctx.schema.type_count());
        assert_eq!(ctx.yps09_ranking().len(), ctx.schema.type_count());
    }
}
