//! Data-oriented tables: Table 2 (graph sizes), Table 10 (gold standard),
//! Tables 11–12 (sample optimal previews) and Tables 22–23 (Freebase vs.
//! Experts overlap).

use std::collections::HashSet;

use datagen::{expert_preview, FreebaseDomain};
use eval::ranking::precision_at_k;
use preview_core::{
    AprioriDiscovery, DynamicProgrammingDiscovery, KeyScoring, NonKeyScoring, PreviewDiscovery,
    PreviewSpace, ScoringConfig,
};

use crate::context::DomainContext;
use crate::util::{fmt3, TextTable};

/// Table 2: sizes of the (synthetic) entity and schema graphs, alongside the
/// paper's original sizes.
pub fn table2(scale: f64, seed: u64) -> String {
    let mut out = format!("Table 2: Sizes of entity/schema graphs (synthetic, scale={scale})\n");
    let mut table = TextTable::new(vec![
        "Domain",
        "# vertices (paper)",
        "# vertices (generated)",
        "# edges (paper)",
        "# edges (generated)",
    ]);
    for domain in FreebaseDomain::ALL {
        let stats = domain.paper_stats();
        let ctx = DomainContext::build(domain, scale, seed);
        let generated = ctx.graph.stats();
        table.row(vec![
            domain.name().to_string(),
            format!("{} / {}", stats.entities, stats.entity_types),
            format!("{} / {}", generated.entities, generated.entity_types),
            format!("{} / {}", stats.edges, stats.relationship_types),
            format!("{} / {}", generated.edges, generated.relationship_types),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Table 10: the Freebase gold standard, verbatim.
pub fn table10() -> String {
    let mut out = String::from("Table 10: Gold standard (\"Freebase\")\n");
    for domain in FreebaseDomain::GOLD {
        let gold = domain.gold_standard().expect("gold domain");
        out.push_str(&format!(
            "\nDomain \"{}\" (k={}, n={}):\n",
            gold.domain,
            gold.table_count(),
            gold.non_key_count()
        ));
        let mut table = TextTable::new(vec!["Key attribute", "Non-key attributes"]);
        for t in gold.tables {
            table.row(vec![t.key.to_string(), t.non_keys.join(", ")]);
        }
        out.push_str(&table.render());
    }
    out
}

/// Table 11: sample optimal concise previews for three domains and three
/// scoring combinations (k=5, n=10).
pub fn table11(contexts: &[DomainContext]) -> String {
    let mut out = String::from("Table 11: Sample optimal concise previews (k=5, n=10)\n");
    let cases: [(FreebaseDomain, KeyScoring, NonKeyScoring); 3] = [
        (
            FreebaseDomain::Film,
            KeyScoring::Coverage,
            NonKeyScoring::Coverage,
        ),
        (
            FreebaseDomain::Music,
            KeyScoring::RandomWalk,
            NonKeyScoring::Coverage,
        ),
        (
            FreebaseDomain::Tv,
            KeyScoring::RandomWalk,
            NonKeyScoring::Entropy,
        ),
    ];
    for (domain, key, non_key) in cases {
        let Some(ctx) = contexts.iter().find(|c| c.domain == domain) else {
            continue;
        };
        out.push_str(&format!(
            "\nDomain \"{}\", KS={}, NKS={}, k=5, n=10:\n",
            domain.name(),
            key.label(),
            non_key.label()
        ));
        let scored = ctx.scored(&ScoringConfig::new(key, non_key));
        let space = PreviewSpace::concise(5, 10).expect("valid constraint");
        match DynamicProgrammingDiscovery::new().discover(&scored, &space) {
            Ok(Some(preview)) => {
                out.push_str(&preview.describe(&ctx.schema));
                out.push('\n');
                out.push_str(&format!(
                    "(preview score: {})\n",
                    fmt3(scored.preview_score(&preview))
                ));
            }
            _ => out.push_str("(no preview found)\n"),
        }
    }
    out
}

/// Table 12: sample optimal tight (d=2) and diverse (d=4) previews for the
/// "film" domain (coverage/coverage, k=5, n=10).
pub fn table12(contexts: &[DomainContext]) -> String {
    let mut out =
        String::from("Table 12: Sample optimal tight and diverse previews (film, k=5, n=10)\n");
    let Some(ctx) = contexts.iter().find(|c| c.domain == FreebaseDomain::Film) else {
        return out + "(film context unavailable)\n";
    };
    let scored = ctx.scored(&ScoringConfig::coverage());
    for (label, space) in [
        ("tight, d=2", PreviewSpace::tight(5, 10, 2).expect("valid")),
        (
            "diverse, d=4",
            PreviewSpace::diverse(5, 10, 4).expect("valid"),
        ),
    ] {
        out.push_str(&format!("\n{label}:\n"));
        match AprioriDiscovery::new().discover(&scored, &space) {
            Ok(Some(preview)) => {
                out.push_str(&preview.describe(&ctx.schema));
                out.push('\n');
                // Report the realised pairwise distances for transparency.
                let keys: Vec<_> = preview.tables().iter().map(|t| t.key()).collect();
                let mut dists = Vec::new();
                for (i, &a) in keys.iter().enumerate() {
                    for &b in keys.iter().skip(i + 1) {
                        dists.push(scored.distances().distance(a, b).to_string());
                    }
                }
                out.push_str(&format!("(pairwise key distances: {})\n", dists.join(", ")));
            }
            _ => out.push_str("(no preview satisfies the constraint)\n"),
        }
    }
    out
}

/// Tables 22–23: Precision-at-K between the "Freebase" gold standard and the
/// "Experts" previews, in both directions.
pub fn tables22_23() -> String {
    let mut out = String::new();
    for (title, experts_as_truth) in [
        (
            "Table 22: P@K of Freebase key attributes, using Experts as ground truth",
            true,
        ),
        (
            "Table 23: P@K of Experts key attributes, using Freebase as ground truth",
            false,
        ),
    ] {
        out.push_str(title);
        out.push('\n');
        let mut header = vec!["K".to_string()];
        header.extend(FreebaseDomain::GOLD.iter().map(|d| d.name().to_string()));
        let mut table = TextTable::new(header);
        for k in 1..=6usize {
            let mut row = vec![k.to_string()];
            for domain in FreebaseDomain::GOLD {
                let gold: Vec<String> = domain
                    .gold_standard()
                    .expect("gold domain")
                    .key_attributes()
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let experts = expert_preview(domain).expect("expert preview").keys;
                let (ranked, truth): (&[String], HashSet<String>) = if experts_as_truth {
                    (&gold, experts.iter().cloned().collect())
                } else {
                    (&experts, gold.iter().cloned().collect())
                };
                row.push(fmt3(precision_at_k(ranked, &truth, k)));
            }
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_seven_domains() {
        let t = table2(1e-4, 1);
        for domain in FreebaseDomain::ALL {
            assert!(t.contains(domain.name()), "{}", domain.name());
        }
        assert!(t.contains("27000000"));
    }

    #[test]
    fn table10_contains_gold_tables() {
        let t = table10();
        assert!(t.contains("MUSICAL ARTIST"));
        assert!(t.contains("Films Directed"));
        assert!(t.contains("k=6"));
    }

    #[test]
    fn tables11_and_12_render_previews() {
        let contexts = vec![
            DomainContext::build(FreebaseDomain::Film, 2e-4, 7),
            DomainContext::build(FreebaseDomain::Music, 2e-4, 7),
            DomainContext::build(FreebaseDomain::Tv, 2e-4, 7),
        ];
        let t11 = table11(&contexts);
        assert!(t11.contains("KS=Coverage"));
        assert!(t11.contains("preview score"));
        let t12 = table12(&contexts);
        assert!(t12.contains("tight, d=2"));
        assert!(t12.contains("diverse, d=4"));
    }

    #[test]
    fn tables22_23_reproduce_the_paper_diagonal() {
        let t = tables22_23();
        assert!(t.contains("Table 22"));
        assert!(t.contains("Table 23"));
        // P@1 is 1.0 for every domain in both tables (first expert pick always
        // agrees with the gold standard).
        let p1_line = t
            .lines()
            .find(|l| l.trim_start().starts_with('1') && l.contains("1.000"))
            .unwrap();
        assert_eq!(p1_line.matches("1.000").count(), 5);
    }
}
