//! Synthetic request workloads for the preview service.
//!
//! Replays Zipf-skewed streams of [`PreviewRequest`]s — the access pattern of
//! an entity-graph portal where a handful of popular (space, scoring,
//! algorithm) combinations dominate — against a `datagen` domain. Used by the
//! `preview-serve` load-generator binary and the service smoke test in CI.

use std::collections::HashSet;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use datagen::{zipf::ZipfSampler, FreebaseDomain, SyntheticGenerator};
use entity_graph::EntityGraph;
use preview_core::{KeyScoring, NonKeyScoring, PreviewSpace, ScoringConfig};
use preview_service::{Algorithm, PreviewRequest};

/// Parameters of a synthetic service workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Which synthetic domain to serve.
    pub domain: FreebaseDomain,
    /// Scale factor applied to the domain's Table 2 sizes.
    pub scale: f64,
    /// Seed for both graph generation and request sampling.
    pub seed: u64,
    /// Total number of requests in the stream.
    pub requests: usize,
    /// Number of distinct request templates the stream draws from; smaller
    /// values mean more repetition (and a hotter cache).
    pub unique: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            domain: FreebaseDomain::Film,
            scale: 1e-4,
            seed: 2016,
            requests: 1000,
            unique: 64,
        }
    }
}

/// A generated request stream plus its descriptive statistics.
#[derive(Debug, Clone)]
pub struct ServiceWorkload {
    /// Graph name the requests address (the domain name).
    pub graph_name: String,
    /// The request stream, in submission order.
    pub requests: Vec<PreviewRequest>,
    /// Every scoring configuration appearing in the stream (for eager
    /// precomputation at registration time).
    pub configs: Vec<ScoringConfig>,
    /// Number of distinct result-cache keys in the stream.
    pub unique_keys: usize,
    /// Fraction of requests whose key already appeared earlier (≥ 0.5 for
    /// the default spec, i.e. a cache-friendly workload).
    pub repeated_fraction: f64,
}

/// Generates the entity graph the workload runs against.
pub fn workload_graph(spec: &WorkloadSpec) -> EntityGraph {
    SyntheticGenerator::new(spec.seed).generate(&spec.domain.spec(spec.scale))
}

/// Fingerprint of a request's result-cache key, for repetition accounting.
fn request_key(
    request: &PreviewRequest,
) -> (PreviewSpace, &'static str, &'static str, &'static str) {
    (
        request.space,
        request.algorithm.resolve(&request.space).name(),
        request.scoring.key.label(),
        request.scoring.non_key.label(),
    )
}

/// One random request template.
fn random_template<R: Rng>(rng: &mut R, graph_name: &str) -> PreviewRequest {
    let k = rng.gen_range(1usize..=4);
    let n = k + rng.gen_range(0usize..=4);
    let space = match rng.gen_range(0u32..4) {
        0 | 1 => PreviewSpace::concise(k, n),
        2 => PreviewSpace::tight(k, n, rng.gen_range(2u32..=4)),
        _ => PreviewSpace::diverse(k, n, rng.gen_range(2u32..=3)),
    }
    .expect("k >= 1 and n >= k by construction");
    // Pin the brute force occasionally (cross-checking traffic), but only
    // where it is cheap; everything else picks the best exact algorithm.
    let algorithm = if k <= 2 && rng.gen_bool(0.2) {
        Algorithm::BruteForce
    } else {
        Algorithm::Auto
    };
    let scoring = if rng.gen_bool(0.7) {
        ScoringConfig::coverage()
    } else {
        ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy)
    };
    PreviewRequest::new(graph_name, space)
        .with_algorithm(algorithm)
        .with_scoring(scoring)
}

/// Builds a Zipf-skewed request stream from `spec.unique` templates.
pub fn synth_workload(spec: &WorkloadSpec) -> ServiceWorkload {
    let graph_name = spec.domain.name().to_string();
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed.wrapping_add(0x005e_41ce));
    let unique = spec.unique.max(1);
    let templates: Vec<PreviewRequest> = (0..unique)
        .map(|_| random_template(&mut rng, &graph_name))
        .collect();

    let sampler = ZipfSampler::new(templates.len(), 1.0);
    let mut requests = Vec::with_capacity(spec.requests);
    let mut seen = HashSet::new();
    let mut repeats = 0usize;
    for _ in 0..spec.requests {
        let template = &templates[sampler.sample(&mut rng)];
        if !seen.insert(request_key(template)) {
            repeats += 1;
        }
        requests.push(template.clone());
    }

    let mut configs: Vec<ScoringConfig> = Vec::new();
    for request in &requests {
        if !configs.contains(&request.scoring) {
            configs.push(request.scoring);
        }
    }

    ServiceWorkload {
        graph_name,
        unique_keys: seen.len(),
        repeated_fraction: if requests.is_empty() {
            0.0
        } else {
            repeats as f64 / requests.len() as f64
        },
        requests,
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_for_a_seed() {
        let spec = WorkloadSpec {
            requests: 50,
            unique: 8,
            ..WorkloadSpec::default()
        };
        let a = synth_workload(&spec);
        let b = synth_workload(&spec);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.unique_keys, b.unique_keys);
    }

    #[test]
    fn default_spec_repeats_more_than_half_of_its_keys() {
        let workload = synth_workload(&WorkloadSpec::default());
        assert_eq!(workload.requests.len(), 1000);
        assert!(
            workload.repeated_fraction >= 0.5,
            "repeated fraction {} below 0.5",
            workload.repeated_fraction
        );
        assert!(workload.unique_keys <= 64);
        assert!(!workload.configs.is_empty());
    }

    #[test]
    fn requests_address_the_domain_graph() {
        let spec = WorkloadSpec {
            requests: 20,
            unique: 4,
            ..WorkloadSpec::default()
        };
        let workload = synth_workload(&spec);
        assert_eq!(workload.graph_name, "film");
        assert!(workload
            .requests
            .iter()
            .all(|r| r.graph == "film" && r.version.is_none()));
    }
}
