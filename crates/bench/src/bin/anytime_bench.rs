//! Best-first branch-and-bound benchmark: exactness, pruning power, and the
//! anytime quality-vs-budget curve.
//!
//! Builds a datagen graph, then exercises [`BestFirstDiscovery`] three ways:
//!
//! 1. **Exact path** — on every checked space (concise, tight, diverse) the
//!    best-first result is cross-checked **bitwise** against the brute force:
//!    same preview structure, same description bytes, same score bits. Any
//!    divergence fails the run before timings are reported.
//! 2. **Pruning** — on the large diverse space the search must visit only a
//!    small fraction of the subset lattice: `--check` enforces
//!    `(nodes_expanded + subsets_evaluated) / C(eligible, k)` ≤ 25% and a
//!    wall-clock speedup ≥ 1.5x over brute-force enumeration.
//! 3. **Anytime curve** — a sweep of node budgets records how incumbent
//!    quality (fraction of the optimal score) and the reported optimality
//!    gap converge; `--check` requires the curve to be monotone
//!    non-decreasing and to reach the exact optimum at the largest budget.
//!
//! Pruning ratios and the curve are deterministic; only the wall-clock
//! speedup is load-sensitive, so a floor miss there is re-measured up to two
//! extra times (keeping the best observed speedup) before the gate fails.
//!
//! ```text
//! cargo run -p bench --release --bin anytime-bench
//! cargo run -p bench --release --bin anytime-bench -- --out BENCH_anytime.json --check
//! ```

use std::process::ExitCode;

use bench::util::{min_timed as timed, parse_checked as parse};
use datagen::{FreebaseDomain, SyntheticGenerator};
use preview_core::{
    brute_force_subset_count, AnytimeBudget, BestFirstDiscovery, BruteForceDiscovery, KeyScoring,
    NonKeyScoring, Preview, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};

/// Extra `--check` attempts after a speedup-floor miss (transient external
/// load slows the timed sections unevenly).
const CHECK_RETRIES: usize = 2;

/// Pruning ceiling: the search may visit at most this fraction of the
/// subset lattice on the benchmark's diverse space.
const VISIT_RATIO_CEILING: f64 = 0.25;

/// Wall-clock floor: best-first must beat brute-force enumeration by at
/// least this factor on the benchmark's diverse space.
const SPEEDUP_FLOOR: f64 = 1.5;

/// Node budgets of the anytime sweep (the largest one is far beyond what the
/// benchmark space needs for a proof, so the curve must end exact).
const BUDGETS: [u64; 7] = [1, 4, 16, 64, 256, 1024, 1 << 20];

struct Options {
    domain: FreebaseDomain,
    scale: f64,
    seed: u64,
    /// Repetitions per timed section; the minimum is reported.
    repeats: usize,
    out: Option<String>,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            domain: FreebaseDomain::Film,
            scale: 1e-3,
            seed: 2016,
            repeats: 5,
            out: None,
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--domain" => {
                let name = value_of("--domain")?;
                options.domain = FreebaseDomain::from_name(&name)
                    .ok_or_else(|| format!("unknown domain {name:?}"))?;
            }
            "--scale" => {
                options.scale = parse(&value_of("--scale")?, |v: f64| v > 0.0 && v.is_finite())?
            }
            "--seed" => options.seed = parse(&value_of("--seed")?, |_: u64| true)?,
            "--repeats" => options.repeats = parse(&value_of("--repeats")?, |v: usize| v >= 1)?,
            "--out" => options.out = Some(value_of("--out")?),
            "--check" => options.check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// Bitwise comparison of two optional previews under a scored schema: same
/// structure, same description bytes, same score bits.
fn previews_identical(
    scored: &ScoredSchema,
    reference: &Option<Preview>,
    candidate: &Option<Preview>,
) -> bool {
    match (reference, candidate) {
        (Some(r), Some(c)) => {
            r == c
                && r.describe(scored.schema()) == c.describe(scored.schema())
                && scored.preview_score(r).to_bits() == scored.preview_score(c).to_bits()
        }
        (None, None) => true,
        _ => false,
    }
}

/// Timings of the brute-force-vs-best-first race on the pruning space.
#[derive(Clone, Copy)]
struct Race {
    brute_s: f64,
    best_s: f64,
}

impl Race {
    fn speedup(&self) -> f64 {
        self.brute_s / self.best_s
    }
}

/// Times both engines on `space`, cross-checking the results bitwise.
fn race(scored: &ScoredSchema, space: &PreviewSpace, repeats: usize) -> Result<Race, String> {
    let (brute_s, brute) = timed(repeats, || {
        BruteForceDiscovery::new()
            .discover(scored, space)
            .expect("brute force supports every space")
    });
    let (best_s, best) = timed(repeats, || {
        BestFirstDiscovery::new()
            .discover(scored, space)
            .expect("best-first supports every space")
    });
    if !previews_identical(scored, &brute, &best) {
        return Err(format!(
            "best-first diverges from the brute force on {space:?}"
        ));
    }
    Ok(Race { brute_s, best_s })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "[anytime-bench] generating domain {:?} at scale {} (seed {}) ...",
        options.domain.name(),
        options.scale,
        options.seed
    );
    let spec = options.domain.spec(options.scale);
    let graph = SyntheticGenerator::new(options.seed).generate(&spec);
    let scored = ScoredSchema::build(
        &graph,
        &ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy),
    )
    .expect("scoring the datagen graph succeeds");
    let eligible = scored.eligible_types().len();
    let lattice = brute_force_subset_count(eligible, 3);
    let repeats = options.repeats;

    // --- Exact path: bitwise identity on every space ---------------------
    let spaces = [
        ("concise(3,6)", PreviewSpace::concise(3, 6).expect("valid")),
        (
            "tight(3,6,d=2)",
            PreviewSpace::tight(3, 6, 2).expect("valid"),
        ),
        (
            "diverse(3,6,d=2)",
            PreviewSpace::diverse(3, 6, 2).expect("valid"),
        ),
    ];
    for (label, space) in &spaces {
        let brute = BruteForceDiscovery::new()
            .discover(&scored, space)
            .expect("brute force supports every space");
        let best = BestFirstDiscovery::new()
            .discover(&scored, space)
            .expect("best-first supports every space");
        if !previews_identical(&scored, &brute, &best) {
            eprintln!("error: best-first diverges from the brute force on {label}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "[anytime-bench] bitwise identity holds on all {} spaces",
        spaces.len()
    );

    // --- Pruning + speedup on the diverse space ---------------------------
    let pruning_space = &spaces[2].1;
    let exact = BestFirstDiscovery::new()
        .discover_anytime(&scored, pruning_space, AnytimeBudget::UNLIMITED)
        .expect("best-first supports every space");
    assert!(exact.exact, "unlimited budget must run to proof");
    let stats = exact.stats;
    let visited = stats.nodes_expanded + stats.subsets_evaluated;
    let visit_ratio = visited as f64 / lattice as f64;
    let exact_score = exact.score;

    let first = match race(&scored, pruning_space, repeats) {
        Ok(race) => race,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    // --- Anytime quality-vs-budget curve ----------------------------------
    let mut curve = Vec::with_capacity(BUDGETS.len());
    for &budget in &BUDGETS {
        let outcome = BestFirstDiscovery::new()
            .discover_anytime(&scored, pruning_space, AnytimeBudget::nodes(budget))
            .expect("best-first supports every space");
        curve.push((budget, outcome));
    }
    let curve_json = curve
        .iter()
        .map(|(budget, outcome)| {
            format!(
                "{{\"budget_nodes\":{},\"score\":{:.6},\"quality\":{:.4},\"optimality_gap\":{:.6},\"exact\":{},\"nodes_expanded\":{}}}",
                budget,
                outcome.score,
                if exact_score > 0.0 { outcome.score / exact_score } else { 1.0 },
                outcome.optimality_gap(),
                outcome.exact,
                outcome.stats.nodes_expanded,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n   ");

    let json = format!(
        concat!(
            "{{\"workload\":{{\"domain\":\"{}\",\"scale\":{},\"seed\":{},\"entities\":{},",
            "\"edges\":{},\"eligible_types\":{},\"lattice_subsets\":{}}},\n",
            " \"exact_path\":{{\"spaces\":[\"concise(3,6)\",\"tight(3,6,d=2)\",\"diverse(3,6,d=2)\"],\"bitwise_identical\":true}},\n",
            " \"pruning\":{{\"space\":\"diverse(3,6,d=2)\",\"nodes_expanded\":{},\"nodes_pruned\":{},",
            "\"bound_cutoffs\":{},\"subsets_evaluated\":{},\"visit_ratio\":{:.4},\"visit_ratio_ceiling\":{}}},\n",
            " \"speedup\":{{\"brute_force_s\":{:.6},\"best_first_s\":{:.6},\"speedup\":{:.2},\"floor\":{}}},\n",
            " \"anytime_curve\":[\n   {}\n ],\n",
            " \"peak_rss_bytes\":{}}}"
        ),
        options.domain.name(),
        options.scale,
        options.seed,
        graph.entity_count(),
        graph.edge_count(),
        eligible,
        lattice,
        stats.nodes_expanded,
        stats.nodes_pruned,
        stats.bound_cutoffs,
        stats.subsets_evaluated,
        visit_ratio,
        VISIT_RATIO_CEILING,
        first.brute_s,
        first.best_s,
        first.speedup(),
        SPEEDUP_FLOOR,
        curve_json,
        bench::util::json_opt_u64(bench::util::peak_rss_bytes()),
    );
    println!("{json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[anytime-bench] summary written to {path}");
    }

    if options.check {
        if eligible < 20 {
            eprintln!(
                "check failed: only {eligible} eligible types: the discovery workload is too \
                 small to be meaningful"
            );
            return ExitCode::FAILURE;
        }
        // Deterministic gates first: pruning ratio and curve shape.
        if visit_ratio > VISIT_RATIO_CEILING {
            eprintln!(
                "check failed: visit ratio {visit_ratio:.4} above the {VISIT_RATIO_CEILING} \
                 ceiling ({visited} of {lattice} subsets)"
            );
            return ExitCode::FAILURE;
        }
        let mut last = -1.0f64;
        for (budget, outcome) in &curve {
            if outcome.score < last {
                eprintln!(
                    "check failed: anytime curve regressed at budget {budget}: {} < {last}",
                    outcome.score
                );
                return ExitCode::FAILURE;
            }
            last = outcome.score;
        }
        let (_, final_outcome) = curve.last().expect("curve is non-empty");
        if !final_outcome.exact || final_outcome.score.to_bits() != exact_score.to_bits() {
            eprintln!(
                "check failed: the largest budget did not converge to the exact optimum \
                 ({} vs {exact_score})",
                final_outcome.score
            );
            return ExitCode::FAILURE;
        }
        // Load-sensitive gate last: wall-clock speedup, best of retries.
        let mut best_speedup = first.speedup();
        for attempt in 0..=CHECK_RETRIES {
            if best_speedup >= SPEEDUP_FLOOR {
                break;
            }
            if attempt == CHECK_RETRIES {
                eprintln!(
                    "check failed: best-first speedup {best_speedup:.2}x below the \
                     {SPEEDUP_FLOOR}x floor"
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[anytime-bench] speedup floor missed (attempt {}), re-measuring in case of \
                 transient external load ...",
                attempt + 1
            );
            match race(&scored, pruning_space, repeats) {
                Ok(retry) => best_speedup = best_speedup.max(retry.speedup()),
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        eprintln!(
            "[anytime-bench] checks passed: visit ratio {visit_ratio:.4} (ceiling \
             {VISIT_RATIO_CEILING}), speedup {best_speedup:.2}x (floor {SPEEDUP_FLOOR}x), \
             anytime curve monotone and convergent"
        );
    }
    ExitCode::SUCCESS
}
