//! Observability overhead benchmark and snapshot schema gate.
//!
//! Replays the same Zipf-skewed service workload three times per round —
//! two passes with the recorder *disabled* (the production default, where
//! every `span!` is a single relaxed atomic load) and one with it *enabled*
//! (full span recording into histograms and the flight ring) — interleaved
//! so load drift hits all series alike. Overhead is judged on paired
//! per-round ratios (best round wins), and `--check` enforces the floors
//! the `preview-obs` crate promises:
//!
//! * **disabled**: the second disabled pass within 1% of the first (the
//!   two run identical code, so this gates that the disabled path has no
//!   measurable cost beyond run-to-run noise),
//! * **enabled**: within 5% of the faster disabled pass of its round.
//!
//! A floor miss re-measures the whole sweep a couple of times (keeping the
//! per-series minima) before failing, so a CI load spike cannot flake the
//! gate. Independently of timing, one unmeasured enabled pass produces an
//! [`ObsSnapshot`](preview_obs::ObsSnapshot) whose JSON must parse with the crate's own parser and
//! enumerate every stage and counter, with exact request counts in the
//! request/queue-wait histograms.
//!
//! ```text
//! cargo run -p bench --release --bin obs-bench
//! cargo run -p bench --release --bin obs-bench -- --out BENCH_obs.json --check
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use bench::service_workload::{synth_workload, workload_graph, ServiceWorkload, WorkloadSpec};
use bench::util::parse_checked as parse;
use datagen::FreebaseDomain;
use entity_graph::EntityGraph;
use preview_obs::{Counter, DumpReason, JsonValue, ObsConfig, Recorder, Stage};
use preview_service::{GraphRegistry, PreviewService, ServiceConfig};

/// Overhead floors enforced by `--check`.
const DISABLED_OVERHEAD_FLOOR: f64 = 0.01;
const ENABLED_OVERHEAD_FLOOR: f64 = 0.05;
/// Extra full sweeps after a floor miss before failing.
const CHECK_RETRIES: usize = 2;

struct Options {
    spec: WorkloadSpec,
    workers: usize,
    rounds: usize,
    out: Option<String>,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            spec: WorkloadSpec {
                scale: 5e-5,
                requests: 400,
                ..WorkloadSpec::default()
            },
            workers: 2,
            rounds: 3,
            out: None,
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--requests" => {
                options.spec.requests = parse(&value_of("--requests")?, |v: usize| v >= 1)?
            }
            "--unique" => options.spec.unique = parse(&value_of("--unique")?, |v: usize| v >= 1)?,
            "--seed" => options.spec.seed = parse(&value_of("--seed")?, |_: u64| true)?,
            "--scale" => {
                options.spec.scale =
                    parse(&value_of("--scale")?, |v: f64| v > 0.0 && v.is_finite())?
            }
            "--domain" => {
                let name = value_of("--domain")?;
                options.spec.domain = FreebaseDomain::from_name(&name)
                    .ok_or_else(|| format!("unknown domain {name:?}"))?;
            }
            "--workers" => options.workers = parse(&value_of("--workers")?, |v: usize| v >= 1)?,
            "--rounds" => options.rounds = parse(&value_of("--rounds")?, |v: usize| v >= 1)?,
            "--out" => options.out = Some(value_of("--out")?),
            "--check" => options.check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// One pass over the whole workload against a fresh service; returns the
/// elapsed seconds (and the service, so the snapshot pass can export it).
fn run_pass(
    graph: &EntityGraph,
    workload: &ServiceWorkload,
    options: &Options,
    recorder: Arc<Recorder>,
) -> (f64, PreviewService) {
    let registry = Arc::new(GraphRegistry::new());
    registry
        .register_precomputed(&workload.graph_name, graph.clone(), &workload.configs)
        .expect("scoring the workload graph succeeds");
    let service = PreviewService::start_with_recorder(
        ServiceConfig {
            workers: options.workers,
            queue_capacity: 256,
            cache_capacity: 512,
            cache_shards: 8,
        },
        registry,
        recorder,
    );
    let start = Instant::now();
    let handles: Vec<_> = workload
        .requests
        .iter()
        .map(|request| service.submit(request.clone()).expect("queue accepts"))
        .collect();
    for handle in handles {
        handle.wait().expect("workload requests succeed");
    }
    (start.elapsed().as_secs_f64(), service)
}

/// Per-series minima and best *paired* per-round ratios over one or more
/// interleaved sweeps.
///
/// Overhead is judged per round: all three passes in a round run back to
/// back under the same machine load, so their ratio cancels the slow drift
/// (thermal throttling, co-tenants) that makes cross-round minima flaky.
/// The best ratio across rounds stands for the gate — if any round shows
/// the enabled pass within the floor of its own baseline, the instrumented
/// path genuinely costs no more than that.
#[derive(Clone, Copy)]
struct SeriesMinima {
    baseline_s: f64,
    disabled_s: f64,
    enabled_s: f64,
    disabled_overhead: f64,
    enabled_overhead: f64,
}

impl SeriesMinima {
    const EMPTY: SeriesMinima = SeriesMinima {
        baseline_s: f64::INFINITY,
        disabled_s: f64::INFINITY,
        enabled_s: f64::INFINITY,
        disabled_overhead: f64::INFINITY,
        enabled_overhead: f64::INFINITY,
    };
}

/// Runs `rounds` interleaved baseline/disabled/enabled passes, folding the
/// observed times and per-round overhead ratios into `minima`.
fn sweep(
    graph: &EntityGraph,
    workload: &ServiceWorkload,
    options: &Options,
    mut minima: SeriesMinima,
) -> SeriesMinima {
    for round in 0..options.rounds {
        let (baseline_s, _) = run_pass(graph, workload, options, Arc::new(Recorder::default()));
        let (disabled_s, _) = run_pass(graph, workload, options, Arc::new(Recorder::default()));
        let enabled = Arc::new(Recorder::default());
        enabled.enable();
        let (enabled_s, _) = run_pass(graph, workload, options, Arc::clone(&enabled));
        enabled.disable();
        minima.baseline_s = minima.baseline_s.min(baseline_s);
        minima.disabled_s = minima.disabled_s.min(disabled_s);
        minima.enabled_s = minima.enabled_s.min(enabled_s);
        // The baseline and disabled passes run identical code, so either is
        // a fair denominator; the faster one is the stricter comparison the
        // round supports.
        minima.disabled_overhead = minima.disabled_overhead.min(disabled_s / baseline_s - 1.0);
        minima.enabled_overhead = minima
            .enabled_overhead
            .min(enabled_s / baseline_s.min(disabled_s) - 1.0);
        eprintln!(
            "[obs-bench] round {}: baseline {:.4}s, disabled {:.4}s, enabled {:.4}s",
            round + 1,
            baseline_s,
            disabled_s,
            enabled_s
        );
    }
    minima
}

/// Structural requirements on the enabled-pass snapshot JSON. Returns the
/// failures (empty when the document is sound).
fn snapshot_failures(json: &str, requests: u64) -> Vec<String> {
    let mut failures = Vec::new();
    let parsed = match JsonValue::parse(json) {
        Ok(parsed) => parsed,
        Err(error) => return vec![format!("snapshot JSON does not parse: {error}")],
    };
    match parsed.get("stages").and_then(|s| s.as_object()) {
        Some(stages) => {
            for stage in Stage::ALL {
                match stages.get(stage.name()) {
                    None => failures.push(format!("stage {:?} missing", stage.name())),
                    Some(entry) => {
                        if entry.get("p99_us").and_then(|v| v.as_u64()).is_none() {
                            failures.push(format!("stage {:?} lacks p99_us", stage.name()));
                        }
                    }
                }
            }
            for (stage, expected) in [(Stage::Request, requests), (Stage::QueueWait, requests)] {
                let count = stages
                    .get(stage.name())
                    .and_then(|e| e.get("count"))
                    .and_then(|c| c.as_u64());
                if count != Some(expected) {
                    failures.push(format!(
                        "stage {:?} count {count:?} != {expected}",
                        stage.name()
                    ));
                }
            }
        }
        None => failures.push("stages object missing".to_string()),
    }
    match parsed.get("counters").and_then(|c| c.as_object()) {
        Some(counters) => {
            for counter in Counter::ALL {
                if !counters.contains_key(counter.name()) {
                    failures.push(format!("counter {:?} missing", counter.name()));
                }
            }
        }
        None => failures.push("counters object missing".to_string()),
    }
    let latency_count = parsed
        .get("service_latency")
        .and_then(|l| l.get("count"))
        .and_then(|c| c.as_u64());
    if latency_count != Some(requests) {
        failures.push(format!(
            "service_latency count {latency_count:?} != {requests}"
        ));
    }
    if parsed.get("enabled") != Some(&JsonValue::Bool(true)) {
        failures.push("snapshot does not report enabled=true".to_string());
    }
    if parsed
        .get("dumps")
        .and_then(|d| d.as_array())
        .map(|d| d.len())
        != Some(1)
    {
        failures.push("on-demand dump missing from snapshot".to_string());
    }
    failures
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "[obs-bench] generating domain {:?} at scale {} ...",
        options.spec.domain.name(),
        options.spec.scale
    );
    let graph = workload_graph(&options.spec);
    let workload = synth_workload(&options.spec);
    eprintln!(
        "[obs-bench] {} requests over {} unique keys, {} worker(s), {} round(s)",
        workload.requests.len(),
        workload.unique_keys,
        options.workers,
        options.rounds
    );

    let mut minima = sweep(&graph, &workload, &options, SeriesMinima::EMPTY);
    if options.check {
        let mut attempt = 0;
        while (minima.disabled_overhead > DISABLED_OVERHEAD_FLOOR
            || minima.enabled_overhead > ENABLED_OVERHEAD_FLOOR)
            && attempt < CHECK_RETRIES
        {
            attempt += 1;
            eprintln!(
                "[obs-bench] overhead floors missed (disabled {:+.2}%, enabled {:+.2}%), \
                 re-measuring (attempt {attempt}) ...",
                minima.disabled_overhead * 100.0,
                minima.enabled_overhead * 100.0
            );
            minima = sweep(&graph, &workload, &options, minima);
        }
    }

    // One unmeasured enabled pass drives the snapshot/schema gate: the
    // recorder is configured with a slow threshold so the slow-dump path is
    // reachable, and an on-demand dump pins the dumps array.
    let snapshot_recorder = Arc::new(Recorder::new(ObsConfig {
        slow_threshold_us: Some(10_000_000),
        ..ObsConfig::default()
    }));
    snapshot_recorder.enable();
    let (_, service) = run_pass(&graph, &workload, &options, Arc::clone(&snapshot_recorder));
    snapshot_recorder.capture_dump(DumpReason::OnDemand, "obs-bench snapshot pass");
    let snapshot_json = service.snapshot().to_json();
    snapshot_recorder.disable();
    drop(service);
    let schema_failures = snapshot_failures(&snapshot_json, workload.requests.len() as u64);

    let json = format!(
        concat!(
            "{{\"workload\":{{\"domain\":\"{}\",\"scale\":{},\"seed\":{},",
            "\"requests\":{},\"unique_keys\":{},\"workers\":{},\"rounds\":{}}},\n",
            " \"series\":{{\"baseline_s\":{:.6},\"disabled_s\":{:.6},\"enabled_s\":{:.6}}},\n",
            " \"overhead\":{{\"disabled\":{:.6},\"enabled\":{:.6}}},\n",
            " \"check\":{{\"disabled_floor\":{},\"enabled_floor\":{},\"snapshot_sound\":{}}},\n",
            " \"snapshot\":{}}}"
        ),
        workload.graph_name,
        options.spec.scale,
        options.spec.seed,
        workload.requests.len(),
        workload.unique_keys,
        options.workers,
        options.rounds,
        minima.baseline_s,
        minima.disabled_s,
        minima.enabled_s,
        minima.disabled_overhead,
        minima.enabled_overhead,
        DISABLED_OVERHEAD_FLOOR,
        ENABLED_OVERHEAD_FLOOR,
        schema_failures.is_empty(),
        snapshot_json,
    );
    println!("{json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[obs-bench] summary written to {path}");
    }

    if options.check {
        let mut failures = schema_failures;
        if minima.disabled_overhead > DISABLED_OVERHEAD_FLOOR {
            failures.push(format!(
                "disabled overhead {:.2}% above the {:.0}% floor",
                minima.disabled_overhead * 100.0,
                DISABLED_OVERHEAD_FLOOR * 100.0
            ));
        }
        if minima.enabled_overhead > ENABLED_OVERHEAD_FLOOR {
            failures.push(format!(
                "enabled overhead {:.2}% above the {:.0}% floor",
                minima.enabled_overhead * 100.0,
                ENABLED_OVERHEAD_FLOOR * 100.0
            ));
        }
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("check failed: {failure}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[obs-bench] checks passed: disabled {:+.2}%, enabled {:+.2}%, snapshot sound",
            minima.disabled_overhead * 100.0,
            minima.enabled_overhead * 100.0
        );
    }
    ExitCode::SUCCESS
}
