//! Observability overhead benchmark and snapshot schema gate.
//!
//! Replays the same Zipf-skewed service workload three times per round —
//! two passes with the recorder *disabled* (the production default, where
//! every `span!` is a single relaxed atomic load) and one with it *enabled*
//! (full span recording into histograms and the flight ring) — interleaved
//! so load drift hits all series alike. Overhead is judged on paired
//! per-round ratios (best round wins), and `--check` enforces the floors
//! the `preview-obs` crate promises:
//!
//! * **disabled**: the second disabled pass within 1% of the first (the
//!   two run identical code, so this gates that the disabled path has no
//!   measurable cost beyond run-to-run noise),
//! * **enabled**: within 5% of the faster disabled pass of its round.
//!
//! A floor miss re-measures the whole sweep a couple of times (keeping the
//! per-series minima) before failing, so a CI load spike cannot flake the
//! gate. The enabled passes run with head sampling on, so the gated path
//! includes the full trace-tree pipeline (span parenting, retention
//! decisions), not just histogram recording.
//!
//! Independently of timing, one unmeasured enabled pass produces an
//! [`ObsSnapshot`](preview_obs::ObsSnapshot) whose JSON must parse with the crate's own parser and
//! enumerate every stage and counter, with exact request counts in the
//! request/queue-wait histograms.
//!
//! A final *trace check* scenario drives tail-based sampling end to end:
//! the Zipf workload runs under a slow-request threshold with windowed
//! metrics and an SLO attached, then one injected-slow request and one
//! injected-slow-and-panicking request are served from cold graphs. The
//! scenario asserts both trace trees are retained with correct parent
//! links, the slow tree's stage spans sum to its root span, the latency
//! histogram's top bucket carries the slow trace id as its exemplar, the
//! SLO burn rate flips from zero to positive, the slow+panic request is
//! dumped exactly once with both reasons joined, and the Prometheus
//! rendering re-parses numerically equal to the snapshot.
//!
//! ```text
//! cargo run -p bench --release --bin obs-bench
//! cargo run -p bench --release --bin obs-bench -- --out BENCH_obs.json --check
//! cargo run -p bench --release --bin obs-bench -- --top   # one-shot dashboard
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use bench::service_workload::{synth_workload, workload_graph, ServiceWorkload, WorkloadSpec};
use bench::util::parse_checked as parse;
use datagen::FreebaseDomain;
use entity_graph::EntityGraph;
use preview_obs::{
    render_top, roundtrip_failures, Counter, DumpReason, JsonValue, ObsConfig, Recorder,
    RetainReason, SloSpec, Stage, TimeSeriesConfig, TraceTree,
};
use preview_service::{GraphRegistry, PreviewService, ServiceConfig};

/// Overhead floors enforced by `--check`.
const DISABLED_OVERHEAD_FLOOR: f64 = 0.01;
const ENABLED_OVERHEAD_FLOOR: f64 = 0.05;
/// Extra full sweeps after a floor miss before failing.
const CHECK_RETRIES: usize = 2;

struct Options {
    spec: WorkloadSpec,
    workers: usize,
    rounds: usize,
    out: Option<String>,
    check: bool,
    top: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            spec: WorkloadSpec {
                scale: 5e-5,
                requests: 400,
                ..WorkloadSpec::default()
            },
            workers: 2,
            rounds: 3,
            out: None,
            check: false,
            top: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--requests" => {
                options.spec.requests = parse(&value_of("--requests")?, |v: usize| v >= 1)?
            }
            "--unique" => options.spec.unique = parse(&value_of("--unique")?, |v: usize| v >= 1)?,
            "--seed" => options.spec.seed = parse(&value_of("--seed")?, |_: u64| true)?,
            "--scale" => {
                options.spec.scale =
                    parse(&value_of("--scale")?, |v: f64| v > 0.0 && v.is_finite())?
            }
            "--domain" => {
                let name = value_of("--domain")?;
                options.spec.domain = FreebaseDomain::from_name(&name)
                    .ok_or_else(|| format!("unknown domain {name:?}"))?;
            }
            "--workers" => options.workers = parse(&value_of("--workers")?, |v: usize| v >= 1)?,
            "--rounds" => options.rounds = parse(&value_of("--rounds")?, |v: usize| v >= 1)?,
            "--out" => options.out = Some(value_of("--out")?),
            "--check" => options.check = true,
            "--top" => options.top = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// One pass over the whole workload against a fresh service; returns the
/// elapsed seconds (and the service, so the snapshot pass can export it).
fn run_pass(
    graph: &EntityGraph,
    workload: &ServiceWorkload,
    options: &Options,
    recorder: Arc<Recorder>,
) -> (f64, PreviewService) {
    let registry = Arc::new(GraphRegistry::new());
    registry
        .register_precomputed(&workload.graph_name, graph.clone(), &workload.configs)
        .expect("scoring the workload graph succeeds");
    let service = PreviewService::start_with_recorder(
        ServiceConfig {
            workers: options.workers,
            queue_capacity: 256,
            cache_capacity: 512,
            cache_shards: 8,
        },
        registry,
        recorder,
    );
    let start = Instant::now();
    let handles: Vec<_> = workload
        .requests
        .iter()
        .map(|request| service.submit(request.clone()).expect("queue accepts"))
        .collect();
    for handle in handles {
        handle.wait().expect("workload requests succeed");
    }
    (start.elapsed().as_secs_f64(), service)
}

/// Per-series minima and best *paired* per-round ratios over one or more
/// interleaved sweeps.
///
/// Overhead is judged per round: all three passes in a round run back to
/// back under the same machine load, so their ratio cancels the slow drift
/// (thermal throttling, co-tenants) that makes cross-round minima flaky.
/// The best ratio across rounds stands for the gate — if any round shows
/// the enabled pass within the floor of its own baseline, the instrumented
/// path genuinely costs no more than that.
#[derive(Clone, Copy)]
struct SeriesMinima {
    baseline_s: f64,
    disabled_s: f64,
    enabled_s: f64,
    disabled_overhead: f64,
    enabled_overhead: f64,
}

impl SeriesMinima {
    const EMPTY: SeriesMinima = SeriesMinima {
        baseline_s: f64::INFINITY,
        disabled_s: f64::INFINITY,
        enabled_s: f64::INFINITY,
        disabled_overhead: f64::INFINITY,
        enabled_overhead: f64::INFINITY,
    };
}

/// Runs `rounds` interleaved baseline/disabled/enabled passes, folding the
/// observed times and per-round overhead ratios into `minima`.
fn sweep(
    graph: &EntityGraph,
    workload: &ServiceWorkload,
    options: &Options,
    mut minima: SeriesMinima,
) -> SeriesMinima {
    for round in 0..options.rounds {
        let (baseline_s, _) = run_pass(graph, workload, options, Arc::new(Recorder::default()));
        let (disabled_s, _) = run_pass(graph, workload, options, Arc::new(Recorder::default()));
        // Head sampling on: the enabled gate covers the trace-tree pipeline
        // (per-request span parenting and retention), not just histograms.
        let enabled = Arc::new(Recorder::new(ObsConfig::default().with_sample_every(8)));
        enabled.enable();
        let (enabled_s, _) = run_pass(graph, workload, options, Arc::clone(&enabled));
        enabled.disable();
        minima.baseline_s = minima.baseline_s.min(baseline_s);
        minima.disabled_s = minima.disabled_s.min(disabled_s);
        minima.enabled_s = minima.enabled_s.min(enabled_s);
        // The baseline and disabled passes run identical code, so either is
        // a fair denominator; the faster one is the stricter comparison the
        // round supports.
        minima.disabled_overhead = minima.disabled_overhead.min(disabled_s / baseline_s - 1.0);
        minima.enabled_overhead = minima
            .enabled_overhead
            .min(enabled_s / baseline_s.min(disabled_s) - 1.0);
        eprintln!(
            "[obs-bench] round {}: baseline {:.4}s, disabled {:.4}s, enabled {:.4}s",
            round + 1,
            baseline_s,
            disabled_s,
            enabled_s
        );
    }
    minima
}

/// Structural requirements on the enabled-pass snapshot JSON. Returns the
/// failures (empty when the document is sound).
fn snapshot_failures(json: &str, requests: u64) -> Vec<String> {
    let mut failures = Vec::new();
    let parsed = match JsonValue::parse(json) {
        Ok(parsed) => parsed,
        Err(error) => return vec![format!("snapshot JSON does not parse: {error}")],
    };
    match parsed.get("stages").and_then(|s| s.as_object()) {
        Some(stages) => {
            for stage in Stage::ALL {
                match stages.get(stage.name()) {
                    None => failures.push(format!("stage {:?} missing", stage.name())),
                    Some(entry) => {
                        if entry.get("p99_us").and_then(|v| v.as_u64()).is_none() {
                            failures.push(format!("stage {:?} lacks p99_us", stage.name()));
                        }
                    }
                }
            }
            for (stage, expected) in [(Stage::Request, requests), (Stage::QueueWait, requests)] {
                let count = stages
                    .get(stage.name())
                    .and_then(|e| e.get("count"))
                    .and_then(|c| c.as_u64());
                if count != Some(expected) {
                    failures.push(format!(
                        "stage {:?} count {count:?} != {expected}",
                        stage.name()
                    ));
                }
            }
        }
        None => failures.push("stages object missing".to_string()),
    }
    match parsed.get("counters").and_then(|c| c.as_object()) {
        Some(counters) => {
            for counter in Counter::ALL {
                if !counters.contains_key(counter.name()) {
                    failures.push(format!("counter {:?} missing", counter.name()));
                }
            }
        }
        None => failures.push("counters object missing".to_string()),
    }
    let latency_count = parsed
        .get("service_latency")
        .and_then(|l| l.get("count"))
        .and_then(|c| c.as_u64());
    if latency_count != Some(requests) {
        failures.push(format!(
            "service_latency count {latency_count:?} != {requests}"
        ));
    }
    if parsed.get("enabled") != Some(&JsonValue::Bool(true)) {
        failures.push("snapshot does not report enabled=true".to_string());
    }
    if parsed
        .get("dumps")
        .and_then(|d| d.as_array())
        .map(|d| d.len())
        != Some(1)
    {
        failures.push("on-demand dump missing from snapshot".to_string());
    }
    failures
}

/// Structural checks on one retained trace tree: exactly one root (span id
/// 1, parent 0), every non-root span's parent resolves, and — when
/// `check_sum` is set — the direct children of the root account for the
/// root's duration within clock resolution.
fn tree_failures(tree: &TraceTree, label: &str, check_sum: bool) -> Vec<String> {
    let mut failures = Vec::new();
    let roots: Vec<_> = tree.spans.iter().filter(|s| s.parent_id == 0).collect();
    if roots.len() != 1 {
        failures.push(format!(
            "{label}: {} roots, expected exactly 1",
            roots.len()
        ));
        return failures;
    }
    let root = roots[0];
    if root.stage != Stage::Request {
        failures.push(format!("{label}: root stage is {:?}", root.stage.name()));
    }
    for span in &tree.spans {
        if span.parent_id != 0 && !tree.spans.iter().any(|s| s.span_id == span.parent_id) {
            failures.push(format!(
                "{label}: span {} ({}) has unresolvable parent {}",
                span.span_id,
                span.stage.name(),
                span.parent_id
            ));
        }
    }
    if check_sum {
        let child_sum: u64 = tree
            .spans
            .iter()
            .filter(|s| s.parent_id == root.span_id)
            .map(|s| s.duration_us)
            .sum();
        // Root = queue wait + compute + bookkeeping; the untracked gaps
        // (resolve, stats, clock quantization) must stay within 10% of the
        // root or 20ms, whichever is larger.
        let tolerance = (root.duration_us / 10).max(20_000);
        if child_sum > root.duration_us || root.duration_us - child_sum > tolerance {
            failures.push(format!(
                "{label}: stage spans sum to {child_sum}us vs root {}us (tolerance {tolerance}us)",
                root.duration_us
            ));
        }
    }
    failures
}

/// Outcome of the tail-sampling end-to-end scenario.
struct TraceCheck {
    burn_before: f64,
    burn_after: f64,
    retained: usize,
    failures: Vec<String>,
    snapshot: preview_obs::ObsSnapshot,
}

/// Drives tail-based sampling end to end: the Zipf workload under a
/// slow-request threshold + windowed metrics + one SLO, then an injected
/// 400ms request on a cold graph and an injected slow-and-panicking
/// request on another, asserting retention, parent links, span sums,
/// exemplar linkage, dump dedup, SLO burn flip, and export round-trip.
fn trace_check(graph: &EntityGraph, workload: &ServiceWorkload, options: &Options) -> TraceCheck {
    const SLOW_THRESHOLD_US: u64 = 250_000;
    const SLO_THRESHOLD_US: u64 = 50_000;
    let mut failures = Vec::new();

    let recorder = Arc::new(Recorder::new(
        ObsConfig::default()
            .with_slow_threshold(SLOW_THRESHOLD_US)
            .with_stage_threshold(Stage::Discovery, 200_000),
    ));
    recorder.enable();
    let registry = Arc::new(GraphRegistry::new());
    registry
        .register_precomputed(&workload.graph_name, graph.clone(), &workload.configs)
        .expect("scoring the workload graph succeeds");
    // Plainly-registered cold graphs: their first request always computes,
    // so the injected delay/panic fire inside a real discovery span.
    registry.register("slowg", graph.clone());
    registry.register("panicg", graph.clone());
    let service = PreviewService::start_with_recorder(
        ServiceConfig {
            workers: options.workers,
            queue_capacity: 256,
            cache_capacity: 512,
            cache_shards: 8,
        },
        registry,
        Arc::clone(&recorder),
    );
    service.configure_timeseries(TimeSeriesConfig {
        resolution_us: 0,
        window_ticks: 60,
    });
    service.add_slo(SloSpec::new("latency-p99", 0.99, SLO_THRESHOLD_US));
    service.tick_metrics(); // seed the baseline

    // Phase 1: the plain workload, submitted sequentially so queue wait
    // cannot push honest requests over the SLO threshold.
    for request in &workload.requests {
        service
            .submit_wait(request.clone())
            .expect("workload requests succeed");
    }
    service.tick_metrics();
    let before = service.snapshot();
    let burn_before = before.slos[0].slow_burn;
    if burn_before != 0.0 {
        failures.push(format!(
            "SLO burn is {burn_before} before any injected slowness"
        ));
    }
    if !before.traces.is_empty() {
        failures.push(format!(
            "{} trees retained before any retention trigger",
            before.traces.len()
        ));
    }

    // Phase 2: one injected-slow request on a cold graph.
    service.inject_delay_next(400_000);
    let mut slow_request = workload.requests[0].clone();
    slow_request.graph = "slowg".to_string();
    let slow_response = service
        .submit_wait(slow_request)
        .expect("slow request succeeds");
    service.tick_metrics();
    let slow_trace = slow_response.trace.expect("worker-served response traced");

    // Phase 3: one injected slow-and-panicking request on another cold
    // graph; the caller sees the typed panic error.
    service.inject_delay_next(300_000);
    service.inject_panic_next();
    let mut panic_request = workload.requests[0].clone();
    panic_request.graph = "panicg".to_string();
    if service.submit_wait(panic_request).is_ok() {
        failures.push("injected panic did not surface as an error".to_string());
    }

    let snapshot = service.snapshot();
    let burn_after = snapshot.slos[0].slow_burn;
    if burn_after <= 0.0 {
        failures.push(format!(
            "SLO burn did not flip positive after the injected slow tail ({burn_after})"
        ));
    }

    // Retention: exactly the two injected requests, each with the right
    // typed reasons, well-formed parent links, and the slow tree's stage
    // spans summing to its root span.
    match snapshot.traces.iter().find(|t| t.trace == slow_trace) {
        None => failures.push("injected slow request's tree not retained".to_string()),
        Some(tree) => {
            if tree.reasons != vec![RetainReason::Slow] {
                failures.push(format!("slow tree reasons {:?}", tree.reasons));
            }
            if !tree.detail.contains("graph=slowg") {
                failures.push(format!("slow tree detail {:?}", tree.detail));
            }
            failures.extend(tree_failures(tree, "slow tree", true));
        }
    }
    match snapshot
        .traces
        .iter()
        .find(|t| t.reasons.contains(&RetainReason::Panic))
    {
        None => failures.push("panicking request's tree not retained".to_string()),
        Some(tree) => {
            if tree.reasons != vec![RetainReason::Slow, RetainReason::Panic] {
                failures.push(format!("panic tree reasons {:?}", tree.reasons));
            }
            if !tree.detail.contains("graph=panicg") {
                failures.push(format!("panic tree detail {:?}", tree.detail));
            }
            failures.extend(tree_failures(tree, "panic tree", false));
        }
    }

    // Dump dedup: the slow-and-panicked request is dumped once, with both
    // reasons joined — not once per reason.
    let dumps = recorder.dumps();
    let joined = dumps.iter().filter(|d| d.reason == "slow+panic").count();
    if joined != 1 {
        failures.push(format!("{joined} slow+panic dumps, expected exactly 1"));
    }

    // Exemplar linkage: the top non-empty service-latency bucket (the
    // injected 400ms request) carries the slow trace id.
    match &snapshot.service_latency {
        None => failures.push("service latency histogram missing".to_string()),
        Some(latency) => {
            let top = latency.bucket_counts().iter().rposition(|&c| c > 0);
            match top {
                None => failures.push("service latency histogram empty".to_string()),
                Some(bucket) => {
                    let exemplar = latency.bucket_exemplars()[bucket];
                    if exemplar != slow_trace.as_u64() {
                        failures.push(format!(
                            "top-bucket exemplar {exemplar:#x} != slow trace {:#x}",
                            slow_trace.as_u64()
                        ));
                    }
                }
            }
        }
    }

    // The Prometheus rendering of this snapshot re-parses numerically equal.
    for failure in roundtrip_failures(&snapshot) {
        failures.push(format!("prometheus round-trip: {failure}"));
    }

    recorder.disable();
    TraceCheck {
        burn_before,
        burn_after,
        retained: snapshot.traces.len(),
        failures,
        snapshot,
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "[obs-bench] generating domain {:?} at scale {} ...",
        options.spec.domain.name(),
        options.spec.scale
    );
    let graph = workload_graph(&options.spec);
    let workload = synth_workload(&options.spec);
    eprintln!(
        "[obs-bench] {} requests over {} unique keys, {} worker(s), {} round(s)",
        workload.requests.len(),
        workload.unique_keys,
        options.workers,
        options.rounds
    );

    let mut minima = sweep(&graph, &workload, &options, SeriesMinima::EMPTY);
    if options.check {
        let mut attempt = 0;
        while (minima.disabled_overhead > DISABLED_OVERHEAD_FLOOR
            || minima.enabled_overhead > ENABLED_OVERHEAD_FLOOR)
            && attempt < CHECK_RETRIES
        {
            attempt += 1;
            eprintln!(
                "[obs-bench] overhead floors missed (disabled {:+.2}%, enabled {:+.2}%), \
                 re-measuring (attempt {attempt}) ...",
                minima.disabled_overhead * 100.0,
                minima.enabled_overhead * 100.0
            );
            minima = sweep(&graph, &workload, &options, minima);
        }
    }

    // One unmeasured enabled pass drives the snapshot/schema gate: the
    // recorder is configured with a slow threshold so the slow-dump path is
    // reachable, and an on-demand dump pins the dumps array.
    let snapshot_recorder = Arc::new(Recorder::new(ObsConfig {
        slow_threshold_us: Some(10_000_000),
        ..ObsConfig::default()
    }));
    snapshot_recorder.enable();
    let (_, service) = run_pass(&graph, &workload, &options, Arc::clone(&snapshot_recorder));
    snapshot_recorder.capture_dump(DumpReason::OnDemand, "obs-bench snapshot pass");
    let snapshot_json = service.snapshot().to_json();
    snapshot_recorder.disable();
    drop(service);
    let schema_failures = snapshot_failures(&snapshot_json, workload.requests.len() as u64);

    // Tail-sampling end-to-end scenario (trace retention, exemplars, SLO
    // burn flip, dump dedup, Prometheus round-trip).
    eprintln!("[obs-bench] running trace-retention scenario ...");
    let trace = trace_check(&graph, &workload, &options);
    for failure in &trace.failures {
        eprintln!("[obs-bench] trace check: {failure}");
    }
    if options.top {
        println!("{}", render_top(&trace.snapshot));
    }

    let json = format!(
        concat!(
            "{{\"workload\":{{\"domain\":\"{}\",\"scale\":{},\"seed\":{},",
            "\"requests\":{},\"unique_keys\":{},\"workers\":{},\"rounds\":{}}},\n",
            " \"series\":{{\"baseline_s\":{:.6},\"disabled_s\":{:.6},\"enabled_s\":{:.6}}},\n",
            " \"overhead\":{{\"disabled\":{:.6},\"enabled\":{:.6}}},\n",
            " \"check\":{{\"disabled_floor\":{},\"enabled_floor\":{},\"snapshot_sound\":{}}},\n",
            " \"trace_check\":{{\"burn_before\":{:.6},\"burn_after\":{:.6},",
            "\"retained\":{},\"sound\":{}}},\n",
            " \"snapshot\":{}}}"
        ),
        workload.graph_name,
        options.spec.scale,
        options.spec.seed,
        workload.requests.len(),
        workload.unique_keys,
        options.workers,
        options.rounds,
        minima.baseline_s,
        minima.disabled_s,
        minima.enabled_s,
        minima.disabled_overhead,
        minima.enabled_overhead,
        DISABLED_OVERHEAD_FLOOR,
        ENABLED_OVERHEAD_FLOOR,
        schema_failures.is_empty(),
        trace.burn_before,
        trace.burn_after,
        trace.retained,
        trace.failures.is_empty(),
        snapshot_json,
    );
    println!("{json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[obs-bench] summary written to {path}");
    }

    if options.check {
        let mut failures = schema_failures;
        failures.extend(trace.failures);
        if minima.disabled_overhead > DISABLED_OVERHEAD_FLOOR {
            failures.push(format!(
                "disabled overhead {:.2}% above the {:.0}% floor",
                minima.disabled_overhead * 100.0,
                DISABLED_OVERHEAD_FLOOR * 100.0
            ));
        }
        if minima.enabled_overhead > ENABLED_OVERHEAD_FLOOR {
            failures.push(format!(
                "enabled overhead {:.2}% above the {:.0}% floor",
                minima.enabled_overhead * 100.0,
                ENABLED_OVERHEAD_FLOOR * 100.0
            ));
        }
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("check failed: {failure}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[obs-bench] checks passed: disabled {:+.2}%, enabled {:+.2}%, snapshot sound, \
             trace retention sound (burn {:.3} -> {:.3})",
            minima.disabled_overhead * 100.0,
            minima.enabled_overhead * 100.0,
            trace.burn_before,
            trace.burn_after
        );
    }
    ExitCode::SUCCESS
}
