//! Graph-core smoke benchmark for the CSR storage layer.
//!
//! Builds a datagen graph, then measures graph construction, the
//! `neighbors_via` sweep the entropy scorer performs, full entropy scoring
//! and preview materialisation — each through the zero-alloc CSR path and
//! through a naive reimplementation of the pre-CSR per-call
//! scan-filter-sort-dedup path — and prints a JSON summary with the measured
//! speedups. Results are cross-checked bitwise: a "fast" path that changes
//! any output fails the run.
//!
//! ```text
//! cargo run -p bench --release --bin graph-bench
//! cargo run -p bench --release --bin graph-bench -- --scale 1e-3 --domain music
//! cargo run -p bench --release --bin graph-bench -- --out BENCH_graph.json --check
//! ```

use std::process::ExitCode;

use bench::graph_core::{
    csr_entropy_scores, csr_neighbor_sweep, discovery_fixture, materialise_preview,
    naive_entropy_scores, naive_neighbor_sweep,
};
use bench::util::{min_timed as timed, min_timed_n as timed_n, parse_checked as parse};
use datagen::{FreebaseDomain, SyntheticGenerator};
use entity_graph::EntityGraphBuilder;

struct Options {
    domain: FreebaseDomain,
    scale: f64,
    seed: u64,
    /// Repetitions per measured section; the minimum is reported.
    repeats: usize,
    out: Option<String>,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            domain: FreebaseDomain::Film,
            scale: 1e-3,
            seed: 2016,
            repeats: 7,
            out: None,
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--domain" => {
                let name = value_of("--domain")?;
                options.domain = FreebaseDomain::from_name(&name)
                    .ok_or_else(|| format!("unknown domain {name:?}"))?;
            }
            "--scale" => {
                options.scale = parse(&value_of("--scale")?, |v: f64| v > 0.0 && v.is_finite())?
            }
            "--seed" => options.seed = parse(&value_of("--seed")?, |_: u64| true)?,
            "--repeats" => options.repeats = parse(&value_of("--repeats")?, |v: usize| v >= 1)?,
            "--out" => options.out = Some(value_of("--out")?),
            "--check" => options.check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "[graph-bench] generating domain {:?} at scale {} (seed {}) ...",
        options.domain.name(),
        options.scale,
        options.seed
    );
    let spec = options.domain.spec(options.scale);
    let graph = SyntheticGenerator::new(options.seed).generate(&spec);
    let repeats = options.repeats;

    // Graph (re)build: replay the edge list through the builder, timing the
    // CSR freeze that every ingestion pays.
    let (build_s, _) = timed(repeats, || {
        let mut b = EntityGraphBuilder::with_capacity(graph.entity_count(), graph.edge_count());
        let type_ids: Vec<_> = graph.types().map(|(_, name)| b.entity_type(name)).collect();
        let entity_ids: Vec<_> = graph
            .entities()
            .map(|(_, e)| {
                let tys: Vec<_> = e.types.iter().map(|t| type_ids[t.index()]).collect();
                b.entity(&e.name, &tys)
            })
            .collect();
        let rel_ids: Vec<_> = graph
            .rel_types()
            .map(|(_, r)| {
                b.relationship_type(
                    &r.name,
                    type_ids[r.src_type.index()],
                    type_ids[r.dst_type.index()],
                )
            })
            .collect();
        for (_, e) in graph.edges() {
            b.edge(
                entity_ids[e.src.index()],
                rel_ids[e.rel.index()],
                entity_ids[e.dst.index()],
            )
            .expect("replayed edges are valid");
        }
        b.build().edge_count()
    });

    let (schema_s, _) = timed(repeats, || graph.derive_schema_graph());
    let schema = graph.schema_graph();

    let (csr_sweep_s, csr_sweep) = timed_n(repeats, 10, || csr_neighbor_sweep(&graph, schema));
    let (naive_sweep_s, naive_sweep) =
        timed_n(repeats, 10, || naive_neighbor_sweep(&graph, schema));
    if csr_sweep != naive_sweep {
        eprintln!(
            "error: CSR and naive neighbor sweeps disagree: {csr_sweep:?} vs {naive_sweep:?}"
        );
        return ExitCode::FAILURE;
    }

    let (csr_entropy_s, csr_scores) = timed_n(repeats, 5, || csr_entropy_scores(&graph, schema));
    let (naive_entropy_s, naive_scores) =
        timed_n(repeats, 5, || naive_entropy_scores(&graph, schema));
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    if bits(&csr_scores.0) != bits(&naive_scores.0) || bits(&csr_scores.1) != bits(&naive_scores.1)
    {
        eprintln!("error: CSR and naive entropy scores disagree");
        return ExitCode::FAILURE;
    }

    let (scored, preview) = discovery_fixture(&graph);
    let (materialise_s, cells) = timed(repeats, || materialise_preview(&graph, &scored, &preview));

    let sweep_speedup = naive_sweep_s / csr_sweep_s;
    let entropy_speedup = naive_entropy_s / csr_entropy_s;
    let json = format!(
        concat!(
            "{{\"workload\":{{\"domain\":\"{}\",\"scale\":{},\"seed\":{},",
            "\"entities\":{},\"edges\":{},\"relationship_types\":{}}},\n",
            " \"build\":{{\"graph_build_s\":{:.6},\"schema_derive_s\":{:.6}}},\n",
            " \"neighbor_sweep\":{{\"csr_s\":{:.6},\"naive_s\":{:.6},\"speedup\":{:.2},\"neighbors_visited\":{}}},\n",
            " \"entropy_scoring\":{{\"csr_s\":{:.6},\"naive_s\":{:.6},\"speedup\":{:.2}}},\n",
            " \"materialise\":{{\"seconds\":{:.6},\"cells\":{}}},\n",
            " \"peak_rss_bytes\":{}}}"
        ),
        options.domain.name(),
        options.scale,
        options.seed,
        graph.entity_count(),
        graph.edge_count(),
        graph.relationship_type_count(),
        build_s,
        schema_s,
        csr_sweep_s,
        naive_sweep_s,
        sweep_speedup,
        csr_sweep.0,
        csr_entropy_s,
        naive_entropy_s,
        entropy_speedup,
        materialise_s,
        cells,
        bench::util::json_opt_u64(bench::util::peak_rss_bytes()),
    );
    println!("{json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[graph-bench] summary written to {path}");
    }

    if options.check {
        let mut failures = Vec::new();
        if sweep_speedup < 1.2 {
            failures.push(format!(
                "neighbor sweep speedup {sweep_speedup:.2}x below the 1.2x regression floor"
            ));
        }
        if entropy_speedup < 1.1 {
            failures.push(format!(
                "entropy scoring speedup {entropy_speedup:.2}x below the 1.1x regression floor"
            ));
        }
        if csr_sweep.0 == 0 {
            failures.push("neighbor sweep visited no neighbors".to_string());
        }
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("check failed: {failure}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[graph-bench] checks passed: sweep {sweep_speedup:.2}x, entropy {entropy_speedup:.2}x"
        );
    }
    ExitCode::SUCCESS
}
