//! Parallel-engine smoke benchmark: sequential vs multi-threaded discovery.
//!
//! Builds a datagen graph, then runs the three fork-join hot paths — entropy
//! scoring, brute-force subset enumeration and Apriori candidate growth —
//! once sequentially (`threads = 1`) and once on the fork-join pool
//! (`--threads`, default 4). Outputs are cross-checked **bitwise**: the
//! parallel engine's contract is byte-identical results at any thread count,
//! so any divergence fails the run before timings are even reported. The
//! JSON summary records both timings plus the measured speedup.
//!
//! `--check` enforces regression floors. Speedup floors are host-aware: a
//! wall-clock speedup requires spare cores, so the full floors (≥ 1.5x
//! brute-force discovery, ≥ 1.1x entropy scoring) apply when
//! `available_parallelism >= --threads`; on starved hosts (e.g. a single-core
//! CI container, where the extra workers are timesliced onto one core) the
//! floor drops to a bounded-overhead guard of 0.8x. A sequential-vs-parallel
//! ratio also genuinely degrades under *external* load (both graph-bench
//! sides slow down together; here only the parallel side loses its spare
//! cores), so a floor miss is re-measured up to two extra times — keeping
//! each section's best observed speedup — before the gate fails. The bitwise
//! identity check, which is the hard guarantee, is enforced on every
//! measurement unconditionally.
//!
//! ```text
//! cargo run -p bench --release --bin parallel-bench
//! cargo run -p bench --release --bin parallel-bench -- --threads 8 --scale 1e-3
//! cargo run -p bench --release --bin parallel-bench -- --out BENCH_parallel.json --check
//! ```

use std::process::ExitCode;

use bench::util::{min_timed as timed, parse_checked as parse};
use datagen::{FreebaseDomain, SyntheticGenerator};
use entity_graph::{EntityGraph, SchemaGraph};
use preview_core::scoring::nonkey::entropy_scores_with;
use preview_core::{
    brute_force_subset_count, AprioriDiscovery, BruteForceDiscovery, KeyScoring, NonKeyScoring,
    Preview, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};

/// Extra `--check` attempts after a floor miss (transient external load
/// steals exactly the spare cores a parallel speedup needs).
const CHECK_RETRIES: usize = 2;

struct Options {
    domain: FreebaseDomain,
    scale: f64,
    seed: u64,
    /// Fork-join budget of the parallel runs.
    threads: usize,
    /// Repetitions per measured section; the minimum is reported.
    repeats: usize,
    out: Option<String>,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            domain: FreebaseDomain::Film,
            scale: 1e-3,
            seed: 2016,
            threads: 4,
            repeats: 5,
            out: None,
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--domain" => {
                let name = value_of("--domain")?;
                options.domain = FreebaseDomain::from_name(&name)
                    .ok_or_else(|| format!("unknown domain {name:?}"))?;
            }
            "--scale" => {
                options.scale = parse(&value_of("--scale")?, |v: f64| v > 0.0 && v.is_finite())?
            }
            "--seed" => options.seed = parse(&value_of("--seed")?, |_: u64| true)?,
            "--threads" => options.threads = parse(&value_of("--threads")?, |v: usize| v >= 2)?,
            "--repeats" => options.repeats = parse(&value_of("--repeats")?, |v: usize| v >= 1)?,
            "--out" => options.out = Some(value_of("--out")?),
            "--check" => options.check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// One sequential-vs-parallel section: timings and the derived speedup.
#[derive(Clone, Copy)]
struct Section {
    sequential_s: f64,
    parallel_s: f64,
}

impl Section {
    fn speedup(&self) -> f64 {
        self.sequential_s / self.parallel_s
    }
}

/// One full measurement round over the three hot paths.
struct Measurements {
    entropy: Section,
    brute: Section,
    apriori: Section,
}

impl Measurements {
    fn sections(&self) -> [(&'static str, Section); 3] {
        [
            ("brute-force discovery", self.brute),
            ("entropy scoring", self.entropy),
            ("apriori discovery", self.apriori),
        ]
    }
}

/// Bitwise comparison of two optional previews under a scored schema: same
/// structure, same description bytes, same score bits.
fn previews_identical(
    scored: &ScoredSchema,
    sequential: &Option<Preview>,
    parallel: &Option<Preview>,
) -> bool {
    match (sequential, parallel) {
        (Some(s), Some(p)) => {
            s == p
                && s.describe(scored.schema()) == p.describe(scored.schema())
                && scored.preview_score(s).to_bits() == scored.preview_score(p).to_bits()
        }
        (None, None) => true,
        _ => false,
    }
}

/// Times the three sections sequentially and in parallel, cross-checking
/// every output bitwise; `Err` reports the first divergence.
fn measure(
    graph: &EntityGraph,
    schema: &SchemaGraph,
    scored: &ScoredSchema,
    repeats: usize,
    threads: usize,
) -> Result<Measurements, String> {
    // --- Entropy scoring: parallel over candidate attributes -------------
    let (entropy_seq_s, seq_scores) = timed(repeats, || entropy_scores_with(graph, schema, 1));
    let (entropy_par_s, par_scores) =
        timed(repeats, || entropy_scores_with(graph, schema, threads));
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    if bits(&seq_scores.0) != bits(&par_scores.0) || bits(&seq_scores.1) != bits(&par_scores.1) {
        return Err("parallel entropy scores diverge from the sequential path".to_string());
    }

    // --- Discovery: parallel over candidate k-subsets --------------------
    let brute_space = PreviewSpace::concise(3, 6).expect("valid space");
    let brute = BruteForceDiscovery::new();
    let (brute_seq_s, brute_seq) = timed(repeats, || {
        brute
            .discover_with_threads(scored, &brute_space, 1)
            .expect("brute force supports concise spaces")
    });
    let (brute_par_s, brute_par) = timed(repeats, || {
        brute
            .discover_with_threads(scored, &brute_space, threads)
            .expect("brute force supports concise spaces")
    });
    if !previews_identical(scored, &brute_seq, &brute_par) {
        return Err("parallel brute-force discovery diverges from the sequential path".to_string());
    }

    let apriori_space = PreviewSpace::diverse(3, 6, 2).expect("valid space");
    let apriori = AprioriDiscovery::new();
    let (apriori_seq_s, apriori_seq) = timed(repeats, || {
        apriori
            .discover_with_threads(scored, &apriori_space, 1)
            .expect("apriori supports diverse spaces")
    });
    let (apriori_par_s, apriori_par) = timed(repeats, || {
        apriori
            .discover_with_threads(scored, &apriori_space, threads)
            .expect("apriori supports diverse spaces")
    });
    if !previews_identical(scored, &apriori_seq, &apriori_par) {
        return Err("parallel Apriori discovery diverges from the sequential path".to_string());
    }

    Ok(Measurements {
        entropy: Section {
            sequential_s: entropy_seq_s,
            parallel_s: entropy_par_s,
        },
        brute: Section {
            sequential_s: brute_seq_s,
            parallel_s: brute_par_s,
        },
        apriori: Section {
            sequential_s: apriori_seq_s,
            parallel_s: apriori_par_s,
        },
    })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "[parallel-bench] generating domain {:?} at scale {} (seed {}) ...",
        options.domain.name(),
        options.scale,
        options.seed
    );
    let spec = options.domain.spec(options.scale);
    let graph = SyntheticGenerator::new(options.seed).generate(&spec);
    let schema = graph.schema_graph();
    let scored = ScoredSchema::build(
        &graph,
        &ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy),
    )
    .expect("scoring the datagen graph succeeds");
    let eligible = scored.eligible_types().len();
    let subsets = brute_force_subset_count(eligible, 3);
    let repeats = options.repeats;
    let threads = options.threads;

    let first = match measure(&graph, schema, &scored, repeats, threads) {
        Ok(measurements) => measurements,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    // Full speedup floors need spare cores; on starved hosts only the
    // bounded-overhead floor applies (identity is enforced either way).
    let full_floors = host_parallelism >= threads;
    let floor_of = |name: &str| -> f64 {
        if !full_floors {
            0.8
        } else if name == "brute-force discovery" {
            1.5
        } else if name == "entropy scoring" {
            1.1
        } else {
            1.0
        }
    };

    let json = format!(
        concat!(
            "{{\"workload\":{{\"domain\":\"{}\",\"scale\":{},\"seed\":{},\"threads\":{},",
            "\"host_parallelism\":{},\"entities\":{},\"edges\":{},\"eligible_types\":{}}},\n",
            " \"entropy_scoring\":{{\"sequential_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.2},\"identical\":true}},\n",
            " \"brute_force_discovery\":{{\"space\":\"concise(3,6)\",\"subsets\":{},\"sequential_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.2},\"identical\":true}},\n",
            " \"apriori_discovery\":{{\"space\":\"diverse(3,6,d=2)\",\"sequential_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.2},\"identical\":true}},\n",
            " \"check\":{{\"full_floors_enforced\":{},\"brute_force_floor\":{},\"entropy_floor\":{},\"apriori_floor\":{}}},\n",
            " \"peak_rss_bytes\":{}}}"
        ),
        options.domain.name(),
        options.scale,
        options.seed,
        threads,
        host_parallelism,
        graph.entity_count(),
        graph.edge_count(),
        eligible,
        first.entropy.sequential_s,
        first.entropy.parallel_s,
        first.entropy.speedup(),
        subsets,
        first.brute.sequential_s,
        first.brute.parallel_s,
        first.brute.speedup(),
        first.apriori.sequential_s,
        first.apriori.parallel_s,
        first.apriori.speedup(),
        full_floors,
        floor_of("brute-force discovery"),
        floor_of("entropy scoring"),
        floor_of("apriori discovery"),
        bench::util::json_opt_u64(bench::util::peak_rss_bytes()),
    );
    println!("{json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[parallel-bench] summary written to {path}");
    }

    if options.check {
        if eligible < 20 {
            eprintln!(
                "check failed: only {eligible} eligible types: the discovery workload is too \
                 small to be meaningful"
            );
            return ExitCode::FAILURE;
        }
        // Best observed speedup per section across the first measurement and
        // any retries.
        let mut best: Vec<(&'static str, f64)> = first
            .sections()
            .iter()
            .map(|&(name, section)| (name, section.speedup()))
            .collect();
        for attempt in 0..=CHECK_RETRIES {
            let failures: Vec<String> = best
                .iter()
                .filter(|&&(name, speedup)| speedup < floor_of(name))
                .map(|&(name, speedup)| {
                    format!(
                        "{name} speedup {speedup:.2}x below the {}x floor \
                         (host_parallelism={host_parallelism}, threads={threads})",
                        floor_of(name)
                    )
                })
                .collect();
            if failures.is_empty() {
                break;
            }
            if attempt == CHECK_RETRIES {
                for failure in &failures {
                    eprintln!("check failed: {failure}");
                }
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[parallel-bench] floor missed (attempt {}), re-measuring in case of transient \
                 external load ...",
                attempt + 1
            );
            match measure(&graph, schema, &scored, repeats, threads) {
                Ok(retry) => {
                    for (slot, &(_, section)) in best.iter_mut().zip(retry.sections().iter()) {
                        slot.1 = slot.1.max(section.speedup());
                    }
                }
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        eprintln!(
            "[parallel-bench] checks passed: {} ({} floors)",
            best.iter()
                .map(|(name, speedup)| format!("{name} {speedup:.2}x"))
                .collect::<Vec<_>>()
                .join(", "),
            if full_floors { "full" } else { "starved-host" },
        );
    }
    ExitCode::SUCCESS
}
