//! Update-subsystem smoke benchmark: delta splice + incremental rescore vs
//! full rebuild + full rescore.
//!
//! Replays a seeded, Zipf-skewed update stream (`datagen::UpdateStream`)
//! against a synthetic film graph. Each delta is carried through both paths:
//!
//! * **incremental** — `EntityGraph::apply_delta` (CSR splice) followed by
//!   `ScoredSchema::rescore_delta` (recompute only touched slots),
//! * **full** — `delta::rebuild` (builder replay of the updated content)
//!   followed by `ScoredSchema::build` (score every slot from scratch).
//!
//! Identity is enforced **bitwise on every measurement, unconditionally**:
//! the spliced graph must equal the rebuilt graph field for field (every CSR
//! array included), and every rescored score must match the full rescore bit
//! for bit. Only then are timings reported. `--check` additionally enforces
//! a speedup floor (incremental ≥ 3x for the default small batches); the
//! ratio compares two same-thread code paths, so it is load-independent, but
//! a floor miss is still re-measured a couple of times (keeping the best
//! observed speedup) before failing the gate.
//!
//! A second phase drives the serving layer: warm a `PreviewService` cache
//! under entropy and coverage scoring, publish a provably score-neutral
//! delta (a duplicate parallel edge), and verify that entropy entries are
//! carried across the version bump byte-identically while coverage entries
//! are invalidated — the version-aware cache-retention contract. This phase
//! runs with an enabled [`Recorder`]; its [`ObsSnapshot`] (publish spans,
//! carried/invalidated counters) rides along in the summary under `"obs"`.
//!
//! ```text
//! cargo run -p bench --release --bin update-bench
//! cargo run -p bench --release --bin update-bench -- --deltas 8 --batch 8
//! cargo run -p bench --release --bin update-bench -- --out BENCH_updates.json --check
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use bench::util::{min_timed as timed, parse_checked as parse};
use datagen::{FreebaseDomain, SyntheticGenerator, UpdateStream, UpdateStreamConfig};
use entity_graph::{delta, Direction, EntityGraph, GraphDelta};
use preview_core::{KeyScoring, NonKeyScoring, PreviewSpace, ScoredSchema, ScoringConfig};
use preview_obs::{ObsSnapshot, Recorder};
use preview_service::{
    GraphRegistry, PreviewRequest, PreviewResponse, PreviewService, ServiceConfig,
};

/// Extra `--check` attempts after a speedup-floor miss.
const CHECK_RETRIES: usize = 2;
/// Incremental-vs-rebuild speedup floor enforced by `--check`.
const SPEEDUP_FLOOR: f64 = 3.0;

struct Options {
    domain: FreebaseDomain,
    scale: f64,
    seed: u64,
    /// Number of deltas in the replayed stream.
    deltas: usize,
    /// Target ops per delta.
    batch: usize,
    /// Repetitions per measured section; the minimum is reported.
    repeats: usize,
    out: Option<String>,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            domain: FreebaseDomain::Film,
            scale: 1e-3,
            seed: 2016,
            deltas: 6,
            batch: 6,
            repeats: 3,
            out: None,
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--domain" => {
                let name = value_of("--domain")?;
                options.domain = FreebaseDomain::from_name(&name)
                    .ok_or_else(|| format!("unknown domain {name:?}"))?;
            }
            "--scale" => {
                options.scale = parse(&value_of("--scale")?, |v: f64| v > 0.0 && v.is_finite())?
            }
            "--seed" => options.seed = parse(&value_of("--seed")?, |_: u64| true)?,
            "--deltas" => options.deltas = parse(&value_of("--deltas")?, |v: usize| v >= 1)?,
            "--batch" => options.batch = parse(&value_of("--batch")?, |v: usize| v >= 1)?,
            "--repeats" => options.repeats = parse(&value_of("--repeats")?, |v: usize| v >= 1)?,
            "--out" => options.out = Some(value_of("--out")?),
            "--check" => options.check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// Bitwise equality of two scored schemas over everything discovery reads.
fn scores_bit_equal(a: &ScoredSchema, b: &ScoredSchema) -> bool {
    if !a.scores_identical(b) {
        // `scores_identical` is the contract the serving layer relies on;
        // here it doubles as the comparator (it compares bit patterns).
        return false;
    }
    // Belt and braces: the per-edge accessor path agrees too.
    a.schema().edges().iter().enumerate().all(|(slot, _)| {
        a.non_key_score(slot, Direction::Outgoing).to_bits()
            == b.non_key_score(slot, Direction::Outgoing).to_bits()
            && a.non_key_score(slot, Direction::Incoming).to_bits()
                == b.non_key_score(slot, Direction::Incoming).to_bits()
    })
}

/// Accumulated timings of one stream replay.
#[derive(Default, Clone, Copy)]
struct StreamTimings {
    apply_s: f64,
    rescore_s: f64,
    rebuild_s: f64,
    full_score_s: f64,
    edits: usize,
}

impl StreamTimings {
    fn incremental_s(&self) -> f64 {
        self.apply_s + self.rescore_s
    }

    fn full_s(&self) -> f64 {
        self.rebuild_s + self.full_score_s
    }

    fn speedup(&self) -> f64 {
        self.full_s() / self.incremental_s()
    }
}

/// Replays the whole update stream through both paths, enforcing bitwise
/// identity at every step.
fn measure(
    start: &EntityGraph,
    config: &ScoringConfig,
    options: &Options,
) -> Result<StreamTimings, String> {
    let mut graph = start.clone();
    let mut scored =
        ScoredSchema::build(&graph, config).map_err(|e| format!("initial scoring failed: {e}"))?;
    let mut stream = UpdateStream::new(
        options.seed,
        UpdateStreamConfig::with_batch_size(options.batch),
    );
    let mut timings = StreamTimings::default();
    for i in 0..options.deltas {
        let batch = stream.next_delta(&graph);
        if batch.is_empty() {
            return Err(format!("delta {i} is empty: graph degenerated"));
        }
        timings.edits += batch.len();
        let (apply_s, applied) = timed(options.repeats, || {
            graph.apply_delta(&batch).expect("stream deltas are valid")
        });
        let (rescore_s, rescored) = timed(options.repeats, || {
            scored
                .rescore_delta(&applied.graph, &applied.summary)
                .expect("rescoring a valid delta succeeds")
        });
        let (rebuild_s, rebuilt) = timed(options.repeats, || delta::rebuild(&applied.graph));
        let (score_s, full) = timed(options.repeats, || {
            ScoredSchema::build(&rebuilt, config).expect("full scoring succeeds")
        });
        // Hard identity gates, enforced on every measurement.
        if applied.graph != rebuilt {
            return Err(format!(
                "delta {i}: spliced graph differs from the from-scratch rebuild"
            ));
        }
        if !scores_bit_equal(&rescored, &full) {
            return Err(format!(
                "delta {i}: incremental rescore differs bitwise from the full rescore"
            ));
        }
        timings.apply_s += apply_s;
        timings.rescore_s += rescore_s;
        timings.rebuild_s += rebuild_s;
        timings.full_score_s += score_s;
        graph = applied.graph;
        scored = rescored;
    }
    Ok(timings)
}

/// Outcome of the serving-layer retention phase.
struct RetentionPhase {
    warmed_entries: usize,
    carried_forward: u64,
    invalidated: u64,
    carried_hits: usize,
    obs: ObsSnapshot,
}

/// Warms a service cache under entropy + coverage scoring, publishes a
/// score-neutral delta, and verifies the version-aware retention contract.
/// The service is traced, so the publish/splice spans and retention counters
/// land in the returned snapshot.
fn retention_phase(graph: &EntityGraph) -> Result<RetentionPhase, String> {
    let registry = Arc::new(GraphRegistry::new());
    registry.register("film", graph.clone());
    let recorder = Arc::new(Recorder::default());
    recorder.enable();
    let service = PreviewService::start_with_recorder(
        ServiceConfig::default(),
        registry,
        Arc::clone(&recorder),
    );
    let entropy = ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy);
    let coverage = ScoringConfig::coverage();
    let spaces = [
        PreviewSpace::concise(2, 6).expect("valid space"),
        PreviewSpace::concise(3, 6).expect("valid space"),
    ];
    let mut warmed: Vec<(PreviewRequest, PreviewResponse)> = Vec::new();
    for &space in &spaces {
        for config in [entropy, coverage] {
            let request = PreviewRequest::new("film", space).with_scoring(config);
            let response = service
                .submit_wait(request.clone())
                .map_err(|e| format!("warm request failed: {e}"))?;
            warmed.push((request, response));
        }
    }

    // A duplicate of an existing edge: attribute values are sets, so entropy
    // scores provably cannot move, while the coverage edge count does.
    let first = graph.edge(entity_graph::EdgeId::new(0));
    let rel = graph.rel_type(first.rel);
    let mut batch = GraphDelta::new();
    batch.add_edge(
        &graph.entity(first.src).name,
        &rel.name,
        &graph.entity(first.dst).name,
        graph.type_name(rel.src_type),
        graph.type_name(rel.dst_type),
    );
    let report = service
        .publish_delta("film", &batch)
        .map_err(|e| format!("publish failed: {e}"))?;
    if !report.bumped || report.unaffected_configs != 1 {
        return Err(format!(
            "expected exactly the entropy config unaffected, got {} of {}",
            report.unaffected_configs, report.rescored_configs
        ));
    }

    // Carried entries must serve the new version from the cache, bitwise
    // identical to the pre-publish responses.
    let mut carried_hits = 0usize;
    for (request, before) in &warmed {
        let after = service
            .submit_wait(request.clone())
            .map_err(|e| format!("post-publish request failed: {e}"))?;
        if after.version != report.version {
            return Err("latest request resolved to a stale version".to_string());
        }
        let entropy_request = request.scoring.non_key == NonKeyScoring::Entropy;
        if entropy_request {
            if !after.cache_hit {
                return Err("carried entry missed the cache after the bump".to_string());
            }
            if after.preview != before.preview || after.score.to_bits() != before.score.to_bits() {
                return Err("carried entry is not byte-identical".to_string());
            }
            carried_hits += 1;
        } else if after.cache_hit {
            return Err("affected (coverage) entry was wrongly carried forward".to_string());
        }
    }
    let stats = service.stats();
    let obs = service.snapshot();
    recorder.disable();
    Ok(RetentionPhase {
        warmed_entries: warmed.len(),
        carried_forward: stats.cache_carried_forward,
        invalidated: stats.cache_invalidated,
        carried_hits,
        obs,
    })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "[update-bench] generating domain {:?} at scale {} (seed {}) ...",
        options.domain.name(),
        options.scale,
        options.seed
    );
    let spec = options.domain.spec(options.scale);
    let graph = SyntheticGenerator::new(options.seed).generate(&spec);
    let config = ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy);
    eprintln!(
        "[update-bench] replaying {} deltas of ~{} ops (entropy scoring, {} entities, {} edges) ...",
        options.deltas,
        options.batch,
        graph.entity_count(),
        graph.edge_count()
    );

    let mut timings = match measure(&graph, &config, &options) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("[update-bench] serving-layer retention phase ...");
    let retention = match retention_phase(&graph) {
        Ok(retention) => retention,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let json = |t: &StreamTimings| {
        format!(
            concat!(
                "{{\"workload\":{{\"domain\":\"{}\",\"scale\":{},\"seed\":{},\"deltas\":{},",
                "\"batch\":{},\"edits\":{},\"host_parallelism\":{},\"entities\":{},\"edges\":{}}},\n",
                " \"incremental\":{{\"apply_s\":{:.6},\"rescore_s\":{:.6},\"total_s\":{:.6},\"identical\":true}},\n",
                " \"full_rebuild\":{{\"rebuild_s\":{:.6},\"rescore_s\":{:.6},\"total_s\":{:.6},\"identical\":true}},\n",
                " \"speedup\":{:.2},\n",
                " \"cache_retention\":{{\"warmed\":{},\"carried_forward\":{},\"invalidated\":{},",
                "\"carried_hits_bitwise\":{}}},\n",
                " \"check\":{{\"speedup_floor\":{}}},\n",
                " \"peak_rss_bytes\":{},\n",
                " \"obs\":{}}}"
            ),
            options.domain.name(),
            options.scale,
            options.seed,
            options.deltas,
            options.batch,
            t.edits,
            host_parallelism,
            graph.entity_count(),
            graph.edge_count(),
            t.apply_s,
            t.rescore_s,
            t.incremental_s(),
            t.rebuild_s,
            t.full_score_s,
            t.full_s(),
            t.speedup(),
            retention.warmed_entries,
            retention.carried_forward,
            retention.invalidated,
            retention.carried_hits,
            SPEEDUP_FLOOR,
            bench::util::json_opt_u64(bench::util::peak_rss_bytes()),
            retention.obs.to_json(),
        )
    };
    let mut rendered = json(&timings);
    println!("{rendered}");

    if options.check {
        // The speedup is a same-thread algorithmic ratio, but external load
        // can still skew a single run; keep the best of a few attempts.
        let mut attempt = 0;
        while timings.speedup() < SPEEDUP_FLOOR && attempt < CHECK_RETRIES {
            attempt += 1;
            eprintln!(
                "[update-bench] speedup {:.2}x below the {SPEEDUP_FLOOR}x floor \
                 (attempt {attempt}), re-measuring ...",
                timings.speedup()
            );
            match measure(&graph, &config, &options) {
                Ok(retry) => {
                    if retry.speedup() > timings.speedup() {
                        timings = retry;
                        rendered = json(&timings);
                    }
                }
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let speedup = timings.speedup();
        let mut failures = Vec::new();
        if speedup < SPEEDUP_FLOOR {
            failures.push(format!(
                "incremental speedup {speedup:.2}x below the {SPEEDUP_FLOOR}x floor"
            ));
        }
        if retention.carried_forward < 1 {
            failures.push("no cache entries carried forward".to_string());
        }
        if retention.invalidated < 1 {
            failures.push("no cache entries invalidated".to_string());
        }
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("check failed: {failure}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[update-bench] checks passed: speedup {speedup:.2}x, {} entries carried \
             forward bitwise, {} invalidated",
            retention.carried_forward, retention.invalidated
        );
    }
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("error: cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[update-bench] summary written to {path}");
    }
    ExitCode::SUCCESS
}
