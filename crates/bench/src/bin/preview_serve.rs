//! Load generator for the preview service.
//!
//! Replays a synthetic `datagen` workload (Zipf-skewed repeated requests)
//! against two service configurations — a 1-worker, cache-disabled baseline
//! and the full multi-worker cached service — and prints a JSON summary of
//! throughput, latency percentiles and cache behaviour. The service pass
//! runs with an enabled [`Recorder`], and its full [`ObsSnapshot`] rides
//! along in the summary under `"obs"` (per-stage histograms, counters,
//! flight dumps).
//!
//! ```text
//! cargo run -p bench --release --bin preview-serve
//! cargo run -p bench --release --bin preview-serve -- --requests 2000 --workers 8
//! cargo run -p bench --release --bin preview-serve -- --out BENCH_service.json --check
//! ```

use bench::util::parse_checked as parse;
use std::process::ExitCode;
use std::sync::Arc;

use bench::service_workload::{synth_workload, workload_graph, ServiceWorkload, WorkloadSpec};
use datagen::FreebaseDomain;
use entity_graph::EntityGraph;
use preview_obs::{ObsSnapshot, Recorder};
use preview_service::{GraphRegistry, PreviewService, ServiceConfig};

struct Options {
    spec: WorkloadSpec,
    workers: usize,
    baseline_workers: usize,
    cache_capacity: usize,
    queue_capacity: usize,
    out: Option<String>,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            spec: WorkloadSpec::default(),
            workers: 4,
            baseline_workers: 1,
            cache_capacity: 512,
            queue_capacity: 256,
            out: None,
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--requests" => {
                options.spec.requests = parse(&value_of("--requests")?, |v: usize| v >= 1)?
            }
            "--unique" => options.spec.unique = parse(&value_of("--unique")?, |v: usize| v >= 1)?,
            "--seed" => options.spec.seed = parse(&value_of("--seed")?, |_: u64| true)?,
            "--scale" => {
                options.spec.scale =
                    parse(&value_of("--scale")?, |v: f64| v > 0.0 && v.is_finite())?
            }
            "--domain" => {
                let name = value_of("--domain")?;
                options.spec.domain = FreebaseDomain::from_name(&name)
                    .ok_or_else(|| format!("unknown domain {name:?}"))?;
            }
            "--workers" => options.workers = parse(&value_of("--workers")?, |v: usize| v >= 1)?,
            "--baseline-workers" => {
                options.baseline_workers =
                    parse(&value_of("--baseline-workers")?, |v: usize| v >= 1)?
            }
            "--cache-capacity" => {
                options.cache_capacity = parse(&value_of("--cache-capacity")?, |v: usize| v >= 1)?
            }
            "--queue-capacity" => {
                options.queue_capacity = parse(&value_of("--queue-capacity")?, |v: usize| v >= 1)?
            }
            "--out" => options.out = Some(value_of("--out")?),
            "--check" => options.check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// One measured service run over the whole workload.
struct PassSummary {
    label: &'static str,
    workers: usize,
    cache_enabled: bool,
    elapsed_s: f64,
    throughput_rps: f64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    latency_mean_us: f64,
    cache_hit_rate: f64,
    cache_evictions: u64,
    publishes: u64,
    cache_carried_forward: u64,
    cache_invalidated: u64,
    completed: u64,
    failed: u64,
}

/// Runs one measured pass; with `recorder`, the service is traced and its
/// [`ObsSnapshot`] is returned alongside the summary.
fn run_pass(
    label: &'static str,
    graph: &EntityGraph,
    workload: &ServiceWorkload,
    config: ServiceConfig,
    recorder: Option<Arc<Recorder>>,
) -> (PassSummary, Option<ObsSnapshot>) {
    let registry = Arc::new(GraphRegistry::new());
    registry
        .register_precomputed(&workload.graph_name, graph.clone(), &workload.configs)
        .expect("scoring the workload graph succeeds");
    let service = match &recorder {
        Some(recorder) => {
            recorder.enable();
            PreviewService::start_with_recorder(config, registry, Arc::clone(recorder))
        }
        None => PreviewService::start(config, registry),
    };

    let handles: Vec<_> = workload
        .requests
        .iter()
        .map(|request| service.submit(request.clone()).expect("queue accepts"))
        .collect();
    for handle in handles {
        handle.wait().expect("workload requests succeed");
    }

    let snapshot = recorder.as_ref().map(|recorder| {
        let snapshot = service.snapshot();
        recorder.disable();
        snapshot
    });
    let stats = service.shutdown();
    let summary = PassSummary {
        label,
        workers: config.workers,
        cache_enabled: config.cache_capacity > 0,
        elapsed_s: stats.elapsed.as_secs_f64(),
        throughput_rps: stats.throughput_rps,
        latency_p50_us: stats.latency_p50_us,
        latency_p99_us: stats.latency_p99_us,
        latency_mean_us: stats.latency_mean_us,
        cache_hit_rate: stats.cache.hit_rate(),
        cache_evictions: stats.cache.evictions,
        publishes: stats.publishes,
        cache_carried_forward: stats.cache_carried_forward,
        cache_invalidated: stats.cache_invalidated,
        completed: stats.completed,
        failed: stats.failed,
    };
    (summary, snapshot)
}

fn pass_json(pass: &PassSummary) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"workers\":{},\"cache_enabled\":{},",
            "\"elapsed_s\":{:.4},\"throughput_rps\":{:.2},",
            "\"latency_p50_us\":{},\"latency_p99_us\":{},\"latency_mean_us\":{:.1},",
            "\"cache_hit_rate\":{:.4},\"cache_evictions\":{},",
            "\"publishes\":{},\"cache_carried_forward\":{},\"cache_invalidated\":{},",
            "\"completed\":{},\"failed\":{}}}"
        ),
        pass.label,
        pass.workers,
        pass.cache_enabled,
        pass.elapsed_s,
        pass.throughput_rps,
        pass.latency_p50_us,
        pass.latency_p99_us,
        pass.latency_mean_us,
        pass.cache_hit_rate,
        pass.cache_evictions,
        pass.publishes,
        pass.cache_carried_forward,
        pass.cache_invalidated,
        pass.completed,
        pass.failed,
    )
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "[preview-serve] generating domain {:?} at scale {} ...",
        options.spec.domain.name(),
        options.spec.scale
    );
    let graph = workload_graph(&options.spec);
    let workload = synth_workload(&options.spec);
    eprintln!(
        "[preview-serve] {} requests over {} unique keys ({:.0}% repeated)",
        workload.requests.len(),
        workload.unique_keys,
        workload.repeated_fraction * 100.0
    );

    eprintln!(
        "[preview-serve] baseline pass: {} worker(s), cache disabled ...",
        options.baseline_workers
    );
    let (baseline, _) = run_pass(
        "baseline",
        &graph,
        &workload,
        ServiceConfig {
            workers: options.baseline_workers,
            queue_capacity: options.queue_capacity,
            cache_capacity: 0,
            cache_shards: 1,
        },
        None,
    );
    eprintln!(
        "[preview-serve] service pass: {} worker(s), cache capacity {} ...",
        options.workers, options.cache_capacity
    );
    let (service, obs) = run_pass(
        "service",
        &graph,
        &workload,
        ServiceConfig {
            workers: options.workers,
            queue_capacity: options.queue_capacity,
            cache_capacity: options.cache_capacity,
            cache_shards: 8,
        },
        Some(Arc::new(Recorder::default())),
    );
    let obs = obs.expect("the traced pass returns a snapshot");

    let speedup = if baseline.throughput_rps > 0.0 {
        service.throughput_rps / baseline.throughput_rps
    } else {
        0.0
    };
    let json = format!(
        concat!(
            "{{\"workload\":{{\"domain\":\"{}\",\"scale\":{},\"seed\":{},",
            "\"requests\":{},\"unique_keys\":{},\"repeated_fraction\":{:.4}}},\n",
            " \"baseline\":{},\n",
            " \"service\":{},\n",
            " \"speedup\":{:.2},\n",
            " \"peak_rss_bytes\":{},\n",
            " \"obs\":{}}}"
        ),
        workload.graph_name,
        options.spec.scale,
        options.spec.seed,
        workload.requests.len(),
        workload.unique_keys,
        workload.repeated_fraction,
        pass_json(&baseline),
        pass_json(&service),
        speedup,
        bench::util::json_opt_u64(bench::util::peak_rss_bytes()),
        obs.to_json(),
    );
    println!("{json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[preview-serve] summary written to {path}");
    }

    if options.check {
        let mut failures = Vec::new();
        if workload.repeated_fraction < 0.5 {
            failures.push(format!(
                "repeated fraction {:.2} < 0.5",
                workload.repeated_fraction
            ));
        }
        if service.cache_hit_rate < 0.4 {
            failures.push(format!(
                "cache hit rate {:.2} < 0.4",
                service.cache_hit_rate
            ));
        }
        if service.throughput_rps <= baseline.throughput_rps {
            failures.push(format!(
                "service throughput {:.0} rps not above baseline {:.0} rps",
                service.throughput_rps, baseline.throughput_rps
            ));
        }
        if baseline.failed + service.failed > 0 {
            failures.push("requests failed".to_string());
        }
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("check failed: {failure}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[preview-serve] checks passed: hit rate {:.2}, speedup {:.2}x",
            service.cache_hit_rate, speedup
        );
    }
    ExitCode::SUCCESS
}
