//! Sharded-storage scale benchmark: build, score and update a synthetic
//! film graph at multiples of the smoke-bench scale, recording peak RSS
//! and throughput floors.
//!
//! The smoke benches run film at scale `1e-3` (~2k entities / ~18k edges).
//! This binary sweeps scale *factors* on top of that base — `10` for the CI
//! smoke tier, `100` and `1000` for the full sweep, where `1000` is the
//! paper's full film domain (~2M entities / ~18M edges). Per factor it
//! measures:
//!
//! * synthetic generation + builder freeze (the ingestion path),
//! * parallel sharded build ([`preview_core::build_sharded`]),
//! * entropy scoring from sharded storage, cross-checked **bitwise** against
//!   the unsharded scorer (enforced at every factor),
//! * a registry `publish_delta` against the sharded version, cross-checked
//!   against resharding the spliced graph from scratch (enforced at every
//!   factor),
//! * the sharded [`MemoryReport`](entity_graph::MemoryReport) and the
//!   process peak RSS.
//!
//! `--check` additionally enforces throughput floors at factor `100`
//! (deliberately conservative: single-core CI hosts must pass). Factor
//! `1000` is measured and recorded but has no throughput floor — it may be
//! memory-bound on small hosts.
//!
//! ```text
//! cargo run -p bench --release --bin scale-bench -- --factors 10 --check
//! cargo run -p bench --release --bin scale-bench -- \
//!     --factors 10,100,1000 --out BENCH_scale.json --check
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use bench::util::{json_opt_u64, parse_checked as parse, peak_rss_bytes, timed};
use datagen::{FreebaseDomain, SyntheticGenerator, UpdateStream, UpdateStreamConfig};
use entity_graph::{ShardedGraph, ShardingStrategy};
use preview_obs::Recorder;
use preview_service::GraphRegistry;

/// Throughput floors enforced with `--check` at factor 100 — set ~4x below
/// single-core measurements so load spikes don't flake CI.
const BUILD_EDGES_PER_S_FLOOR: f64 = 250_000.0;
const PUBLISH_EDITS_PER_S_FLOOR: f64 = 10.0;
/// Factor at which throughput floors apply (identity is enforced at all).
const FLOOR_FACTOR: u64 = 100;

struct Options {
    domain: FreebaseDomain,
    base_scale: f64,
    factors: Vec<u64>,
    seed: u64,
    shards: usize,
    by_type: bool,
    batch: usize,
    out: Option<String>,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            domain: FreebaseDomain::Film,
            base_scale: 1e-3,
            factors: vec![10],
            seed: 2016,
            shards: 8,
            by_type: false,
            batch: 48,
            out: None,
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--domain" => {
                let name = value_of("--domain")?;
                options.domain = FreebaseDomain::from_name(&name)
                    .ok_or_else(|| format!("unknown domain {name:?}"))?;
            }
            "--base-scale" => {
                options.base_scale = parse(&value_of("--base-scale")?, |v: f64| {
                    v > 0.0 && v.is_finite()
                })?
            }
            "--factors" => {
                let list = value_of("--factors")?;
                options.factors = list
                    .split(',')
                    .map(|part| parse(part.trim(), |v: u64| v >= 1))
                    .collect::<Result<Vec<_>, _>>()?;
                if options.factors.is_empty() {
                    return Err("--factors requires at least one factor".into());
                }
            }
            "--seed" => options.seed = parse(&value_of("--seed")?, |_: u64| true)?,
            "--shards" => options.shards = parse(&value_of("--shards")?, |v: usize| v >= 1)?,
            "--by-type" => options.by_type = true,
            "--batch" => options.batch = parse(&value_of("--batch")?, |v: usize| v >= 1)?,
            "--out" => options.out = Some(value_of("--out")?),
            "--check" => options.check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// One measured scale tier, already rendered as a JSON object.
struct Tier {
    factor: u64,
    json: String,
    build_edges_per_s: f64,
    publish_edits_per_s: f64,
    entropy_identical: bool,
    publish_identical: bool,
}

fn run_tier(options: &Options, strategy: ShardingStrategy, factor: u64) -> Result<Tier, String> {
    let scale = options.base_scale * factor as f64;
    eprintln!(
        "[scale-bench] factor {factor}: generating {:?} at scale {scale} ...",
        options.domain.name()
    );
    let spec = options.domain.spec(scale);
    spec.validate()
        .map_err(|e| format!("factor {factor}: invalid spec: {e}"))?;

    let (graph, generate_t) = timed(|| SyntheticGenerator::new(options.seed).generate(&spec));
    let generate_s = generate_t.as_secs_f64();
    let entities = graph.entity_count();
    let edges = graph.edge_count();
    eprintln!(
        "[scale-bench] factor {factor}: {entities} entities / {edges} edges \
         (generated in {generate_s:.2}s); sharding ..."
    );

    let graph = Arc::new(graph);
    let (sharded, shard_build_t) =
        timed(|| preview_core::build_sharded(Arc::clone(&graph), strategy, 0));
    let shard_build_s = shard_build_t.as_secs_f64();
    let build_edges_per_s = edges as f64 / shard_build_s.max(1e-9);

    let memory = sharded.memory_report();

    // Entropy from sharded storage, cross-checked bitwise at every factor.
    let schema = graph.schema_graph().clone();
    let (sharded_scores, entropy_sharded_t) =
        timed(|| preview_core::sharded_entropy_scores_with(&sharded, &schema, 0));
    let (unsharded_scores, entropy_unsharded_t) =
        timed(|| preview_core::scoring::entropy_scores(&graph, &schema));
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    let entropy_identical = bits(&sharded_scores.0) == bits(&unsharded_scores.0)
        && bits(&sharded_scores.1) == bits(&unsharded_scores.1);
    drop(sharded);

    // Registry publish against the sharded version: one Zipf-skewed delta
    // batch through the transparent sharded path.
    let registry = GraphRegistry::new();
    let name = options.domain.name();
    let graph = Arc::try_unwrap(graph)
        .map_err(|_| format!("factor {factor}: graph unexpectedly still shared"))?;
    registry.register_sharded(name, graph, strategy);
    let serving = registry
        .resolve(name, None)
        .map_err(|e| format!("factor {factor}: resolve failed: {e}"))?;
    let mut stream = UpdateStream::new(
        options.seed ^ 0x5ca1e,
        UpdateStreamConfig::with_batch_size(options.batch),
    );
    let delta = stream.next_delta(serving.graph());
    let edits = delta.len();
    let (publish, publish_t) = timed(|| registry.publish_delta(name, &delta));
    let publish = publish.map_err(|e| format!("factor {factor}: publish failed: {e}"))?;
    let publish_s = publish_t.as_secs_f64();
    let publish_edits_per_s = edits as f64 / publish_s.max(1e-9);

    // The published version must stay sharded and equal re-sharding the
    // spliced logical graph from scratch.
    let published_sharded = publish
        .registered
        .sharded()
        .ok_or_else(|| format!("factor {factor}: published version lost sharding"))?;
    let reference = ShardedGraph::from_graph(Arc::clone(publish.registered.graph()), strategy);
    let publish_identical = **published_sharded == reference;

    let json = format!(
        concat!(
            "  {{\"factor\":{},\"scale\":{},\"entities\":{},\"edges\":{},\n",
            "   \"generate_s\":{:.4},\"shard_build_s\":{:.4},\"shard_build_edges_per_s\":{:.0},\n",
            "   \"entropy\":{{\"sharded_s\":{:.4},\"unsharded_s\":{:.4},\"identical\":{}}},\n",
            "   \"publish\":{{\"edits\":{},\"seconds\":{:.4},\"edits_per_s\":{:.1},\"identical\":{}}},\n",
            "   \"memory\":{{\"shard_count\":{},\"encoded_payload_bytes\":{},\"unsharded_payload_bytes\":{},",
            "\"payload_compression\":{:.3},\"sharded_total_bytes\":{},\"directory_bytes\":{}}},\n",
            "   \"peak_rss_bytes\":{}}}"
        ),
        factor,
        scale,
        entities,
        edges,
        generate_s,
        shard_build_s,
        build_edges_per_s,
        entropy_sharded_t.as_secs_f64(),
        entropy_unsharded_t.as_secs_f64(),
        entropy_identical,
        edits,
        publish_s,
        publish_edits_per_s,
        publish_identical,
        memory.shard_count,
        memory.encoded_payload_bytes,
        memory.unsharded_payload_bytes,
        memory.payload_compression(),
        memory.sharded_total_bytes,
        memory.shard_directory_bytes,
        json_opt_u64(peak_rss_bytes()),
    );
    eprintln!(
        "[scale-bench] factor {factor}: shard build {:.2}s ({:.0} edges/s), \
         publish {} edits in {:.3}s, compression {:.3}",
        shard_build_s,
        build_edges_per_s,
        edits,
        publish_s,
        memory.payload_compression()
    );
    Ok(Tier {
        factor,
        json,
        build_edges_per_s,
        publish_edits_per_s,
        entropy_identical,
        publish_identical,
    })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let strategy = if options.by_type {
        ShardingStrategy::ByEntityType {
            shards: options.shards,
        }
    } else {
        ShardingStrategy::ByIdHash {
            shards: options.shards,
        }
    };

    // Trace every tier: the sharded build, splice, rescore and publish
    // spans all fire on this thread, so one attached recorder sees the
    // whole sweep and its snapshot rides along in the summary.
    let recorder = Arc::new(Recorder::default());
    recorder.enable();
    let _attach = recorder.attach();

    let mut tiers = Vec::new();
    for &factor in &options.factors {
        match run_tier(&options, strategy, factor) {
            Ok(tier) => tiers.push(tier),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        }
    }

    let strategy_name = if options.by_type {
        "by-entity-type"
    } else {
        "by-id-hash"
    };
    let tier_json: Vec<&str> = tiers.iter().map(|t| t.json.as_str()).collect();
    let json = format!(
        concat!(
            "{{\"workload\":{{\"domain\":\"{}\",\"base_scale\":{},\"seed\":{},",
            "\"strategy\":\"{}\",\"shards\":{},\"batch\":{}}},\n",
            " \"tiers\":[\n{}\n ],\n",
            " \"check\":{{\"floor_factor\":{},\"build_edges_per_s_floor\":{},\"publish_edits_per_s_floor\":{}}},\n",
            " \"peak_rss_bytes\":{},\n",
            " \"obs\":{}}}"
        ),
        options.domain.name(),
        options.base_scale,
        options.seed,
        strategy_name,
        options.shards,
        options.batch,
        tier_json.join(",\n"),
        FLOOR_FACTOR,
        BUILD_EDGES_PER_S_FLOOR,
        PUBLISH_EDITS_PER_S_FLOOR,
        json_opt_u64(peak_rss_bytes()),
        recorder.snapshot().to_json(),
    );
    println!("{json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[scale-bench] summary written to {path}");
    }

    if options.check {
        let mut failures = Vec::new();
        for tier in &tiers {
            let factor = tier.factor;
            if !tier.entropy_identical {
                failures.push(format!(
                    "factor {factor}: sharded entropy differs bitwise from unsharded"
                ));
            }
            if !tier.publish_identical {
                failures.push(format!(
                    "factor {factor}: published sharded version differs from a \
                     from-scratch reshard of the spliced graph"
                ));
            }
            // Throughput floors: enforced at the floor factor only. The 1000x
            // tier is recorded but never floor-gated (may be memory-bound).
            if factor == FLOOR_FACTOR {
                if tier.build_edges_per_s < BUILD_EDGES_PER_S_FLOOR {
                    failures.push(format!(
                        "factor {factor}: sharded build {:.0} edges/s below the \
                         {BUILD_EDGES_PER_S_FLOOR} floor",
                        tier.build_edges_per_s
                    ));
                }
                if tier.publish_edits_per_s < PUBLISH_EDITS_PER_S_FLOOR {
                    failures.push(format!(
                        "factor {factor}: publish {:.1} edits/s below the \
                         {PUBLISH_EDITS_PER_S_FLOOR} floor",
                        tier.publish_edits_per_s
                    ));
                }
            }
        }
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("check failed: {failure}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[scale-bench] checks passed: {} tier(s), identity enforced on all",
            tiers.len()
        );
    }
    ExitCode::SUCCESS
}
