//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p bench --release --bin experiments -- list
//! cargo run -p bench --release --bin experiments -- table3
//! cargo run -p bench --release --bin experiments -- all
//! cargo run -p bench --release --bin experiments -- all --scale 5e-4 --seed 7
//! ```

use std::process::ExitCode;

use bench::context::{DomainContext, DEFAULT_SCALE, DEFAULT_SEED};
use bench::efficiency::{fig8_concise, fig9_tight_diverse, EfficiencyConfig};
use bench::experiment_catalog;
use bench::samples::{table10, table11, table12, table2, tables22_23};
use bench::scoring_accuracy::{key_accuracy_figure, table3_mrr, table4_pcc, KeyMetric};
use bench::userstudy_exp::{
    experience_table, pairwise_z_table, run_all_studies, table5, table6, table8, table9,
    time_boxplot, DomainStudy,
};
use bench::util::closest_matches;
use datagen::FreebaseDomain;

struct Options {
    ids: Vec<String>,
    scale: f64,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut ids = Vec::new();
    let mut scale = DEFAULT_SCALE;
    let mut seed = DEFAULT_SEED;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale requires a value")?;
                scale = value
                    .parse()
                    .ok()
                    .filter(|s: &f64| *s > 0.0 && s.is_finite())
                    .ok_or(format!(
                        "invalid scale {value:?} (must be a positive number)"
                    ))?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed requires a value")?;
                seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed {value:?}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("list".to_string());
    }
    Ok(Options { ids, scale, seed })
}

/// Lazily-built shared state so `all` only generates each domain once.
struct Harness {
    scale: f64,
    seed: u64,
    gold_contexts: Option<Vec<DomainContext>>,
    studies: Option<Vec<DomainStudy>>,
}

impl Harness {
    fn new(scale: f64, seed: u64) -> Self {
        Self {
            scale,
            seed,
            gold_contexts: None,
            studies: None,
        }
    }

    fn gold_contexts(&mut self) -> &Vec<DomainContext> {
        let (scale, seed) = (self.scale, self.seed);
        self.gold_contexts.get_or_insert_with(|| {
            eprintln!(
                "[experiments] generating the five gold-standard domains (scale={scale}) ..."
            );
            FreebaseDomain::GOLD
                .iter()
                .map(|&d| DomainContext::build(d, scale, seed))
                .collect()
        })
    }

    fn studies(&mut self) -> Vec<DomainStudy> {
        if self.studies.is_none() {
            let contexts = self.gold_contexts().clone();
            eprintln!("[experiments] running the simulated user study ...");
            self.studies = Some(run_all_studies(&contexts));
        }
        self.studies.clone().expect("studies just built")
    }

    fn run(&mut self, id: &str) -> Option<String> {
        let efficiency = EfficiencyConfig {
            scale: self.scale.min(2e-4),
            seed: self.seed,
            ..EfficiencyConfig::default()
        };
        let output = match id {
            "table2" => table2(self.scale, self.seed),
            "table3" => table3_mrr(self.gold_contexts()),
            "table4" => table4_pcc(self.gold_contexts()),
            "fig5" => key_accuracy_figure(self.gold_contexts(), KeyMetric::PrecisionAtK),
            "fig6" => key_accuracy_figure(self.gold_contexts(), KeyMetric::AveragePrecision),
            "fig7" => key_accuracy_figure(self.gold_contexts(), KeyMetric::Ndcg),
            "fig8" => fig8_concise(&efficiency),
            "fig9" => fig9_tight_diverse(&efficiency),
            "table5" => table5(&self.studies()),
            "table6" => table6(&self.studies()),
            "table7" => pairwise_z_table(&self.studies(), FreebaseDomain::Music),
            "table8" => table8(),
            "table9" => table9(&self.studies()),
            "fig10" => time_boxplot(&self.studies(), FreebaseDomain::Music),
            "fig11" => time_boxplot(&self.studies(), FreebaseDomain::Books),
            "fig12" => time_boxplot(&self.studies(), FreebaseDomain::Film),
            "fig13" => time_boxplot(&self.studies(), FreebaseDomain::Tv),
            "fig14" => time_boxplot(&self.studies(), FreebaseDomain::People),
            "table10" => table10(),
            "table11" => table11(self.gold_contexts()),
            "table12" => table12(self.gold_contexts()),
            "table13" => pairwise_z_table(&self.studies(), FreebaseDomain::Books),
            "table14" => pairwise_z_table(&self.studies(), FreebaseDomain::Film),
            "table15" => pairwise_z_table(&self.studies(), FreebaseDomain::Tv),
            "table16" => pairwise_z_table(&self.studies(), FreebaseDomain::People),
            "table17" => experience_table(&self.studies(), FreebaseDomain::Books),
            "table18" => experience_table(&self.studies(), FreebaseDomain::Film),
            "table19" => experience_table(&self.studies(), FreebaseDomain::Music),
            "table20" => experience_table(&self.studies(), FreebaseDomain::Tv),
            "table21" => experience_table(&self.studies(), FreebaseDomain::People),
            "table22" | "table23" => tables22_23(),
            _ => return None,
        };
        Some(output)
    }
}

/// A multi-line "unknown experiment" error with a did-you-mean suggestion
/// (edit distance ≤ 2) and the full list of accepted names.
fn unknown_id_message(id: &str, catalog: &[(&'static str, &'static str)]) -> String {
    let names: Vec<&str> = ["list", "all"]
        .into_iter()
        .chain(catalog.iter().map(|(name, _)| *name))
        .collect();
    let mut message = format!("unknown experiment {id:?}");
    let mut suggestions = closest_matches(id, names.iter().copied(), 2);
    suggestions.truncate(3);
    match suggestions.as_slice() {
        [] => {}
        [only] => message.push_str(&format!("; did you mean {only:?}?")),
        several => message.push_str(&format!(
            "; did you mean one of {}?",
            several
                .iter()
                .map(|s| format!("{s:?}"))
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
    message.push_str(&format!(
        "\navailable names: {}\n(run `experiments list` for descriptions)",
        names.join(", ")
    ));
    message
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let catalog = experiment_catalog();

    // Reject unknown names up front so a typo cannot silently run only a
    // prefix of the requested experiments (possibly hours of work) first.
    for id in &options.ids {
        let known = id == "list" || id == "all" || catalog.iter().any(|(name, _)| name == id);
        if !known {
            eprintln!("error: {}", unknown_id_message(id, &catalog));
            return ExitCode::FAILURE;
        }
    }

    let mut harness = Harness::new(options.scale, options.seed);

    for id in &options.ids {
        match id.as_str() {
            "list" => {
                println!("Available experiments (run with `experiments <id>` or `all`):");
                for (name, description) in &catalog {
                    println!("  {name:<8} {description}");
                }
            }
            "all" => {
                // `table22`/`table23` print together; avoid a duplicate block.
                for (name, _) in catalog.iter().filter(|(n, _)| *n != "table23") {
                    println!("================================================================");
                    match harness.run(name) {
                        Some(output) => println!("{output}"),
                        None => println!("(unknown experiment {name})"),
                    }
                }
            }
            other => match harness.run(other) {
                Some(output) => println!("{output}"),
                None => {
                    // Unreachable after the upfront validation, but kept as a
                    // defensive backstop should catalog and harness diverge.
                    eprintln!("error: {}", unknown_id_message(other, &catalog));
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    ExitCode::SUCCESS
}
