//! Benchmark and experiment harness.
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! section (see `EXPERIMENTS.md` at the workspace root for the mapping and the
//! recorded outputs). It is organised as a library of experiment functions —
//! each returning a printable report — plus:
//!
//! * the `experiments` binary (`cargo run -p bench --release --bin
//!   experiments -- <id|all>`), which prints paper-style tables, and
//! * Criterion benches (`cargo bench -p bench`) for the efficiency figures
//!   (Figs. 8–9) and the scoring/schema substrate.

#![forbid(unsafe_code)]

pub mod context;
pub mod efficiency;
pub mod graph_core;
pub mod samples;
pub mod scoring_accuracy;
pub mod service_workload;
pub mod userstudy_exp;
pub mod util;

/// All experiment identifiers understood by the `experiments` binary, with a
/// one-line description each.
pub fn experiment_catalog() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "table2",
            "Sizes of entity/schema graphs for the seven domains",
        ),
        (
            "table3",
            "MRR of non-key attribute scoring (coverage, entropy)",
        ),
        (
            "table4",
            "PCC of key/non-key scoring vs. simulated crowd ranking",
        ),
        ("fig5", "Precision-at-K of key attribute scoring"),
        ("fig6", "Average precision of key attribute scoring"),
        ("fig7", "nDCG of key attribute scoring"),
        (
            "fig8",
            "Execution time of optimal concise preview discovery (BF vs DP)",
        ),
        (
            "fig9",
            "Execution time of optimal tight/diverse preview discovery (BF vs Apriori)",
        ),
        ("table5", "User-study sample sizes and conversion rates"),
        ("table6", "Approaches sorted by median existence-test time"),
        (
            "table7",
            "Pairwise z-tests of conversion rates, domain=music",
        ),
        ("table8", "User experience questionnaire"),
        (
            "table9",
            "Approaches sorted by average user-experience score",
        ),
        (
            "fig10",
            "Time per existence-test task, domain=music (box plot)",
        ),
        (
            "fig11",
            "Time per existence-test task, domain=books (box plot)",
        ),
        (
            "fig12",
            "Time per existence-test task, domain=film (box plot)",
        ),
        (
            "fig13",
            "Time per existence-test task, domain=TV (box plot)",
        ),
        (
            "fig14",
            "Time per existence-test task, domain=people (box plot)",
        ),
        ("table10", "Freebase gold standard preview schemas"),
        ("table11", "Sample optimal concise previews"),
        ("table12", "Sample optimal tight/diverse previews (film)"),
        (
            "table13",
            "Pairwise z-tests of conversion rates, domain=books",
        ),
        (
            "table14",
            "Pairwise z-tests of conversion rates, domain=film",
        ),
        ("table15", "Pairwise z-tests of conversion rates, domain=TV"),
        (
            "table16",
            "Pairwise z-tests of conversion rates, domain=people",
        ),
        ("table17", "User experience scores, domain=books"),
        ("table18", "User experience scores, domain=film"),
        ("table19", "User experience scores, domain=music"),
        ("table20", "User experience scores, domain=TV"),
        ("table21", "User experience scores, domain=people"),
        (
            "table22",
            "P@K of Freebase key attributes against the Experts ground truth",
        ),
        (
            "table23",
            "P@K of Experts key attributes against the Freebase ground truth",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn catalog_covers_every_table_and_figure() {
        let catalog = super::experiment_catalog();
        assert_eq!(catalog.len(), 32);
        for figure in 5..=14 {
            assert!(catalog.iter().any(|(id, _)| *id == format!("fig{figure}")));
        }
        for table in 2..=23 {
            assert!(catalog.iter().any(|(id, _)| *id == format!("table{table}")));
        }
    }
}
