//! Algorithm-efficiency experiments: Fig. 8 (concise, Brute-Force vs. DP) and
//! Fig. 9 (tight/diverse, Brute-Force vs. Apriori).
//!
//! The paper times C++ implementations on a 2008 Xeon; absolute numbers are
//! not comparable, but the *relative* behaviour (the DP and Apriori algorithms
//! beating the brute force by orders of magnitude, and the exceptions on the
//! smallest domain and for very small `k`) is algorithmic and reproduced here.
//!
//! Brute-force runs whose subset count exceeds a configurable limit are not
//! executed; instead the harness measures the brute force at the largest
//! feasible `k'` and extrapolates linearly in the number of enumerated
//! subsets, reporting the value as an estimate (marked with `~`). This mirrors
//! how one would reproduce the paper's multi-hour brute-force bars without
//! spending multiple hours.

use datagen::FreebaseDomain;
use preview_core::{
    brute_force_subset_count, AprioriDiscovery, BruteForceDiscovery, DynamicProgrammingDiscovery,
    PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};

use crate::context::DomainContext;
use crate::util::{timed, TextTable};

/// Parameters of the efficiency experiments.
#[derive(Debug, Clone)]
pub struct EfficiencyConfig {
    /// Maximum number of k-subsets the brute force is allowed to enumerate
    /// before the harness switches to extrapolation.
    pub bf_subset_limit: u128,
    /// `k` sweep for the "vary k" panels (the paper uses 3–9).
    pub k_values: Vec<usize>,
    /// `n` sweep for the "vary n" panels (the paper uses 8–20).
    pub n_values: Vec<usize>,
    /// `k` used by the vary-`n` and vary-`d` panels (the paper uses 6).
    pub fixed_k: usize,
    /// Distance bound used for the tight panels (the paper uses 2).
    pub tight_d: u32,
    /// Distance bound used for the diverse panels (the paper uses 4).
    pub diverse_d: u32,
    /// `d` sweep for the tight vary-`d` panel. Defaults to 2–4: the paper
    /// itself notes that very loose tight constraints (d≈6) make "most
    /// previews tight" and blow the candidate set up without being useful.
    pub tight_d_sweep: Vec<u32>,
    /// `d` sweep for the diverse vary-`d` panel. Defaults to 3–6: a diverse
    /// constraint of d=2 admits almost every pair and is the pathological
    /// case the paper calls out.
    pub diverse_d_sweep: Vec<u32>,
    /// Scale factor for the generated domains.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for EfficiencyConfig {
    fn default() -> Self {
        Self {
            bf_subset_limit: 100_000,
            k_values: vec![3, 4, 5, 6, 7, 8, 9],
            n_values: vec![8, 12, 16, 20],
            fixed_k: 6,
            tight_d: 2,
            diverse_d: 4,
            tight_d_sweep: vec![2, 3, 4],
            diverse_d_sweep: vec![3, 4, 5, 6],
            scale: 2e-4,
            seed: 2016,
        }
    }
}

impl EfficiencyConfig {
    /// A reduced sweep used by the test suite and quick runs.
    pub fn quick() -> Self {
        Self {
            bf_subset_limit: 20_000,
            k_values: vec![3],
            n_values: vec![8],
            fixed_k: 3,
            tight_d_sweep: vec![2],
            diverse_d_sweep: vec![4],
            scale: 1e-4,
            ..Self::default()
        }
    }
}

/// A single timing measurement in milliseconds, possibly extrapolated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Wall-clock milliseconds (measured or extrapolated).
    pub millis: f64,
    /// Whether the value was extrapolated rather than measured.
    pub estimated: bool,
}

impl Timing {
    fn measured(millis: f64) -> Self {
        Self {
            millis,
            estimated: false,
        }
    }

    /// Formats the timing the way the figures report it (floor of 1 ms, `~`
    /// prefix for extrapolated values).
    pub fn display(&self) -> String {
        let value = if self.millis < 1.0 { 1.0 } else { self.millis };
        let text = if value < 100.0 {
            format!("{value:.1}")
        } else {
            format!("{value:.0}")
        };
        if self.estimated {
            format!("~{text}")
        } else {
            text
        }
    }
}

/// Times one algorithm on one preview space (always measured).
pub fn time_algorithm(
    algorithm: &dyn PreviewDiscovery,
    scored: &ScoredSchema,
    space: &PreviewSpace,
) -> Timing {
    let (result, duration) = timed(|| algorithm.discover(scored, space));
    // Discovery errors would indicate a misuse of the algorithm/space pairing,
    // which the callers below never do.
    debug_assert!(result.is_ok());
    drop(result);
    Timing::measured(duration.as_secs_f64() * 1e3)
}

/// Times the brute force, extrapolating when the subset count exceeds the
/// limit: the brute force is run at the largest `k' ≤ k` whose subset count is
/// within the limit and scaled by the ratio of subset counts.
pub fn time_brute_force(scored: &ScoredSchema, space: &PreviewSpace, limit: u128) -> Timing {
    let eligible = scored.eligible_types().len();
    let size = space.size();
    let full = brute_force_subset_count(eligible, size.tables);
    if full <= limit {
        return time_algorithm(&BruteForceDiscovery::new(), scored, space);
    }
    // Largest feasible k'.
    let mut reduced_k = size.tables;
    while reduced_k > 1 && brute_force_subset_count(eligible, reduced_k) > limit {
        reduced_k -= 1;
    }
    let reduced_space = match space {
        PreviewSpace::Concise(_) => PreviewSpace::concise(reduced_k, size.non_keys.max(reduced_k)),
        PreviewSpace::Tight(_, d) => {
            PreviewSpace::tight(reduced_k, size.non_keys.max(reduced_k), *d)
        }
        PreviewSpace::Diverse(_, d) => {
            PreviewSpace::diverse(reduced_k, size.non_keys.max(reduced_k), *d)
        }
    }
    .expect("reduced constraint is valid");
    let base = time_algorithm(&BruteForceDiscovery::new(), scored, &reduced_space);
    let reduced_count = brute_force_subset_count(eligible, reduced_k).max(1);
    let factor = full as f64 / reduced_count as f64;
    Timing {
        millis: base.millis * factor,
        estimated: true,
    }
}

/// Regenerates Fig. 8: execution time of optimal concise preview discovery.
pub fn fig8_concise(config: &EfficiencyConfig) -> String {
    let mut out = String::new();
    out.push_str("Figure 8: Execution time (ms) of optimal concise preview discovery\n");
    out.push_str(&format!(
        "(scale={}, brute-force values prefixed with ~ are extrapolated beyond {} subsets)\n",
        config.scale, config.bf_subset_limit
    ));

    // Panel 1: vary the domain, k=5, n=10.
    let mut panel1 = TextTable::new(vec![
        "Domain",
        "K",
        "N",
        "Brute-Force",
        "Dynamic-Programming",
    ]);
    let domains = [
        FreebaseDomain::Basketball,
        FreebaseDomain::Architecture,
        FreebaseDomain::Music,
    ];
    let mut music_scored = None;
    for domain in domains {
        let ctx = DomainContext::build(domain, config.scale, config.seed);
        let scored = ctx.scored(&ScoringConfig::coverage());
        let space = PreviewSpace::concise(5, 10).expect("valid constraint");
        let bf = time_brute_force(&scored, &space, config.bf_subset_limit);
        let dp = time_algorithm(&DynamicProgrammingDiscovery::new(), &scored, &space);
        panel1.row(vec![
            domain.name().to_string(),
            ctx.schema.type_count().to_string(),
            ctx.schema.relationship_type_count().to_string(),
            bf.display(),
            dp.display(),
        ]);
        if domain == FreebaseDomain::Music {
            music_scored = Some(scored);
        }
    }
    out.push_str("\nPanel (a): domains, k=5, n=10\n");
    out.push_str(&panel1.render());

    let music = music_scored.expect("music context built above");

    // Panel 2: music, vary k, n=20.
    let mut panel2 = TextTable::new(vec!["k", "Brute-Force", "Dynamic-Programming"]);
    for &k in &config.k_values {
        let space = PreviewSpace::concise(k, 20.max(k)).expect("valid constraint");
        let bf = time_brute_force(&music, &space, config.bf_subset_limit);
        let dp = time_algorithm(&DynamicProgrammingDiscovery::new(), &music, &space);
        panel2.row(vec![k.to_string(), bf.display(), dp.display()]);
    }
    out.push_str("\nPanel (b): music, n=20, vary k\n");
    out.push_str(&panel2.render());

    // Panel 3: music, vary n, k fixed (6 in the paper).
    let mut panel3 = TextTable::new(vec!["n", "Brute-Force", "Dynamic-Programming"]);
    for &n in &config.n_values {
        let space =
            PreviewSpace::concise(config.fixed_k, n.max(config.fixed_k)).expect("valid constraint");
        let bf = time_brute_force(&music, &space, config.bf_subset_limit);
        let dp = time_algorithm(&DynamicProgrammingDiscovery::new(), &music, &space);
        panel3.row(vec![n.to_string(), bf.display(), dp.display()]);
    }
    out.push_str(&format!(
        "\nPanel (c): music, k={}, vary n\n",
        config.fixed_k
    ));
    out.push_str(&panel3.render());
    out
}

/// Regenerates Fig. 9: execution time of optimal tight (d=2) and diverse (d=4)
/// preview discovery.
pub fn fig9_tight_diverse(config: &EfficiencyConfig) -> String {
    let mut out = String::new();
    out.push_str("Figure 9: Execution time (ms) of optimal tight/diverse preview discovery\n");
    out.push_str(&format!(
        "(scale={}, brute-force values prefixed with ~ are extrapolated beyond {} subsets)\n",
        config.scale, config.bf_subset_limit
    ));

    let build_space = |tight: bool, k: usize, n: usize, d: u32| -> PreviewSpace {
        if tight {
            PreviewSpace::tight(k, n.max(k), d).expect("valid constraint")
        } else {
            PreviewSpace::diverse(k, n.max(k), d).expect("valid constraint")
        }
    };

    for (label, tight, d_fixed, d_sweep) in [
        ("tight", true, config.tight_d, config.tight_d_sweep.clone()),
        (
            "diverse",
            false,
            config.diverse_d,
            config.diverse_d_sweep.clone(),
        ),
    ] {
        out.push_str(&format!("\n--- {label} previews (d={d_fixed}) ---\n"));

        // Panel (a): domains, k=5, n=10.
        let mut panel1 = TextTable::new(vec!["Domain", "Brute-Force", "Apriori"]);
        let domains = [
            FreebaseDomain::Basketball,
            FreebaseDomain::Architecture,
            FreebaseDomain::Music,
        ];
        let mut music_scored = None;
        for domain in domains {
            let ctx = DomainContext::build(domain, config.scale, config.seed);
            let scored = ctx.scored(&ScoringConfig::coverage());
            let space = build_space(tight, 5, 10, d_fixed);
            let bf = time_brute_force(&scored, &space, config.bf_subset_limit);
            let ap = time_algorithm(&AprioriDiscovery::new(), &scored, &space);
            panel1.row(vec![domain.name().to_string(), bf.display(), ap.display()]);
            if domain == FreebaseDomain::Music {
                music_scored = Some(scored);
            }
        }
        out.push_str("Panel (a): domains, k=5, n=10\n");
        out.push_str(&panel1.render());
        let music = music_scored.expect("music context built above");

        // Panel (b): music, vary k, n=20.
        let mut panel2 = TextTable::new(vec!["k", "Brute-Force", "Apriori"]);
        for &k in &config.k_values {
            let space = build_space(tight, k, 20, d_fixed);
            let bf = time_brute_force(&music, &space, config.bf_subset_limit);
            let ap = time_algorithm(&AprioriDiscovery::new(), &music, &space);
            panel2.row(vec![k.to_string(), bf.display(), ap.display()]);
        }
        out.push_str("Panel (b): music, n=20, vary k\n");
        out.push_str(&panel2.render());

        // Panel (c): music, vary n, k fixed.
        let mut panel3 = TextTable::new(vec!["n", "Brute-Force", "Apriori"]);
        for &n in &config.n_values {
            let space = build_space(tight, config.fixed_k, n, d_fixed);
            let bf = time_brute_force(&music, &space, config.bf_subset_limit);
            let ap = time_algorithm(&AprioriDiscovery::new(), &music, &space);
            panel3.row(vec![n.to_string(), bf.display(), ap.display()]);
        }
        out.push_str(&format!("Panel (c): music, k={}, vary n\n", config.fixed_k));
        out.push_str(&panel3.render());

        // Panel (d): music, vary d, k fixed, n=16.
        let mut panel4 = TextTable::new(vec!["d", "Brute-Force", "Apriori"]);
        for &d in &d_sweep {
            let space = build_space(tight, config.fixed_k, 16, d);
            let bf = time_brute_force(&music, &space, config.bf_subset_limit);
            let ap = time_algorithm(&AprioriDiscovery::new(), &music, &space);
            panel4.row(vec![d.to_string(), bf.display(), ap.display()]);
        }
        out.push_str(&format!(
            "Panel (d): music, k={}, n=16, vary d\n",
            config.fixed_k
        ));
        out.push_str(&panel4.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_display_formats() {
        assert_eq!(
            Timing {
                millis: 0.2,
                estimated: false
            }
            .display(),
            "1.0"
        );
        assert_eq!(
            Timing {
                millis: 12.34,
                estimated: false
            }
            .display(),
            "12.3"
        );
        assert_eq!(
            Timing {
                millis: 1234.0,
                estimated: true
            }
            .display(),
            "~1234"
        );
    }

    #[test]
    fn brute_force_extrapolates_when_over_limit() {
        let ctx = DomainContext::build(FreebaseDomain::Architecture, 1e-4, 1);
        let scored = ctx.scored(&ScoringConfig::coverage());
        let space = PreviewSpace::concise(6, 12).unwrap();
        // Architecture has 23 types: C(23, 6) = 100947 > 500.
        let timing = time_brute_force(&scored, &space, 500);
        assert!(timing.estimated);
        assert!(timing.millis > 0.0);
        // And measured when the limit is generous.
        let timing = time_brute_force(&scored, &space, 200_000);
        assert!(!timing.estimated);
    }

    #[test]
    fn dp_is_faster_than_brute_force_on_architecture() {
        let ctx = DomainContext::build(FreebaseDomain::Architecture, 1e-4, 1);
        let scored = ctx.scored(&ScoringConfig::coverage());
        let space = PreviewSpace::concise(5, 10).unwrap();
        let bf = time_brute_force(&scored, &space, 200_000);
        let dp = time_algorithm(&DynamicProgrammingDiscovery::new(), &scored, &space);
        assert!(!bf.estimated);
        assert!(
            dp.millis < bf.millis,
            "dp {} vs bf {}",
            dp.millis,
            bf.millis
        );
    }

    #[test]
    fn quick_fig8_and_fig9_render() {
        let config = EfficiencyConfig::quick();
        let fig8 = fig8_concise(&config);
        assert!(fig8.contains("basketball"));
        assert!(fig8.contains("music"));
        assert!(fig8.contains("Dynamic-Programming"));
        let fig9 = fig9_tight_diverse(&config);
        assert!(fig9.contains("tight"));
        assert!(fig9.contains("diverse"));
        assert!(fig9.contains("Apriori"));
    }
}
