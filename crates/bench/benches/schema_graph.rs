//! Criterion bench for the entity-graph substrate: graph generation, schema
//! derivation and the all-pairs distance matrix used by the tight/diverse
//! constraints.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use datagen::{FreebaseDomain, SyntheticGenerator};

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    for domain in [FreebaseDomain::Basketball, FreebaseDomain::Film] {
        let spec = domain.spec(1e-4);
        group.bench_with_input(
            BenchmarkId::new("generate_graph", domain.name()),
            &spec,
            |b, spec| b.iter(|| SyntheticGenerator::new(2016).generate(spec)),
        );
        let graph = SyntheticGenerator::new(2016).generate(&spec);
        // `schema_graph()` is memoized; measure the uncached derivation.
        group.bench_with_input(
            BenchmarkId::new("derive_schema", domain.name()),
            &graph,
            |b, graph| b.iter(|| graph.derive_schema_graph()),
        );
        let schema = graph.schema_graph();
        group.bench_with_input(
            BenchmarkId::new("distance_matrix", domain.name()),
            &schema,
            |b, schema| b.iter(|| schema.distance_matrix()),
        );
    }
    group.finish();
}

criterion_group! {
    name = substrate;
    config = configure(&mut Criterion::default());
    targets = bench_substrate
}
criterion_main!(substrate);
