//! Criterion bench for the scoring substrate (Sec. 3): building a
//! [`ScoredSchema`] under each key/non-key measure combination.
//!
//! The paper pre-computes scores once per graph and reuses them across all
//! constraint settings; this bench verifies that the pre-computation itself is
//! cheap relative to discovery.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::context::DomainContext;
use datagen::FreebaseDomain;
use preview_core::{KeyScoring, NonKeyScoring, ScoredSchema, ScoringConfig};

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_scoring(c: &mut Criterion) {
    let ctx = DomainContext::build(FreebaseDomain::Film, 2e-4, 2016);
    let mut group = c.benchmark_group("scoring/build_scored_schema");
    let configs = [
        (
            "coverage_coverage",
            ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Coverage),
        ),
        (
            "randomwalk_coverage",
            ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Coverage),
        ),
        (
            "coverage_entropy",
            ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy),
        ),
        (
            "randomwalk_entropy",
            ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Entropy),
        ),
    ];
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| ScoredSchema::build(&ctx.graph, config).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = scoring;
    config = configure(&mut Criterion::default());
    targets = bench_scoring
}
criterion_main!(scoring);
