//! Criterion bench for the CSR graph core: the `neighbors_via` sweep at the
//! heart of entropy scoring and materialisation, measured through the
//! zero-alloc CSR path and the naive pre-CSR scan-filter-sort-dedup path,
//! plus full entropy scoring and preview materialisation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::graph_core::{
    csr_entropy_scores, csr_neighbor_sweep, discovery_fixture, materialise_preview,
    naive_entropy_scores, naive_neighbor_sweep,
};
use datagen::{FreebaseDomain, SyntheticGenerator};

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_graph_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_core");
    for domain in [FreebaseDomain::Basketball, FreebaseDomain::Film] {
        let graph = SyntheticGenerator::new(2016).generate(&domain.spec(1e-4));
        let schema = graph.schema_graph().clone();

        group.bench_with_input(
            BenchmarkId::new("neighbor_sweep_csr", domain.name()),
            &graph,
            |b, graph| b.iter(|| csr_neighbor_sweep(graph, &schema)),
        );
        group.bench_with_input(
            BenchmarkId::new("neighbor_sweep_naive", domain.name()),
            &graph,
            |b, graph| b.iter(|| naive_neighbor_sweep(graph, &schema)),
        );
        group.bench_with_input(
            BenchmarkId::new("entropy_scores_csr", domain.name()),
            &graph,
            |b, graph| b.iter(|| csr_entropy_scores(graph, &schema)),
        );
        group.bench_with_input(
            BenchmarkId::new("entropy_scores_naive", domain.name()),
            &graph,
            |b, graph| b.iter(|| naive_entropy_scores(graph, &schema)),
        );
        let (scored, preview) = discovery_fixture(&graph);
        group.bench_with_input(
            BenchmarkId::new("materialise_preview", domain.name()),
            &graph,
            |b, graph| b.iter(|| materialise_preview(graph, &scored, &preview)),
        );
    }
    group.finish();
}

criterion_group! {
    name = graph_core;
    config = configure(&mut Criterion::default());
    targets = bench_graph_core
}
criterion_main!(graph_core);
