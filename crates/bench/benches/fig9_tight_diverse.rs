//! Criterion bench for Fig. 9: optimal *tight/diverse* preview discovery,
//! Brute-Force vs. Apriori, across domains, `k`, `n` and `d`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::context::DomainContext;
use datagen::FreebaseDomain;
use preview_core::{
    AprioriDiscovery, BruteForceDiscovery, PreviewDiscovery, PreviewSpace, ScoringConfig,
};

const SCALE: f64 = 1e-4;
const SEED: u64 = 2016;

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_domains(c: &mut Criterion) {
    for (flavor, space) in [
        ("tight_d2", PreviewSpace::tight(5, 10, 2).expect("valid")),
        (
            "diverse_d4",
            PreviewSpace::diverse(5, 10, 4).expect("valid"),
        ),
    ] {
        let mut group = c.benchmark_group(format!("fig9/domains_k5_n10_{flavor}"));
        for domain in [
            FreebaseDomain::Basketball,
            FreebaseDomain::Architecture,
            FreebaseDomain::Music,
        ] {
            let ctx = DomainContext::build(domain, SCALE, SEED);
            let scored = ctx.scored(&ScoringConfig::coverage());
            if ctx.schema.type_count() <= 25 {
                group.bench_with_input(
                    BenchmarkId::new("brute-force", domain.name()),
                    &scored,
                    |b, scored| {
                        b.iter(|| BruteForceDiscovery::new().discover(scored, &space).unwrap())
                    },
                );
            }
            group.bench_with_input(
                BenchmarkId::new("apriori", domain.name()),
                &scored,
                |b, scored| b.iter(|| AprioriDiscovery::new().discover(scored, &space).unwrap()),
            );
        }
        group.finish();
    }
}

fn bench_music_vary_k(c: &mut Criterion) {
    let ctx = DomainContext::build(FreebaseDomain::Music, SCALE, SEED);
    let scored = ctx.scored(&ScoringConfig::coverage());
    let mut group = c.benchmark_group("fig9/music_n20_vary_k");
    for k in [3usize, 4, 5, 6] {
        for (flavor, space) in [
            ("tight_d2", PreviewSpace::tight(k, 20, 2).expect("valid")),
            (
                "diverse_d4",
                PreviewSpace::diverse(k, 20, 4).expect("valid"),
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("apriori_{flavor}"), k),
                &space,
                |b, space| b.iter(|| AprioriDiscovery::new().discover(&scored, space).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_music_vary_d(c: &mut Criterion) {
    let ctx = DomainContext::build(FreebaseDomain::Music, SCALE, SEED);
    let scored = ctx.scored(&ScoringConfig::coverage());
    let mut group = c.benchmark_group("fig9/music_k5_n16_vary_d");
    for d in [2u32, 3, 4] {
        let space = PreviewSpace::tight(5, 16, d).expect("valid");
        group.bench_with_input(BenchmarkId::new("apriori_tight", d), &space, |b, space| {
            b.iter(|| AprioriDiscovery::new().discover(&scored, space).unwrap())
        });
    }
    for d in [3u32, 4, 5] {
        let space = PreviewSpace::diverse(5, 16, d).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("apriori_diverse", d),
            &space,
            |b, space| b.iter(|| AprioriDiscovery::new().discover(&scored, space).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = fig9;
    config = configure(&mut Criterion::default());
    targets = bench_domains, bench_music_vary_k, bench_music_vary_d
}
criterion_main!(fig9);
