//! Criterion bench for Fig. 8: optimal *concise* preview discovery,
//! Brute-Force vs. Dynamic-Programming, across domains and size constraints.
//!
//! The brute force is only benchmarked on the domains/settings where its
//! subset count is small enough to finish in reasonable time (basketball and
//! architecture); the extrapolated large-domain numbers are produced by the
//! `experiments -- fig8` binary instead.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::context::DomainContext;
use datagen::FreebaseDomain;
use preview_core::{
    BruteForceDiscovery, DynamicProgrammingDiscovery, PreviewDiscovery, PreviewSpace, ScoringConfig,
};

const SCALE: f64 = 1e-4;
const SEED: u64 = 2016;

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_domains(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/domains_k5_n10");
    let space = PreviewSpace::concise(5, 10).expect("valid constraint");
    for domain in [
        FreebaseDomain::Basketball,
        FreebaseDomain::Architecture,
        FreebaseDomain::Music,
    ] {
        let ctx = DomainContext::build(domain, SCALE, SEED);
        let scored = ctx.scored(&ScoringConfig::coverage());
        // Brute force only where feasible (C(K,5) small).
        if ctx.schema.type_count() <= 25 {
            group.bench_with_input(
                BenchmarkId::new("brute-force", domain.name()),
                &scored,
                |b, scored| b.iter(|| BruteForceDiscovery::new().discover(scored, &space).unwrap()),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("dynamic-programming", domain.name()),
            &scored,
            |b, scored| {
                b.iter(|| {
                    DynamicProgrammingDiscovery::new()
                        .discover(scored, &space)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_music_vary_k(c: &mut Criterion) {
    let ctx = DomainContext::build(FreebaseDomain::Music, SCALE, SEED);
    let scored = ctx.scored(&ScoringConfig::coverage());
    let mut group = c.benchmark_group("fig8/music_n20_vary_k");
    for k in [3usize, 6, 9] {
        let space = PreviewSpace::concise(k, 20).expect("valid constraint");
        group.bench_with_input(
            BenchmarkId::new("dynamic-programming", k),
            &space,
            |b, space| {
                b.iter(|| {
                    DynamicProgrammingDiscovery::new()
                        .discover(&scored, space)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_music_vary_n(c: &mut Criterion) {
    let ctx = DomainContext::build(FreebaseDomain::Music, SCALE, SEED);
    let scored = ctx.scored(&ScoringConfig::coverage());
    let mut group = c.benchmark_group("fig8/music_k6_vary_n");
    for n in [8usize, 14, 20] {
        let space = PreviewSpace::concise(6, n).expect("valid constraint");
        group.bench_with_input(
            BenchmarkId::new("dynamic-programming", n),
            &space,
            |b, space| {
                b.iter(|| {
                    DynamicProgrammingDiscovery::new()
                        .discover(&scored, space)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = fig8;
    config = configure(&mut Criterion::default());
    targets = bench_domains, bench_music_vary_k, bench_music_vary_n
}
criterion_main!(fig8);
