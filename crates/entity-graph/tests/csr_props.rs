//! Property tests for the CSR graph core: on randomly generated multigraphs
//! the flat `neighbors_via` / `out_edges` / `in_edges` / `entities_of_type` /
//! `edges_of_rel_type` indexes must agree with a naive reference
//! implementation that scans the raw edge list, and round-tripping through
//! the triple text format — the workspace's on-disk representation — must
//! preserve the entire adjacency structure.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use entity_graph::{
    triples, Direction, EntityGraph, EntityGraphBuilder, EntityId, RelTypeId, TypeId,
};

/// A naive adjacency model built straight from the raw edge list, mirroring
/// the pre-CSR `Vec<Vec<_>>` implementation: scan, filter, sort, dedup.
struct NaiveReference {
    /// (src, dst, rel) per edge, in insertion order.
    edges: Vec<(EntityId, EntityId, RelTypeId)>,
}

impl NaiveReference {
    fn of(graph: &EntityGraph) -> Self {
        Self {
            edges: graph.edges().map(|(_, e)| (e.src, e.dst, e.rel)).collect(),
        }
    }

    fn neighbors_via(
        &self,
        entity: EntityId,
        rel: RelTypeId,
        direction: Direction,
    ) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .edges
            .iter()
            .filter_map(|&(src, dst, r)| {
                if r != rel {
                    return None;
                }
                match direction {
                    Direction::Outgoing => (src == entity).then_some(dst),
                    Direction::Incoming => (dst == entity).then_some(src),
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn out_degree(&self, entity: EntityId) -> usize {
        self.edges
            .iter()
            .filter(|&&(src, _, _)| src == entity)
            .count()
    }

    fn in_degree(&self, entity: EntityId) -> usize {
        self.edges
            .iter()
            .filter(|&&(_, dst, _)| dst == entity)
            .count()
    }
}

/// Generates a random multigraph (parallel edges, self-referencing types,
/// entities with several types) deterministically from a seed.
fn random_graph(seed: u64, types: usize, rel_types: usize, edges: usize) -> EntityGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = EntityGraphBuilder::new();
    let type_ids: Vec<TypeId> = (0..types)
        .map(|i| builder.entity_type(&format!("T{i}")))
        .collect();
    let entities: Vec<Vec<EntityId>> = type_ids
        .iter()
        .enumerate()
        .map(|(i, &ty)| {
            (0..rng.gen_range(1..6))
                .map(|j| {
                    // Some entities carry a second type.
                    let mut tys = vec![ty];
                    if rng.gen_bool(0.2) {
                        tys.push(type_ids[rng.gen_range(0..types)]);
                    }
                    builder.entity(&format!("e{i}-{j}"), &tys)
                })
                .collect()
        })
        .collect();
    // Reuse a few surface names so relationship types share names (the
    // paper's `Award Winners` case) and the interned key must disambiguate.
    let rels: Vec<(RelTypeId, usize, usize)> = (0..rel_types)
        .map(|i| {
            let src = rng.gen_range(0..types);
            let dst = rng.gen_range(0..types);
            let name = format!("r{}", i % 3);
            (
                builder.relationship_type(&name, type_ids[src], type_ids[dst]),
                src,
                dst,
            )
        })
        .collect();
    for _ in 0..edges {
        let &(rel, src, dst) = &rels[rng.gen_range(0..rels.len())];
        let s = entities[src][rng.gen_range(0..entities[src].len())];
        let d = entities[dst][rng.gen_range(0..entities[dst].len())];
        builder
            .edge(s, rel, d)
            .expect("endpoints carry the right types");
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The CSR `neighbors_via` slice equals the naive scan-filter-sort-dedup
    /// result for every (entity, relationship type, direction) triple.
    #[test]
    fn neighbors_via_matches_naive_reference(
        seed in 0u64..100_000,
        types in 2usize..5,
        rel_types in 1usize..6,
        edges in 0usize..60,
    ) {
        let graph = random_graph(seed, types, rel_types, edges);
        let reference = NaiveReference::of(&graph);
        for (entity, _) in graph.entities() {
            for (rel, _) in graph.rel_types() {
                for direction in [Direction::Outgoing, Direction::Incoming] {
                    let csr = graph.neighbors_via(entity, rel, direction);
                    let naive = reference.neighbors_via(entity, rel, direction);
                    prop_assert_eq!(csr, naive.as_slice());
                    // The owned shim agrees with the borrowed slice.
                    prop_assert_eq!(
                        graph.neighbors_via_owned(entity, rel, direction),
                        naive
                    );
                }
            }
        }
    }

    /// Per-entity edge lists and per-group CSR indexes partition the edge set
    /// exactly: degrees match a naive count and every edge id appears in the
    /// right group.
    #[test]
    fn edge_indexes_match_naive_reference(
        seed in 0u64..100_000,
        types in 2usize..5,
        rel_types in 1usize..6,
        edges in 0usize..60,
    ) {
        let graph = random_graph(seed, types, rel_types, edges);
        let reference = NaiveReference::of(&graph);
        let mut out_total = 0;
        let mut in_total = 0;
        for (entity, _) in graph.entities() {
            let out = graph.out_edges(entity);
            let inc = graph.in_edges(entity);
            prop_assert_eq!(out.len(), reference.out_degree(entity));
            prop_assert_eq!(inc.len(), reference.in_degree(entity));
            for &eid in out {
                prop_assert_eq!(graph.edge(eid).src, entity);
            }
            for &eid in inc {
                prop_assert_eq!(graph.edge(eid).dst, entity);
            }
            out_total += out.len();
            in_total += inc.len();
        }
        prop_assert_eq!(out_total, graph.edge_count());
        prop_assert_eq!(in_total, graph.edge_count());

        let mut by_rel_total = 0;
        for (rel, _) in graph.rel_types() {
            for &eid in graph.edges_of_rel_type(rel) {
                prop_assert_eq!(graph.edge(eid).rel, rel);
            }
            by_rel_total += graph.edges_of_rel_type(rel).len();
        }
        prop_assert_eq!(by_rel_total, graph.edge_count());

        let mut by_type_total = 0;
        for (ty, _) in graph.types() {
            for &entity in graph.entities_of_type(ty) {
                prop_assert!(graph.entity(entity).has_type(ty));
            }
            by_type_total += graph.entities_of_type(ty).len();
        }
        let type_memberships: usize =
            graph.entities().map(|(_, e)| e.types.len()).sum();
        prop_assert_eq!(by_type_total, type_memberships);
    }

    /// `rel_type_by_key` resolves every relationship type through the interned
    /// borrowed key, including shared surface names, and misses cleanly.
    #[test]
    fn rel_type_lookup_is_total_and_exact(
        seed in 0u64..100_000,
        types in 2usize..5,
        rel_types in 1usize..6,
    ) {
        let graph = random_graph(seed, types, rel_types, 10);
        for (id, rel) in graph.rel_types() {
            prop_assert_eq!(
                graph.rel_type_by_key(&rel.name, rel.src_type, rel.dst_type),
                Some(id)
            );
        }
        prop_assert_eq!(graph.rel_type_by_key("no such rel", TypeId::new(0), TypeId::new(0)), None);
    }

    /// Round-tripping through the triple text format — the workspace's
    /// serialized graph representation — rebuilds an equivalent CSR graph:
    /// same counts, same per-type groups, same neighbor sets (entities are
    /// re-interned, so equivalence is checked by name).
    #[test]
    fn triple_roundtrip_preserves_csr_adjacency(
        seed in 0u64..100_000,
        types in 2usize..4,
        rel_types in 1usize..5,
        edges in 1usize..40,
    ) {
        let graph = random_graph(seed, types, rel_types, edges);
        let reparsed = triples::parse_str(&triples::to_string(&graph)).expect("round-trip parses");
        prop_assert_eq!(graph.entity_count(), reparsed.entity_count());
        prop_assert_eq!(graph.edge_count(), reparsed.edge_count());
        prop_assert_eq!(graph.type_count(), reparsed.type_count());
        prop_assert_eq!(graph.relationship_type_count(), reparsed.relationship_type_count());

        let names_of = |g: &EntityGraph, ids: &[EntityId]| -> Vec<String> {
            let mut names: Vec<String> =
                ids.iter().map(|&n| g.entity(n).name.clone()).collect();
            names.sort_unstable();
            names
        };
        let reparsed_ids: HashMap<String, EntityId> = reparsed
            .entities()
            .map(|(id, e)| (e.name.clone(), id))
            .collect();
        for (entity, record) in graph.entities() {
            let twin = reparsed_ids[&record.name];
            for (rel, rel_record) in graph.rel_types() {
                let twin_rel = reparsed
                    .rel_type_by_key(
                        &rel_record.name,
                        reparsed.type_by_name(graph.type_name(rel_record.src_type)).unwrap(),
                        reparsed.type_by_name(graph.type_name(rel_record.dst_type)).unwrap(),
                    )
                    .expect("relationship type survives the round trip");
                for direction in [Direction::Outgoing, Direction::Incoming] {
                    prop_assert_eq!(
                        names_of(&graph, graph.neighbors_via(entity, rel, direction)),
                        names_of(&reparsed, reparsed.neighbors_via(twin, twin_rel, direction))
                    );
                }
            }
        }
    }
}
