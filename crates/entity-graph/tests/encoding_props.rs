//! Property tests for the varint/delta neighbor encoding and the sharded
//! storage layer built on it.
//!
//! The encoding's contract is *canonicality*: `encode_segment` is a
//! bijection between sorted deduplicated id slices and byte strings, so
//! byte equality of encoded segments is exactly set equality of neighbor
//! sets. Cross-shard entropy aggregation groups by encoded bytes and is
//! only correct because of this — so the property is pinned here, over
//! arbitrary id sets including the empty and single-element cases.
//!
//! The sharded model check mirrors `delta_props`: applying a random delta
//! to a [`ShardedGraph`] must equal resharding the spliced logical graph
//! from scratch, under arbitrary sharding strategies.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

use entity_graph::encoding::{decode_segment, decode_u32, encode_segment, encode_u32};
use entity_graph::{
    EntityGraph, EntityGraphBuilder, EntityId, GraphDelta, ShardedGraph, ShardingStrategy,
};

/// Strategy for a sorted, deduplicated id list — the exact shape
/// `encode_segment` accepts. Lengths include 0 and 1; the id domain is
/// sometimes tiny (so independently drawn sets collide and the equal-sets
/// branch of the canonicality property is actually exercised) and sometimes
/// the full `u32` range below the `u32::MAX` sentinel.
#[derive(Clone, Copy)]
struct SortedIds;

impl Strategy for SortedIds {
    type Value = Vec<EntityId>;

    fn generate(&self, rng: &mut TestRng) -> Vec<EntityId> {
        use rand::Rng as _;
        let rng = rng.rng();
        let max_id: u32 = if rng.gen_bool(0.5) { 16 } else { u32::MAX - 1 };
        let len = rng.gen_range(0..40usize);
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..len {
            set.insert(rng.gen_range(0..=max_id));
        }
        set.into_iter()
            .map(|raw| EntityId::from_usize(raw as usize))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// LEB128 round-trip over the full `u32` range, and the decoder
    /// consumes exactly the bytes the encoder produced.
    #[test]
    fn varint_round_trips(value in 0u32..=u32::MAX, trailing in 0u8..=u8::MAX) {
        let mut bytes = Vec::new();
        encode_u32(value, &mut bytes);
        prop_assert!(bytes.len() <= 5);
        let encoded_len = bytes.len();
        bytes.push(trailing);
        let mut pos = 0;
        prop_assert_eq!(decode_u32(&bytes, &mut pos), Some(value));
        prop_assert_eq!(pos, encoded_len);
    }

    /// Segment round-trip: encode → decode restores the ids exactly,
    /// including the empty and single-id segments, and reports the
    /// decoded id count.
    #[test]
    fn segment_round_trips(ids in SortedIds) {
        let mut bytes = Vec::new();
        encode_segment(&ids, &mut bytes);
        let mut decoded = Vec::new();
        let count = decode_segment(&bytes, &mut decoded);
        prop_assert_eq!(count, Some(ids.len()));
        prop_assert_eq!(decoded, ids);
    }

    /// Canonicality: encoded bytes are equal **iff** the id sets are equal.
    /// The forward direction is determinism; the reverse (distinct sets
    /// never collide) is what lets the sharded entropy scorer group tuples
    /// by encoded bytes instead of decoded neighbor lists.
    #[test]
    fn encoding_is_canonical(a in SortedIds, b in SortedIds) {
        let mut bytes_a = Vec::new();
        let mut bytes_b = Vec::new();
        encode_segment(&a, &mut bytes_a);
        encode_segment(&b, &mut bytes_b);
        prop_assert_eq!(bytes_a == bytes_b, a == b);
    }
}

/// Random multigraph, same shape family as `delta_props`.
fn random_graph(seed: u64, types: usize, rel_types: usize, edges: usize) -> EntityGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = EntityGraphBuilder::new();
    let type_ids: Vec<_> = (0..types)
        .map(|i| builder.entity_type(&format!("T{i}")))
        .collect();
    let entities: Vec<Vec<_>> = type_ids
        .iter()
        .enumerate()
        .map(|(i, &ty)| {
            (0..rng.gen_range(1..6))
                .map(|j| builder.entity(&format!("e{i}-{j}"), &[ty]))
                .collect()
        })
        .collect();
    let rels: Vec<_> = (0..rel_types)
        .map(|i| {
            let src = rng.gen_range(0..types);
            let dst = rng.gen_range(0..types);
            (
                builder.relationship_type(&format!("r{}", i % 3), type_ids[src], type_ids[dst]),
                src,
                dst,
            )
        })
        .collect();
    for _ in 0..edges {
        let &(rel, src, dst) = &rels[rng.gen_range(0..rels.len())];
        let s = entities[src][rng.gen_range(0..entities[src].len())];
        let d = entities[dst][rng.gen_range(0..entities[dst].len())];
        builder.edge(s, rel, d).expect("endpoints carry the types");
    }
    builder.build()
}

/// A random always-valid delta built by inspecting the graph directly:
/// fresh entities, extra parallel edges of existing relationship types,
/// removals of existing edges, and removals of edgeless entities (which
/// force the full-reshard path).
fn random_delta(rng: &mut ChaCha8Rng, graph: &EntityGraph, ops: usize) -> GraphDelta {
    let type_names: Vec<String> = graph.types().map(|(_, n)| n.to_owned()).collect();
    let edge_list: Vec<(String, String, String, String, String)> = graph
        .edges()
        .map(|(_, e)| {
            let rel = graph.rel_type(e.rel);
            (
                graph.entity(e.src).name.clone(),
                rel.name.clone(),
                graph.entity(e.dst).name.clone(),
                type_names[rel.src_type.index()].clone(),
                type_names[rel.dst_type.index()].clone(),
            )
        })
        .collect();
    let mut delta = GraphDelta::new();
    let mut removed_edges: Vec<usize> = Vec::new();
    let mut fresh = 0u32;
    for _ in 0..ops {
        match rng.gen_range(0..10u32) {
            // Fresh entity under an existing type.
            0..=3 => {
                let name = format!("shard-added-{fresh}");
                fresh += 1;
                let ty = &type_names[rng.gen_range(0..type_names.len())];
                delta.add_entity(&name, &[ty]);
            }
            // Duplicate an existing edge (parallel instance).
            4..=6 => {
                if edge_list.is_empty() {
                    continue;
                }
                let (s, r, d, st, dt) = &edge_list[rng.gen_range(0..edge_list.len())];
                delta.add_edge(s, r, d, st, dt);
            }
            // Remove all parallel instances of an existing edge.
            7..=8 => {
                if edge_list.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..edge_list.len());
                let (s, r, d, st, dt) = &edge_list[i];
                delta.remove_edge(s, r, d, st, dt);
                removed_edges.push(i);
            }
            // Remove an entity that was edgeless at batch start (triggers
            // the id-compacting full reshard).
            _ => {
                let lonely: Vec<&str> = graph
                    .entities()
                    .filter(|(id, _)| {
                        graph
                            .neighbor_segments(*id, entity_graph::Direction::Outgoing)
                            .next()
                            .is_none()
                            && graph
                                .neighbor_segments(*id, entity_graph::Direction::Incoming)
                                .next()
                                .is_none()
                    })
                    .map(|(_, e)| e.name.as_str())
                    .collect();
                if lonely.is_empty() {
                    continue;
                }
                delta.remove_entity(lonely[rng.gen_range(0..lonely.len())]);
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Model check: applying a random delta through the sharded path equals
    /// sharding the spliced logical graph from scratch — under arbitrary
    /// strategies, covering both the stable-id fast path and the
    /// removal-triggered full reshard. When the batch is invalid (e.g. a
    /// removed edge was duplicated first and the endpoint removal now
    /// conflicts), both paths must agree on rejection and leave the sharded
    /// version untouched.
    #[test]
    fn sharded_apply_delta_matches_reshard_from_scratch(
        seed in 0u64..100_000,
        types in 2usize..5,
        rel_types in 1usize..6,
        edges in 0usize..40,
        ops in 1usize..12,
        shards in 1usize..6,
        by_type in proptest::bool::ANY,
    ) {
        let graph = Arc::new(random_graph(seed, types, rel_types, edges));
        let strategy = if by_type {
            ShardingStrategy::ByEntityType { shards }
        } else {
            ShardingStrategy::ByIdHash { shards }
        };
        let sharded = ShardedGraph::from_graph(Arc::clone(&graph), strategy);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0051_a24d);
        let delta = random_delta(&mut rng, &graph, ops);

        match graph.apply_delta(&delta) {
            Ok(applied) => {
                let applied_sharded = sharded
                    .apply_delta(&delta)
                    .expect("logical apply succeeded, sharded apply must too");
                prop_assert_eq!(&applied_sharded.summary, &applied.summary);
                // Shard-level equality against a from-scratch reshard of the
                // *same* logical result.
                let reference =
                    ShardedGraph::from_graph(Arc::new(applied.graph), strategy);
                prop_assert!(
                    applied_sharded.sharded == reference,
                    "sharded splice diverged from the from-scratch reshard"
                );
            }
            Err(expected) => {
                let err = sharded
                    .apply_delta(&delta)
                    .expect_err("logical apply failed, sharded apply must too");
                prop_assert_eq!(format!("{err}"), format!("{expected}"));
            }
        }
    }
}
