//! Property tests for the delta splice path: applying a random update stream
//! to a random multigraph must produce a graph **byte-identical** (full
//! structural equality, covering every CSR offset/payload array, both name
//! indexes and the interner) to building the updated content from scratch
//! through `EntityGraphBuilder`.
//!
//! Two independent references are used:
//!
//! * a naive *model* (plain vectors of names) that applies the same ops with
//!   the documented batch semantics and is rebuilt through the builder — so a
//!   splice bug that corrupts content *and* indexes consistently still fails,
//! * [`delta::rebuild`], the canonical replay of a graph through the builder
//!   — so the spliced indexes must be exactly what the builder would have
//!   produced.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use entity_graph::{delta, EntityGraph, EntityGraphBuilder, GraphDelta};

/// A naive content model: everything by name, applied with the documented
/// batch semantics, rebuilt through the builder for comparison.
#[derive(Clone)]
struct Model {
    types: Vec<String>,
    /// (surface name, src type index, dst type index), creation order.
    rels: Vec<(String, usize, usize)>,
    /// Live entities in insertion order: (name, sorted type indexes).
    entities: Vec<(String, Vec<usize>)>,
    /// Live edges in insertion order: (src name, rel index, dst name).
    edges: Vec<(String, usize, String)>,
}

impl Model {
    fn of(graph: &EntityGraph) -> Self {
        Self {
            types: graph.types().map(|(_, n)| n.to_owned()).collect(),
            rels: graph
                .rel_types()
                .map(|(_, r)| (r.name.clone(), r.src_type.index(), r.dst_type.index()))
                .collect(),
            entities: graph
                .entities()
                .map(|(_, e)| (e.name.clone(), e.types.iter().map(|t| t.index()).collect()))
                .collect(),
            edges: graph
                .edges()
                .map(|(_, e)| {
                    (
                        graph.entity(e.src).name.clone(),
                        e.rel.index(),
                        graph.entity(e.dst).name.clone(),
                    )
                })
                .collect(),
        }
    }

    fn type_idx(&mut self, name: &str) -> usize {
        if let Some(i) = self.types.iter().position(|t| t == name) {
            return i;
        }
        self.types.push(name.to_owned());
        self.types.len() - 1
    }

    fn rel_idx(&mut self, name: &str, src: usize, dst: usize) -> usize {
        if let Some(i) = self
            .rels
            .iter()
            .position(|(n, s, d)| n == name && *s == src && *d == dst)
        {
            return i;
        }
        self.rels.push((name.to_owned(), src, dst));
        self.rels.len() - 1
    }

    fn degree(&self, name: &str) -> usize {
        self.edges
            .iter()
            .filter(|(s, _, d)| s == name || d == name)
            .count()
    }

    /// Rebuilds the modelled content through the builder — the canonical
    /// "build from the updated triple set" reference.
    fn build(&self) -> EntityGraph {
        let mut b = EntityGraphBuilder::new();
        let type_ids: Vec<_> = self.types.iter().map(|t| b.entity_type(t)).collect();
        let rel_ids: Vec<_> = self
            .rels
            .iter()
            .map(|(name, s, d)| b.relationship_type(name, type_ids[*s], type_ids[*d]))
            .collect();
        for (name, types) in &self.entities {
            let tys: Vec<_> = types.iter().map(|&t| type_ids[t]).collect();
            b.entity(name, &tys);
        }
        for (src, rel, dst) in &self.edges {
            let s = self
                .entities
                .iter()
                .position(|(n, _)| n == src)
                .expect("model edge endpoints are live");
            let d = self
                .entities
                .iter()
                .position(|(n, _)| n == dst)
                .expect("model edge endpoints are live");
            b.edge(
                entity_graph::EntityId::from_usize(s),
                rel_ids[*rel],
                entity_graph::EntityId::from_usize(d),
            )
            .expect("model edges are well-typed");
        }
        b.build()
    }
}

/// Generates a random multigraph (same shape family as `csr_props`).
fn random_graph(seed: u64, types: usize, rel_types: usize, edges: usize) -> EntityGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = EntityGraphBuilder::new();
    let type_ids: Vec<_> = (0..types)
        .map(|i| builder.entity_type(&format!("T{i}")))
        .collect();
    let entities: Vec<Vec<_>> = type_ids
        .iter()
        .enumerate()
        .map(|(i, &ty)| {
            (0..rng.gen_range(1..6))
                .map(|j| {
                    let mut tys = vec![ty];
                    if rng.gen_bool(0.2) {
                        tys.push(type_ids[rng.gen_range(0..types)]);
                    }
                    builder.entity(&format!("e{i}-{j}"), &tys)
                })
                .collect()
        })
        .collect();
    let rels: Vec<_> = (0..rel_types)
        .map(|i| {
            let src = rng.gen_range(0..types);
            let dst = rng.gen_range(0..types);
            let name = format!("r{}", i % 3);
            (
                builder.relationship_type(&name, type_ids[src], type_ids[dst]),
                src,
                dst,
            )
        })
        .collect();
    for _ in 0..edges {
        let &(rel, src, dst) = &rels[rng.gen_range(0..rels.len())];
        let s = entities[src][rng.gen_range(0..entities[src].len())];
        let d = entities[dst][rng.gen_range(0..entities[dst].len())];
        builder.edge(s, rel, d).expect("endpoints carry the types");
    }
    builder.build()
}

/// Generates one random, always-valid delta against the model, applying each
/// op to the model as it is chosen (sequential batch semantics).
fn random_delta(
    rng: &mut ChaCha8Rng,
    model: &mut Model,
    ops: usize,
    fresh: &mut u32,
) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for _ in 0..ops {
        match rng.gen_range(0..10u32) {
            // Add a fresh entity under 1–2 (possibly new) types.
            0..=2 => {
                let name = format!("added-{}", *fresh);
                *fresh += 1;
                let mut type_names = vec![if rng.gen_bool(0.2) {
                    let t = format!("NT{}", *fresh);
                    *fresh += 1;
                    t
                } else {
                    model.types[rng.gen_range(0..model.types.len())].clone()
                }];
                if rng.gen_bool(0.3) {
                    type_names.push(model.types[rng.gen_range(0..model.types.len())].clone());
                }
                let refs: Vec<&str> = type_names.iter().map(String::as_str).collect();
                delta.add_entity(&name, &refs);
                let tys: Vec<usize> = {
                    let mut t: Vec<usize> = type_names.iter().map(|n| model.type_idx(n)).collect();
                    t.sort_unstable();
                    t.dedup();
                    t
                };
                model.entities.push((name, tys));
            }
            // Add an edge of an existing (or occasionally fresh) rel type.
            3..=6 => {
                if model.rels.is_empty() {
                    continue;
                }
                let rel = if rng.gen_bool(0.15) {
                    // Fresh rel type between random existing types, reusing a
                    // small surface-name pool so names collide on purpose.
                    let name = format!("r{}", rng.gen_range(0..4u32));
                    let s = rng.gen_range(0..model.types.len());
                    let d = rng.gen_range(0..model.types.len());
                    model.rel_idx(&name, s, d)
                } else {
                    rng.gen_range(0..model.rels.len())
                };
                let (rel_name, src_ty, dst_ty) = model.rels[rel].clone();
                let src_pool: Vec<String> = model
                    .entities
                    .iter()
                    .filter(|(_, t)| t.binary_search(&src_ty).is_ok())
                    .map(|(n, _)| n.clone())
                    .collect();
                let dst_pool: Vec<String> = model
                    .entities
                    .iter()
                    .filter(|(_, t)| t.binary_search(&dst_ty).is_ok())
                    .map(|(n, _)| n.clone())
                    .collect();
                if src_pool.is_empty() || dst_pool.is_empty() {
                    continue;
                }
                let src = src_pool[rng.gen_range(0..src_pool.len())].clone();
                let dst = dst_pool[rng.gen_range(0..dst_pool.len())].clone();
                delta.add_edge(
                    &src,
                    &rel_name,
                    &dst,
                    &model.types[src_ty],
                    &model.types[dst_ty],
                );
                model.edges.push((src, rel, dst));
            }
            // Remove all parallel instances of a random live edge.
            7..=8 => {
                if model.edges.is_empty() {
                    continue;
                }
                let (src, rel, dst) = model.edges[rng.gen_range(0..model.edges.len())].clone();
                let (rel_name, src_ty, dst_ty) = model.rels[rel].clone();
                delta.remove_edge(
                    &src,
                    &rel_name,
                    &dst,
                    &model.types[src_ty],
                    &model.types[dst_ty],
                );
                model
                    .edges
                    .retain(|(s, r, d)| !(*s == src && *r == rel && *d == dst));
            }
            // Remove an edgeless entity, if any exists.
            _ => {
                let lonely: Vec<String> = model
                    .entities
                    .iter()
                    .map(|(n, _)| n.clone())
                    .filter(|n| model.degree(n) == 0)
                    .collect();
                if lonely.is_empty() {
                    continue;
                }
                let name = lonely[rng.gen_range(0..lonely.len())].clone();
                delta.remove_entity(&name);
                model.entities.retain(|(n, _)| n != &name);
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A stream of random deltas, each spliced onto the previous version,
    /// stays byte-identical to (a) the builder-rebuilt naive model and
    /// (b) `delta::rebuild` of its own content, at every step.
    #[test]
    fn spliced_graph_is_byte_identical_to_rebuild(
        seed in 0u64..100_000,
        types in 2usize..5,
        rel_types in 1usize..6,
        edges in 0usize..40,
        steps in 1usize..4,
        ops in 1usize..14,
    ) {
        let mut graph = random_graph(seed, types, rel_types, edges);
        let mut model = Model::of(&graph);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xde17_af00);
        let mut fresh = 0u32;
        for _ in 0..steps {
            let before_entities = model.entities.len();
            let before_edges = model.edges.len();
            let delta = random_delta(&mut rng, &mut model, ops, &mut fresh);
            let applied = graph.apply_delta(&delta).expect("generated deltas are valid");

            // (a) Content + indexes match the naive model rebuilt from scratch.
            let reference = model.build();
            prop_assert!(
                applied.graph == reference,
                "spliced graph diverged from the model rebuild"
            );
            // (b) Replaying the spliced graph through the builder is a fixed
            // point: the spliced indexes are exactly the builder's output.
            prop_assert!(
                applied.graph == delta::rebuild(&applied.graph),
                "spliced graph is not a builder fixed point"
            );

            // Net entity/edge counts in the summary match the model diff.
            let net_entities =
                applied.summary.entities_added as i64 - applied.summary.entities_removed as i64;
            let net_edges =
                applied.summary.edges_added as i64 - applied.summary.edges_removed as i64;
            prop_assert_eq!(
                model.entities.len() as i64 - before_entities as i64,
                net_entities
            );
            prop_assert_eq!(model.edges.len() as i64 - before_edges as i64, net_edges);

            // The spliced graph keeps serving: schema derivation agrees with
            // per-type counts.
            let schema = applied.graph.schema_graph();
            for (ty, _) in applied.graph.types() {
                prop_assert_eq!(
                    schema.entity_count_of(ty) as usize,
                    applied.graph.entities_of_type(ty).len()
                );
            }
            graph = applied.graph;
        }
    }

    /// Every touched relationship type reported by the summary exists in the
    /// new graph, is sorted ascending, and covers exactly the rel types whose
    /// edge set the batch targeted.
    #[test]
    fn summary_touched_rels_are_sound(
        seed in 0u64..100_000,
        types in 2usize..4,
        rel_types in 1usize..5,
        edges in 1usize..30,
        ops in 1usize..10,
    ) {
        let graph = random_graph(seed, types, rel_types, edges);
        let mut model = Model::of(&graph);
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(31) ^ 7);
        let mut fresh = 0u32;
        let delta = random_delta(&mut rng, &mut model, ops, &mut fresh);
        let applied = graph.apply_delta(&delta).expect("generated deltas are valid");
        let touched = &applied.summary.touched_rels;
        prop_assert!(touched.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        for &rel in touched {
            prop_assert!(rel.index() < applied.graph.relationship_type_count());
        }
        // Any rel whose live edge multiset changed must be in the touched set
        // (the converse need not hold: the summary is conservative).
        let count_by_rel = |g: &EntityGraph| -> Vec<usize> {
            (0..g.relationship_type_count())
                .map(|r| g.edges_of_rel_type(entity_graph::RelTypeId::from_usize(r)).len())
                .collect()
        };
        let old_counts = count_by_rel(&graph);
        let new_counts = count_by_rel(&applied.graph);
        for (r, &new_count) in new_counts.iter().enumerate() {
            let old_count = old_counts.get(r).copied().unwrap_or(0);
            if old_count != new_count {
                prop_assert!(
                    applied.summary.rel_touched(entity_graph::RelTypeId::from_usize(r)),
                    "rel {r} changed ({old_count} -> {new_count}) but is not touched"
                );
            }
        }
    }
}
