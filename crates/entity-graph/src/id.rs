//! Integer-interned identifiers for entities, entity types, relationship types
//! and edges.
//!
//! All hot paths in the workspace operate on these `u32`-backed newtypes;
//! strings only appear at ingestion and presentation boundaries.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Creates an identifier from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in a `u32`. Graphs in this
            /// workspace are bounded well below `u32::MAX` vertices/edges.
            #[inline]
            pub fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect("identifier index exceeds u32::MAX"))
            }

            /// Returns the raw `u32` index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize` suitable for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of an entity (a vertex of the entity graph).
    EntityId,
    "e"
);
define_id!(
    /// Identifier of an entity type (a vertex of the schema graph).
    TypeId,
    "t"
);
define_id!(
    /// Identifier of a relationship type (an edge of the schema graph).
    ///
    /// Two relationship types may share a *surface name* (e.g. two
    /// `Award Winners` edges from different entity types) while having
    /// distinct identifiers, exactly as in Sec. 2 of the paper.
    RelTypeId,
    "r"
);
define_id!(
    /// Identifier of an edge (a directed relationship instance).
    EdgeId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let id = EntityId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn from_usize_roundtrip() {
        let id = TypeId::from_usize(7);
        assert_eq!(id, TypeId::new(7));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(EntityId::new(3).to_string(), "e3");
        assert_eq!(TypeId::new(3).to_string(), "t3");
        assert_eq!(RelTypeId::new(3).to_string(), "r3");
        assert_eq!(EdgeId::new(3).to_string(), "g3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(EntityId::new(1) < EntityId::new(2));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_usize_overflow_panics() {
        let _ = EntityId::from_usize(u32::MAX as usize + 1);
    }
}
