//! Compact varint/delta encoding of sorted neighbor segments.
//!
//! The sharded storage layer ([`crate::shard`]) keeps per-entity neighbor
//! sets in the same segment shape as [`RelGroupedNeighbors`], but stores the
//! payload as bytes instead of `u32` ids: every segment is already sorted and
//! de-duplicated (attribute values are sets, Def. 1 of the paper), so the
//! first id is written as a LEB128 varint and every following id as the
//! varint of its **gap** to the predecessor (always ≥ 1). Freebase-class
//! neighbor ids cluster by construction order, so most gaps fit in one byte —
//! the film-domain graphs compress to roughly a third of the raw `u32`
//! payload (see `MemoryReport` and `BENCH_scale.json`).
//!
//! The encoding is **canonical**: a neighbor set has exactly one byte string.
//! Two segments are equal as sets iff their encoded bytes are equal, which is
//! what lets cross-shard entropy scoring group tuples by borrowed encoded
//! bytes and still produce bitwise-identical scores to the unsharded path
//! (see `preview-core`'s sharded scoring).
//!
//! [`RelGroupedNeighbors`]: crate::RelGroupedNeighbors

use crate::id::{EntityId, RelTypeId};

/// Appends `value` to `out` as an LEB128 varint (7 payload bits per byte,
/// high bit = continuation; at most 5 bytes for a `u32`).
pub fn encode_u32(mut value: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from `bytes` starting at `*pos`, advancing
/// `*pos` past it. Returns `None` on a truncated varint or one that does not
/// fit a `u32`.
pub fn decode_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut value: u32 = 0;
    let mut shift: u32 = 0;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        let payload = u32::from(byte & 0x7f);
        // The fifth byte may only contribute the top 4 bits of a u32.
        if shift == 28 && payload > 0x0f {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 28 {
            return None;
        }
    }
}

/// Encodes a sorted, strictly-ascending (de-duplicated) id slice: the first
/// id verbatim, every later id as the gap to its predecessor.
///
/// An empty slice encodes to zero bytes. The encoding is canonical — equal
/// sets produce equal bytes and vice versa.
///
/// # Panics
///
/// Debug-panics if `ids` is not strictly ascending.
pub fn encode_segment(ids: &[EntityId], out: &mut Vec<u8>) {
    let mut prev: Option<u32> = None;
    for &id in ids {
        let raw = id.raw();
        match prev {
            None => encode_u32(raw, out),
            Some(p) => {
                debug_assert!(raw > p, "segment ids must be strictly ascending");
                encode_u32(raw - p, out);
            }
        }
        prev = Some(raw);
    }
}

/// Decodes an [`encode_segment`] byte string, appending the ids to `out`.
///
/// Returns the number of ids decoded, or `None` if the bytes are not a valid
/// canonical segment (truncated varint, zero gap, or id overflow). Exactly
/// inverse to [`encode_segment`] on its image: `decode(encode(ids)) == ids`
/// for every strictly-ascending slice, which `tests/encoding_props.rs`
/// enforces on arbitrary inputs.
pub fn decode_segment(bytes: &[u8], out: &mut Vec<EntityId>) -> Option<usize> {
    let mut pos = 0usize;
    let mut prev: Option<u32> = None;
    let mut count = 0usize;
    while pos < bytes.len() {
        let value = decode_u32(bytes, &mut pos)?;
        let id = match prev {
            None => value,
            // Gaps are ≥ 1 in a strictly-ascending segment; a zero gap or an
            // overflowing sum cannot come from `encode_segment`.
            Some(p) => {
                if value == 0 {
                    return None;
                }
                p.checked_add(value)?
            }
        };
        out.push(EntityId::new(id));
        prev = Some(id);
        count += 1;
    }
    Some(count)
}

/// Per-entity neighbor segments with varint/delta-encoded payloads — the
/// byte-level sibling of [`RelGroupedNeighbors`](crate::RelGroupedNeighbors).
///
/// Layout: entity `v` (a shard-local index) owns the segment directory range
/// `seg_offsets[v] .. seg_offsets[v + 1]`; segment `j` covers relationship
/// type `seg_rels[j]` and the byte slice `payload[start_of(j) .. seg_ends[j]]`
/// where `start_of(j)` is the previous segment's end. Segments are sorted by
/// relationship type within an entity and only non-empty segments are stored,
/// mirroring the uncompressed index exactly. Byte offsets are `u64`: at
/// tens-of-millions-of-edges scale the encoded payload can legitimately pass
/// what a narrower offset would index (see `Error::GraphTooLarge` for the id
/// spaces themselves, which stay `u32`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedNeighbors {
    /// `entity_count + 1` boundaries into the segment directory.
    seg_offsets: Vec<u32>,
    /// Relationship type of each segment, sorted within an entity's range.
    seg_rels: Vec<RelTypeId>,
    /// Exclusive payload byte-end of each segment.
    seg_ends: Vec<u64>,
    /// All encoded segments, back to back.
    payload: Vec<u8>,
}

impl EncodedNeighbors {
    /// Number of entities indexed.
    #[inline]
    pub fn entity_count(&self) -> usize {
        self.seg_offsets.len() - 1
    }

    /// Total number of stored (entity, relationship type) segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.seg_rels.len()
    }

    /// Total encoded payload size in bytes.
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Approximate heap footprint of this index in bytes (payload plus the
    /// segment directory arrays).
    pub fn heap_bytes(&self) -> u64 {
        (self.payload.len()
            + self.seg_offsets.len() * std::mem::size_of::<u32>()
            + self.seg_rels.len() * std::mem::size_of::<RelTypeId>()
            + self.seg_ends.len() * std::mem::size_of::<u64>()) as u64
    }

    #[inline]
    fn seg_start(&self, j: usize) -> usize {
        if j == 0 {
            0
        } else {
            self.seg_ends[j - 1] as usize
        }
    }

    /// The encoded bytes of `entity`'s neighbor set through `rel`, or `None`
    /// if the entity has no such neighbors. A present segment is never empty,
    /// so `Some` always carries at least one byte.
    ///
    /// Because the encoding is canonical, two returned slices compare equal
    /// iff the underlying neighbor sets are equal — the property cross-shard
    /// entropy grouping relies on.
    ///
    /// # Panics
    ///
    /// Panics if `entity` is out of range.
    #[inline]
    pub fn encoded(&self, entity: usize, rel: RelTypeId) -> Option<&[u8]> {
        let lo = self.seg_offsets[entity] as usize;
        let hi = self.seg_offsets[entity + 1] as usize;
        match self.seg_rels[lo..hi].binary_search(&rel) {
            Ok(found) => {
                let j = lo + found;
                Some(&self.payload[self.seg_start(j)..self.seg_ends[j] as usize])
            }
            Err(_) => None,
        }
    }

    /// Iterates `entity`'s segments as `(rel, encoded bytes)` pairs, in
    /// ascending relationship-type order.
    ///
    /// # Panics
    ///
    /// Panics if `entity` is out of range.
    pub fn segments(&self, entity: usize) -> impl Iterator<Item = (RelTypeId, &[u8])> + '_ {
        let lo = self.seg_offsets[entity] as usize;
        let hi = self.seg_offsets[entity + 1] as usize;
        (lo..hi).map(move |j| {
            (
                self.seg_rels[j],
                &self.payload[self.seg_start(j)..self.seg_ends[j] as usize],
            )
        })
    }

    /// Decodes `entity`'s neighbors through `rel` into `out` (cleared first).
    /// Returns `true` if a segment was present.
    ///
    /// # Panics
    ///
    /// Panics if `entity` is out of range, or if the stored bytes are not a
    /// valid segment (impossible for builder-produced indexes).
    pub fn decode_neighbors(&self, entity: usize, rel: RelTypeId, out: &mut Vec<EntityId>) -> bool {
        out.clear();
        match self.encoded(entity, rel) {
            Some(bytes) => {
                decode_segment(bytes, out).expect("stored segments are canonical");
                true
            }
            None => false,
        }
    }
}

/// Incremental constructor for [`EncodedNeighbors`]: entities are appended
/// one at a time, each as a run of `(rel, ids)` segments in ascending
/// relationship-type order — or copied verbatim from a previous index when a
/// delta provably left the entity's neighbor sets untouched.
#[derive(Debug)]
pub struct EncodedNeighborsBuilder {
    seg_offsets: Vec<u32>,
    seg_rels: Vec<RelTypeId>,
    seg_ends: Vec<u64>,
    payload: Vec<u8>,
    /// Segments pushed since the last `finish_entity` call.
    open_segments: u32,
}

impl Default for EncodedNeighborsBuilder {
    fn default() -> Self {
        Self::new(0)
    }
}

impl EncodedNeighborsBuilder {
    /// Creates a builder sized for roughly `entity_hint` entities.
    pub fn new(entity_hint: usize) -> Self {
        let mut seg_offsets = Vec::with_capacity(entity_hint + 1);
        seg_offsets.push(0);
        Self {
            seg_offsets,
            seg_rels: Vec::new(),
            seg_ends: Vec::new(),
            payload: Vec::new(),
            open_segments: 0,
        }
    }

    /// Appends one segment of the current entity. Call with ascending `rel`
    /// within an entity; empty `ids` slices are skipped (only non-empty
    /// segments are stored).
    ///
    /// # Panics
    ///
    /// Debug-panics if `rel` is not greater than the current entity's
    /// previous segment rel, or if `ids` is not strictly ascending.
    pub fn push_segment(&mut self, rel: RelTypeId, ids: &[EntityId]) {
        if ids.is_empty() {
            return;
        }
        if self.open_segments > 0 {
            debug_assert!(
                *self.seg_rels.last().expect("open segment") < rel,
                "segments must be pushed in ascending rel order"
            );
        }
        encode_segment(ids, &mut self.payload);
        self.seg_rels.push(rel);
        self.seg_ends.push(self.payload.len() as u64);
        self.open_segments += 1;
    }

    /// Closes the current entity (possibly with zero segments) and moves to
    /// the next one.
    pub fn finish_entity(&mut self) {
        self.seg_offsets.push(
            u32::try_from(self.seg_rels.len()).expect("segment count bounded by edge count (u32)"),
        );
        self.open_segments = 0;
    }

    /// Appends the next entity by block-copying `entity`'s segments (rels and
    /// encoded bytes) verbatim from a previous index — the delta fast path
    /// for entities whose neighbor sets provably did not change.
    ///
    /// Byte-identical to re-encoding the same sets from scratch, because the
    /// encoding is canonical and neighbor ids are global (a delta that
    /// removes no entities keeps every surviving id).
    pub fn copy_entity_verbatim(&mut self, from: &EncodedNeighbors, entity: usize) {
        debug_assert_eq!(self.open_segments, 0, "finish the open entity first");
        let lo = from.seg_offsets[entity] as usize;
        let hi = from.seg_offsets[entity + 1] as usize;
        if lo < hi {
            let byte_start = from.seg_start(lo);
            let byte_end = from.seg_ends[hi - 1] as usize;
            let base = self.payload.len() as u64;
            self.seg_rels.extend_from_slice(&from.seg_rels[lo..hi]);
            self.seg_ends.extend(
                from.seg_ends[lo..hi]
                    .iter()
                    .map(|&end| end - byte_start as u64 + base),
            );
            self.payload
                .extend_from_slice(&from.payload[byte_start..byte_end]);
        }
        self.finish_entity();
    }

    /// Freezes the builder into the finished index.
    ///
    /// # Panics
    ///
    /// Debug-panics if an entity is still open (segments pushed without a
    /// closing [`finish_entity`](Self::finish_entity)).
    pub fn build(self) -> EncodedNeighbors {
        debug_assert_eq!(self.open_segments, 0, "finish the open entity first");
        EncodedNeighbors {
            seg_offsets: self.seg_offsets,
            seg_rels: self.seg_rels,
            seg_ends: self.seg_ends,
            payload: self.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<EntityId> {
        raw.iter().copied().map(EntityId::new).collect()
    }

    fn roundtrip(raw: &[u32]) {
        let input = ids(raw);
        let mut bytes = Vec::new();
        encode_segment(&input, &mut bytes);
        let mut output = Vec::new();
        assert_eq!(decode_segment(&bytes, &mut output), Some(input.len()));
        assert_eq!(output, input);
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for value in [0u32, 1, 127, 128, 129, 16383, 16384, 1 << 21, u32::MAX] {
            let mut bytes = Vec::new();
            encode_u32(value, &mut bytes);
            let mut pos = 0;
            assert_eq!(decode_u32(&bytes, &mut pos), Some(value));
            assert_eq!(pos, bytes.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(decode_u32(&[0x80], &mut pos), None);
        // Six continuation bytes: too long for a u32.
        let mut pos = 0;
        assert_eq!(decode_u32(&[0x80; 6], &mut pos), None);
        // Fifth byte carrying more than the top 4 bits.
        let mut pos = 0;
        assert_eq!(decode_u32(&[0xff, 0xff, 0xff, 0xff, 0x1f], &mut pos), None);
    }

    #[test]
    fn segments_roundtrip() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[u32::MAX]);
        roundtrip(&[0, 1, 2, 3]);
        roundtrip(&[5, 100, 101, 1_000_000, u32::MAX - 1, u32::MAX]);
    }

    #[test]
    fn dense_segments_compress() {
        let input = ids(&(1000..2000).collect::<Vec<u32>>());
        let mut bytes = Vec::new();
        encode_segment(&input, &mut bytes);
        // First id takes 2 bytes, every gap of 1 takes a single byte.
        assert_eq!(bytes.len(), 2 + 999);
        assert!(bytes.len() * 3 < input.len() * 4);
    }

    #[test]
    fn encoding_is_canonical() {
        let a = ids(&[3, 7, 9]);
        let b = ids(&[3, 7, 9]);
        let c = ids(&[3, 7, 10]);
        let encode = |v: &[EntityId]| {
            let mut bytes = Vec::new();
            encode_segment(v, &mut bytes);
            bytes
        };
        assert_eq!(encode(&a), encode(&b));
        assert_ne!(encode(&a), encode(&c));
    }

    #[test]
    fn decode_rejects_zero_gaps() {
        // "5, gap 0" cannot come from a strictly ascending segment.
        let mut out = Vec::new();
        assert_eq!(decode_segment(&[5, 0], &mut out), None);
    }

    #[test]
    fn builder_matches_segment_layout() {
        let r = RelTypeId::new;
        let mut b = EncodedNeighborsBuilder::new(3);
        b.push_segment(r(0), &ids(&[7]));
        b.push_segment(r(2), &ids(&[3, 5]));
        b.finish_entity();
        b.finish_entity(); // entity 1: no segments
        b.push_segment(r(1), &ids(&[1]));
        b.push_segment(r(3), &[]); // skipped: empty
        b.finish_entity();
        let enc = b.build();
        assert_eq!(enc.entity_count(), 3);
        assert_eq!(enc.segment_count(), 3);
        let mut out = Vec::new();
        assert!(enc.decode_neighbors(0, r(0), &mut out));
        assert_eq!(out, ids(&[7]));
        assert!(enc.decode_neighbors(0, r(2), &mut out));
        assert_eq!(out, ids(&[3, 5]));
        assert!(!enc.decode_neighbors(1, r(0), &mut out));
        assert!(enc.decode_neighbors(2, r(1), &mut out));
        assert_eq!(out, ids(&[1]));
        assert!(enc.encoded(2, r(3)).is_none());
        assert_eq!(enc.segments(0).count(), 2);
        assert!(enc.heap_bytes() > 0);
    }

    #[test]
    fn builder_verbatim_copy_is_byte_identical() {
        let r = RelTypeId::new;
        let build = |via_copy: bool| {
            let mut b = EncodedNeighborsBuilder::new(2);
            b.push_segment(r(1), &ids(&[10, 20, 30]));
            b.finish_entity();
            b.push_segment(r(0), &ids(&[4]));
            b.push_segment(r(5), &ids(&[100, 4000]));
            b.finish_entity();
            let first = b.build();
            if !via_copy {
                return first;
            }
            let mut c = EncodedNeighborsBuilder::new(2);
            c.copy_entity_verbatim(&first, 0);
            c.copy_entity_verbatim(&first, 1);
            c.build()
        };
        assert_eq!(build(true), build(false));
    }
}
