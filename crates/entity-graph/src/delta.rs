//! Batched graph updates: [`GraphDelta`] and the CSR splice apply path.
//!
//! Entity graphs like Freebase and DBpedia are continuously edited, but
//! [`EntityGraph`] is immutable by design — every index is a frozen CSR
//! array, which is what makes lock-free concurrent serving possible. This
//! module reconciles the two: a [`GraphDelta`] describes a batch of edits
//! (add / remove entities, add / remove relationship edges), and
//! [`EntityGraph::apply_delta`] produces the **next frozen version** by
//! splicing the delta into the previous version's offset/payload arrays
//! instead of re-running the full build:
//!
//! * identifier remaps are computed in one pass (entity and edge ids compact
//!   after removals; type and relationship-type ids are stable — they are
//!   only ever appended),
//! * every CSR group is copied with its payload filtered and remapped, and
//!   additions appended at the group end — no counting sort, no re-hashing
//!   of untouched names,
//! * per-entity neighbor segments of entities the delta did not touch are
//!   copied verbatim (the id remap is strictly monotone, so sortedness and
//!   de-duplication are preserved); only touched entities are re-segmented.
//!
//! # The splice contract
//!
//! The result is **byte-identical** to rebuilding from scratch: for any
//! graph `g` and valid delta `d`, `g.apply_delta(&d)?.graph == rebuild(&…)`
//! where [`rebuild`] replays the updated content (surviving entities and
//! edges in order, additions appended) through [`EntityGraphBuilder`]. A
//! property-test suite (`tests/delta_props.rs`) enforces this equality —
//! which covers every CSR offset, payload, segment directory and interner —
//! on random graphs under random update streams.
//!
//! # Batch semantics
//!
//! Ops apply in order against a staged view of the graph:
//!
//! * additions are strict — adding an entity whose name is live fails with
//!   [`Error::DuplicateEntity`] (no silent type-merging),
//! * removing an entity still referenced by live edges fails with
//!   [`Error::EntityInUse`]; remove the edges first (same batch is fine),
//! * removing an edge removes **all** live parallel `src -rel-> dst`
//!   instances; if none exist the batch fails with [`Error::NoSuchEdge`],
//! * entity types and relationship types are created on first mention and
//!   are never removed, even if the op that introduced them is later undone
//!   in the same batch (mirroring builder interning semantics),
//! * a failed batch leaves the input graph untouched — `apply_delta` takes
//!   `&self` and only produces a new graph on success.
//!
//! # Example
//!
//! ```
//! use entity_graph::{EntityGraphBuilder, GraphDelta};
//!
//! let mut b = EntityGraphBuilder::new();
//! let film = b.entity_type("FILM");
//! let actor = b.entity_type("FILM ACTOR");
//! let acted = b.relationship_type("Actor", actor, film);
//! let mib = b.entity("Men in Black", &[film]);
//! let smith = b.entity("Will Smith", &[actor]);
//! b.edge(smith, acted, mib).unwrap();
//! let graph = b.build();
//!
//! let mut delta = GraphDelta::new();
//! delta
//!     .add_entity("Hancock", &["FILM"])
//!     .add_edge("Will Smith", "Actor", "Hancock", "FILM ACTOR", "FILM");
//! let applied = graph.apply_delta(&delta).unwrap();
//! assert_eq!(applied.graph.entity_count(), 3);
//! assert_eq!(applied.graph.edge_count(), 2);
//! assert_eq!(applied.summary.entities_added, 1);
//! ```

use std::collections::{BTreeSet, HashMap};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::builder::EntityGraphBuilder;
use crate::csr::{Csr, NeighborSplicer};
use crate::entity::{Edge, Entity, RelType};
use crate::error::{Error, Result};
use crate::graph::EntityGraph;
use crate::id::{EdgeId, EntityId, RelTypeId, TypeId};

/// Sentinel in id-remap tables: the old id did not survive the delta.
const GONE: u32 = u32::MAX;

/// One edit operation of a [`GraphDelta`].
///
/// Operations are name-based (like the [triple format](crate::triples)) so a
/// delta can be produced without knowledge of the target graph's interned
/// identifiers, and the same delta text applies to any version that accepts
/// it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Add a fresh entity carrying the given entity types (types are created
    /// on first mention).
    AddEntity {
        /// Display name; must not collide with a live entity.
        name: String,
        /// Entity type names; de-duplicated on apply.
        types: Vec<String>,
    },
    /// Remove an entity. Fails if live edges still reference it.
    RemoveEntity {
        /// Display name of the entity to remove.
        name: String,
    },
    /// Add a relationship edge `src -rel-> dst`. The endpoint type names
    /// disambiguate relationship types sharing a surface name (the paper's
    /// `Award Winners` case); a new relationship type is created on first
    /// mention.
    AddEdge {
        /// Source entity name.
        src: String,
        /// Relationship-type surface name.
        rel: String,
        /// Destination entity name.
        dst: String,
        /// Entity type the source must carry.
        src_type: String,
        /// Entity type the destination must carry.
        dst_type: String,
    },
    /// Remove **all** live parallel `src -rel-> dst` edge instances.
    RemoveEdge {
        /// Source entity name.
        src: String,
        /// Relationship-type surface name.
        rel: String,
        /// Destination entity name.
        dst: String,
        /// Entity type of the relationship's source side.
        src_type: String,
        /// Entity type of the relationship's destination side.
        dst_type: String,
    },
}

/// An ordered batch of graph edits, applied atomically by
/// [`EntityGraph::apply_delta`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphDelta {
    ops: Vec<DeltaOp>,
}

impl GraphDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an add-entity op.
    pub fn add_entity(&mut self, name: impl Into<String>, types: &[&str]) -> &mut Self {
        self.ops.push(DeltaOp::AddEntity {
            name: name.into(),
            types: types.iter().map(|t| (*t).to_owned()).collect(),
        });
        self
    }

    /// Appends a remove-entity op.
    pub fn remove_entity(&mut self, name: impl Into<String>) -> &mut Self {
        self.ops.push(DeltaOp::RemoveEntity { name: name.into() });
        self
    }

    /// Appends an add-edge op.
    pub fn add_edge(
        &mut self,
        src: impl Into<String>,
        rel: impl Into<String>,
        dst: impl Into<String>,
        src_type: impl Into<String>,
        dst_type: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::AddEdge {
            src: src.into(),
            rel: rel.into(),
            dst: dst.into(),
            src_type: src_type.into(),
            dst_type: dst_type.into(),
        });
        self
    }

    /// Appends a remove-edge op.
    pub fn remove_edge(
        &mut self,
        src: impl Into<String>,
        rel: impl Into<String>,
        dst: impl Into<String>,
        src_type: impl Into<String>,
        dst_type: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(DeltaOp::RemoveEdge {
            src: src.into(),
            rel: rel.into(),
            dst: dst.into(),
            src_type: src_type.into(),
            dst_type: dst_type.into(),
        });
        self
    }

    /// Appends an already-built op.
    pub fn push(&mut self, op: DeltaOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch contains no ops. Publishing an empty delta must not
    /// bump a graph version (see the serving layer).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What a delta changed, as computed during [`EntityGraph::apply_delta`].
///
/// The touched sets are the contract consumed by incremental score
/// maintenance (`ScoredSchema::rescore_delta` in `preview-core`): a scoring
/// slot whose relationship type is **not** in [`touched_rels`] is guaranteed
/// to have a bit-identical value distribution in the new version, so its
/// score can be reused without recomputation. The sets are a conservative
/// over-approximation: an edit undone later in the same batch still marks
/// its slot as touched (recomputing an unchanged slot is always sound).
///
/// [`touched_rels`]: DeltaSummary::touched_rels
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Entities added (and still live at the end of the batch).
    pub entities_added: usize,
    /// Pre-existing entities removed.
    pub entities_removed: usize,
    /// Edges added (and still live at the end of the batch).
    pub edges_added: usize,
    /// Pre-existing edges removed.
    pub edges_removed: usize,
    /// Entity types created by the batch.
    pub types_added: usize,
    /// Relationship types created by the batch.
    pub rel_types_added: usize,
    /// Relationship types with any edge added or removed, ascending.
    /// Identifiers are valid in the **new** graph (rel-type ids are stable
    /// across deltas).
    pub touched_rels: Vec<RelTypeId>,
    /// Entity types whose entity membership changed (an entity bearing the
    /// type was added or removed), ascending. Identifiers are valid in the
    /// new graph (type ids are stable across deltas).
    pub touched_types: Vec<TypeId>,
}

impl DeltaSummary {
    /// Whether the relationship type is in [`touched_rels`](Self::touched_rels).
    pub fn rel_touched(&self, rel: RelTypeId) -> bool {
        self.touched_rels.binary_search(&rel).is_ok()
    }
}

/// The outcome of [`EntityGraph::apply_delta`]: the next frozen graph
/// version plus the [`DeltaSummary`] incremental rescoring consumes.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The new immutable graph.
    pub graph: EntityGraph,
    /// What changed relative to the input graph.
    pub summary: DeltaSummary,
}

/// Replays a graph's entire content through a fresh [`EntityGraphBuilder`]:
/// entity types, relationship types, entities and edges in id order.
///
/// This is the canonical "build from the updated triple set" reference the
/// splice path is measured against: for any builder-produced graph `g`,
/// `rebuild(&g) == g` holds field for field, and the delta property tests
/// assert `apply_delta(d).graph == rebuild(&apply_delta(d).graph)`. The
/// update benchmark (`update-bench`) uses it as the full-rebuild baseline
/// cost.
pub fn rebuild(graph: &EntityGraph) -> EntityGraph {
    let mut b = EntityGraphBuilder::with_capacity(graph.entity_count(), graph.edge_count());
    for (_, name) in graph.types() {
        b.entity_type(name);
    }
    for (_, rel) in graph.rel_types() {
        b.relationship_type(&rel.name, rel.src_type, rel.dst_type);
    }
    for (_, entity) in graph.entities() {
        b.entity(&entity.name, &entity.types);
    }
    for (_, edge) in graph.edges() {
        b.edge(edge.src, edge.rel, edge.dst)
            .expect("existing edges replay cleanly through the builder");
    }
    b.build()
}

/// A staged entity or edge endpoint: either a pre-existing entity (by old
/// id) or one added earlier in the batch (by addition index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StagedRef {
    Old(u32),
    New(u32),
}

struct StagedEntity {
    name: String,
    types: Vec<TypeId>,
    live: bool,
}

struct StagedEdge {
    src: StagedRef,
    dst: StagedRef,
    rel: RelTypeId,
    live: bool,
}

/// Mutable view of a batch in flight: tombstones over the old graph plus
/// appended additions. Nothing here touches the input graph.
struct Stage<'g> {
    graph: &'g EntityGraph,
    removed_entities: Vec<bool>,
    removed_edges: Vec<bool>,
    old_edges_removed: usize,
    added_entities: Vec<StagedEntity>,
    added_edges: Vec<StagedEdge>,
    /// Name-resolution overrides relative to the input graph: `None` = the
    /// name was removed in this batch, `Some` = it was (re)bound.
    name_overrides: HashMap<String, Option<StagedRef>>,
    new_type_names: Vec<String>,
    new_type_lookup: HashMap<String, TypeId>,
    new_rel_types: Vec<RelType>,
    new_rel_lookup: HashMap<(String, TypeId, TypeId), RelTypeId>,
    touched_rels: BTreeSet<RelTypeId>,
    touched_types: BTreeSet<TypeId>,
}

impl<'g> Stage<'g> {
    fn new(graph: &'g EntityGraph) -> Self {
        Self {
            graph,
            removed_entities: vec![false; graph.entity_count()],
            removed_edges: vec![false; graph.edge_count()],
            old_edges_removed: 0,
            added_entities: Vec::new(),
            added_edges: Vec::new(),
            name_overrides: HashMap::new(),
            new_type_names: Vec::new(),
            new_type_lookup: HashMap::new(),
            new_rel_types: Vec::new(),
            new_rel_lookup: HashMap::new(),
            touched_rels: BTreeSet::new(),
            touched_types: BTreeSet::new(),
        }
    }

    fn resolve_entity(&self, name: &str) -> Option<StagedRef> {
        if let Some(&over) = self.name_overrides.get(name) {
            return over;
        }
        self.graph
            .entity_by_name
            .get(name)
            .map(|id| StagedRef::Old(id.raw()))
    }

    fn resolve_type(&self, name: &str) -> Option<TypeId> {
        self.graph
            .type_by_name
            .get(name)
            .copied()
            .or_else(|| self.new_type_lookup.get(name).copied())
    }

    fn intern_type(&mut self, name: &str) -> TypeId {
        if let Some(ty) = self.resolve_type(name) {
            return ty;
        }
        let ty = TypeId::from_usize(self.graph.type_names.len() + self.new_type_names.len());
        self.new_type_names.push(name.to_owned());
        self.new_type_lookup.insert(name.to_owned(), ty);
        ty
    }

    fn resolve_rel(&self, name: &str, src: TypeId, dst: TypeId) -> Option<RelTypeId> {
        self.graph.rel_type_by_key(name, src, dst).or_else(|| {
            self.new_rel_lookup
                .get(&(name.to_owned(), src, dst))
                .copied()
        })
    }

    fn intern_rel(&mut self, name: &str, src: TypeId, dst: TypeId) -> RelTypeId {
        if let Some(rel) = self.resolve_rel(name, src, dst) {
            return rel;
        }
        let rel = RelTypeId::from_usize(self.graph.rel_types.len() + self.new_rel_types.len());
        self.new_rel_types.push(RelType {
            name: name.to_owned(),
            src_type: src,
            dst_type: dst,
        });
        self.new_rel_lookup.insert((name.to_owned(), src, dst), rel);
        rel
    }

    fn types_of(&self, r: StagedRef) -> &[TypeId] {
        match r {
            StagedRef::Old(v) => &self.graph.entities[v as usize].types,
            StagedRef::New(i) => &self.added_entities[i as usize].types,
        }
    }

    /// Number of live edges referencing the entity (each edge counted once,
    /// self-loops included).
    fn live_degree(&self, r: StagedRef) -> usize {
        let mut degree = 0;
        if let StagedRef::Old(v) = r {
            let vid = EntityId::new(v);
            for &eid in self.graph.out_edges.slice(v as usize) {
                if !self.removed_edges[eid.index()] {
                    degree += 1;
                }
            }
            for &eid in self.graph.in_edges.slice(v as usize) {
                // Self-loops already counted on the outgoing side.
                if !self.removed_edges[eid.index()] && self.graph.edges[eid.index()].src != vid {
                    degree += 1;
                }
            }
        }
        degree
            + self
                .added_edges
                .iter()
                .filter(|e| e.live && (e.src == r || e.dst == r))
                .count()
    }

    fn add_entity(&mut self, name: &str, types: &[String]) -> Result<()> {
        if self.resolve_entity(name).is_some() {
            return Err(Error::DuplicateEntity {
                name: name.to_owned(),
            });
        }
        let mut tys: Vec<TypeId> = types.iter().map(|t| self.intern_type(t)).collect();
        tys.sort_unstable();
        tys.dedup();
        self.touched_types.extend(tys.iter().copied());
        let idx = u32::try_from(self.added_entities.len()).expect("additions fit in u32");
        self.added_entities.push(StagedEntity {
            name: name.to_owned(),
            types: tys,
            live: true,
        });
        self.name_overrides
            .insert(name.to_owned(), Some(StagedRef::New(idx)));
        Ok(())
    }

    fn remove_entity(&mut self, name: &str) -> Result<()> {
        let r = self
            .resolve_entity(name)
            .ok_or_else(|| Error::UnknownName {
                kind: "entity",
                name: name.to_owned(),
            })?;
        let edges = self.live_degree(r);
        if edges > 0 {
            return Err(Error::EntityInUse {
                name: name.to_owned(),
                edges,
            });
        }
        let types: Vec<TypeId> = self.types_of(r).to_vec();
        self.touched_types.extend(types);
        match r {
            StagedRef::Old(v) => self.removed_entities[v as usize] = true,
            StagedRef::New(i) => self.added_entities[i as usize].live = false,
        }
        self.name_overrides.insert(name.to_owned(), None);
        Ok(())
    }

    fn check_carries(&self, r: StagedRef, ty: TypeId, name: &str, rel: &str) -> Result<()> {
        if self.types_of(r).binary_search(&ty).is_ok() {
            return Ok(());
        }
        let type_name = if ty.index() < self.graph.type_names.len() {
            &self.graph.type_names[ty.index()]
        } else {
            &self.new_type_names[ty.index() - self.graph.type_names.len()]
        };
        Err(Error::TypeMismatch {
            detail: format!(
                "entity {name:?} lacks type {type_name:?} required by relationship {rel:?}"
            ),
        })
    }

    fn add_edge(
        &mut self,
        src: &str,
        rel: &str,
        dst: &str,
        src_type: &str,
        dst_type: &str,
    ) -> Result<()> {
        let src_ty = self
            .resolve_type(src_type)
            .ok_or_else(|| Error::UnknownName {
                kind: "entity type",
                name: src_type.to_owned(),
            })?;
        let dst_ty = self
            .resolve_type(dst_type)
            .ok_or_else(|| Error::UnknownName {
                kind: "entity type",
                name: dst_type.to_owned(),
            })?;
        let s = self.resolve_entity(src).ok_or_else(|| Error::UnknownName {
            kind: "entity",
            name: src.to_owned(),
        })?;
        let d = self.resolve_entity(dst).ok_or_else(|| Error::UnknownName {
            kind: "entity",
            name: dst.to_owned(),
        })?;
        self.check_carries(s, src_ty, src, rel)?;
        self.check_carries(d, dst_ty, dst, rel)?;
        let rel_id = self.intern_rel(rel, src_ty, dst_ty);
        self.touched_rels.insert(rel_id);
        self.added_edges.push(StagedEdge {
            src: s,
            dst: d,
            rel: rel_id,
            live: true,
        });
        Ok(())
    }

    fn remove_edge(
        &mut self,
        src: &str,
        rel: &str,
        dst: &str,
        src_type: &str,
        dst_type: &str,
    ) -> Result<()> {
        let missing = || Error::NoSuchEdge {
            detail: format!("{src:?} -{rel}-> {dst:?} ({src_type} -> {dst_type})"),
        };
        let src_ty = self.resolve_type(src_type).ok_or_else(missing)?;
        let dst_ty = self.resolve_type(dst_type).ok_or_else(missing)?;
        let s = self.resolve_entity(src).ok_or_else(missing)?;
        let d = self.resolve_entity(dst).ok_or_else(missing)?;
        let rel_id = self.resolve_rel(rel, src_ty, dst_ty).ok_or_else(missing)?;
        let mut matched = 0usize;
        if let (StagedRef::Old(sv), StagedRef::Old(dv)) = (s, d) {
            let dst_id = EntityId::new(dv);
            for &eid in self.graph.out_edges.slice(sv as usize) {
                let edge = self.graph.edges[eid.index()];
                if edge.rel == rel_id && edge.dst == dst_id && !self.removed_edges[eid.index()] {
                    self.removed_edges[eid.index()] = true;
                    self.old_edges_removed += 1;
                    matched += 1;
                }
            }
        }
        for staged in &mut self.added_edges {
            if staged.live && staged.rel == rel_id && staged.src == s && staged.dst == d {
                staged.live = false;
                matched += 1;
            }
        }
        if matched == 0 {
            return Err(missing());
        }
        self.touched_rels.insert(rel_id);
        Ok(())
    }
}

/// Applies a delta to a graph by splicing the CSR indexes; see the
/// [module docs](self) for the contract.
pub(crate) fn apply(graph: &EntityGraph, delta: &GraphDelta) -> Result<AppliedDelta> {
    // ---- Stage: validate ops in order against a tombstone view. ----------
    let mut stage = Stage::new(graph);
    for op in delta.ops() {
        match op {
            DeltaOp::AddEntity { name, types } => stage.add_entity(name, types)?,
            DeltaOp::RemoveEntity { name } => stage.remove_entity(name)?,
            DeltaOp::AddEdge {
                src,
                rel,
                dst,
                src_type,
                dst_type,
            } => stage.add_edge(src, rel, dst, src_type, dst_type)?,
            DeltaOp::RemoveEdge {
                src,
                rel,
                dst,
                src_type,
                dst_type,
            } => stage.remove_edge(src, rel, dst, src_type, dst_type)?,
        }
    }
    Ok(splice(graph, stage))
}

/// Freezes a validated stage into the next graph version. Infallible: all
/// errors were raised while staging.
#[allow(clippy::too_many_lines)]
fn splice(graph: &EntityGraph, stage: Stage<'_>) -> AppliedDelta {
    let old_entity_count = graph.entity_count();
    let old_edge_count = graph.edge_count();
    let old_type_count = graph.type_names.len();
    let old_rel_count = graph.rel_types.len();

    // ---- Identifier remaps (monotone: survivors keep relative order). ----
    let mut e_remap = vec![GONE; old_entity_count];
    let mut next_entity = 0u32;
    for (v, slot) in e_remap.iter_mut().enumerate() {
        if !stage.removed_entities[v] {
            *slot = next_entity;
            next_entity += 1;
        }
    }
    let surviving_entities = next_entity as usize;
    let mut added_entity_ids = vec![GONE; stage.added_entities.len()];
    for (i, staged) in stage.added_entities.iter().enumerate() {
        if staged.live {
            added_entity_ids[i] = next_entity;
            next_entity += 1;
        }
    }
    let new_entity_count = next_entity as usize;
    let resolve = |r: StagedRef| -> u32 {
        match r {
            StagedRef::Old(v) => e_remap[v as usize],
            StagedRef::New(i) => added_entity_ids[i as usize],
        }
    };

    // ---- Edge list: survivors in order, then live additions. -------------
    let entities_removed = stage.removed_entities.iter().filter(|&&r| r).count();
    let live_added_edges = stage.added_edges.iter().filter(|e| e.live).count();
    let mut edge_remap = vec![GONE; old_edge_count];
    let mut edges: Vec<Edge> =
        Vec::with_capacity(old_edge_count - stage.old_edges_removed + live_added_edges);
    for (i, edge) in graph.edges.iter().enumerate() {
        if stage.removed_edges[i] {
            continue;
        }
        edge_remap[i] = u32::try_from(edges.len()).expect("edge ids fit in u32");
        edges.push(Edge {
            src: EntityId::new(e_remap[edge.src.index()]),
            dst: EntityId::new(e_remap[edge.dst.index()]),
            rel: edge.rel,
        });
    }
    for staged in &stage.added_edges {
        if staged.live {
            edges.push(Edge {
                src: EntityId::new(resolve(staged.src)),
                dst: EntityId::new(resolve(staged.dst)),
                rel: staged.rel,
            });
        }
    }
    let new_edge_count = edges.len();

    // ---- Entities and the name index. ------------------------------------
    let mut entities: Vec<Entity> = Vec::with_capacity(new_entity_count);
    for (v, entity) in graph.entities.iter().enumerate() {
        if !stage.removed_entities[v] {
            entities.push(entity.clone());
        }
    }
    let mut entity_by_name = graph.entity_by_name.clone();
    for (v, entity) in graph.entities.iter().enumerate() {
        if stage.removed_entities[v] {
            entity_by_name.remove(&entity.name);
        }
    }
    for id in entity_by_name.values_mut() {
        *id = EntityId::new(e_remap[id.index()]);
    }
    for (i, staged) in stage.added_entities.iter().enumerate() {
        if staged.live {
            entities.push(Entity {
                name: staged.name.clone(),
                types: staged.types.clone(),
            });
            entity_by_name.insert(staged.name.clone(), EntityId::new(added_entity_ids[i]));
        }
    }

    // ---- Types and relationship types (append-only). ---------------------
    let mut type_names = graph.type_names.clone();
    let mut type_by_name = graph.type_by_name.clone();
    for (i, name) in stage.new_type_names.iter().enumerate() {
        type_by_name.insert(name.clone(), TypeId::from_usize(old_type_count + i));
        type_names.push(name.clone());
    }
    let new_type_count = type_names.len();
    let mut rel_types = graph.rel_types.clone();
    let mut rel_names = graph.rel_names.clone();
    let mut rel_by_key = graph.rel_by_key.clone();
    for (i, rel) in stage.new_rel_types.iter().enumerate() {
        let name_id = rel_names.intern(&rel.name);
        rel_by_key.insert(
            (name_id, rel.src_type, rel.dst_type),
            RelTypeId::from_usize(old_rel_count + i),
        );
        rel_types.push(rel.clone());
    }
    let new_rel_count = rel_types.len();

    // When the batch removed no entities (edges, respectively), the
    // corresponding id remap is the identity, and old CSR payloads can be
    // block-copied instead of filtered and remapped element by element.
    let entity_identity = entities_removed == 0;
    let edge_identity = entity_identity && stage.old_edges_removed == 0;

    // ---- entities_by_type: filter + remap old groups, append additions. --
    let mut added_by_type: Vec<Vec<EntityId>> = vec![Vec::new(); new_type_count];
    for (i, staged) in stage.added_entities.iter().enumerate() {
        if staged.live {
            for &ty in &staged.types {
                added_by_type[ty.index()].push(EntityId::new(added_entity_ids[i]));
            }
        }
    }
    let entities_by_type = {
        let mut offsets = Vec::with_capacity(new_type_count + 1);
        offsets.push(0u32);
        let mut data: Vec<EntityId> = Vec::with_capacity(graph.entities_by_type.total_len());
        for (t, additions) in added_by_type.iter().enumerate() {
            if t < old_type_count {
                if entity_identity {
                    data.extend_from_slice(graph.entities_by_type.slice(t));
                } else {
                    for &eid in graph.entities_by_type.slice(t) {
                        let mapped = e_remap[eid.index()];
                        if mapped != GONE {
                            data.push(EntityId::new(mapped));
                        }
                    }
                }
            }
            data.extend_from_slice(additions);
            offsets.push(u32::try_from(data.len()).expect("payload fits in u32"));
        }
        Csr::from_raw_parts(offsets, data)
    };

    // ---- edges_by_rel: same splice, grouped by relationship type. --------
    let mut added_by_rel: Vec<Vec<EdgeId>> = vec![Vec::new(); new_rel_count];
    {
        let mut next_edge = old_edge_count - stage.old_edges_removed;
        for staged in &stage.added_edges {
            if staged.live {
                added_by_rel[staged.rel.index()].push(EdgeId::from_usize(next_edge));
                next_edge += 1;
            }
        }
    }
    let edges_by_rel = {
        let mut offsets = Vec::with_capacity(new_rel_count + 1);
        offsets.push(0u32);
        let mut data: Vec<EdgeId> = Vec::with_capacity(new_edge_count);
        for (r, additions) in added_by_rel.iter().enumerate() {
            if r < old_rel_count {
                for &eid in graph.edges_by_rel.slice(r) {
                    let mapped = edge_remap[eid.index()];
                    if mapped != GONE {
                        data.push(EdgeId::new(mapped));
                    }
                }
            }
            data.extend_from_slice(additions);
            offsets.push(u32::try_from(data.len()).expect("payload fits in u32"));
        }
        Csr::from_raw_parts(offsets, data)
    };

    // ---- Per-entity edge lists. ------------------------------------------
    // Added edges keyed by their (new) endpoint id; a stable sort keeps the
    // within-entity order ascending by edge id, matching a full rebuild.
    let mut added_out: Vec<(u32, EdgeId)> = Vec::with_capacity(live_added_edges);
    let mut added_in: Vec<(u32, EdgeId)> = Vec::with_capacity(live_added_edges);
    for (i, edge) in edges
        .iter()
        .enumerate()
        .skip(old_edge_count - stage.old_edges_removed)
    {
        let eid = EdgeId::from_usize(i);
        added_out.push((edge.src.raw(), eid));
        added_in.push((edge.dst.raw(), eid));
    }
    added_out.sort_by_key(|&(src, _)| src);
    added_in.sort_by_key(|&(dst, _)| dst);

    let splice_edge_lists = |old: &Csr<EdgeId>, additions: &[(u32, EdgeId)]| -> Csr<EdgeId> {
        let mut offsets = Vec::with_capacity(new_entity_count + 1);
        offsets.push(0u32);
        let mut data: Vec<EdgeId> = Vec::with_capacity(new_edge_count);
        let mut cursor = 0usize;
        let mut push_group = |data: &mut Vec<EdgeId>, offsets: &mut Vec<u32>, new_id: u32| {
            while cursor < additions.len() && additions[cursor].0 == new_id {
                data.push(additions[cursor].1);
                cursor += 1;
            }
            offsets.push(u32::try_from(data.len()).expect("payload fits in u32"));
        };
        for (v, &new_id) in e_remap.iter().enumerate() {
            if new_id == GONE {
                continue;
            }
            if edge_identity {
                data.extend_from_slice(old.slice(v));
            } else {
                for &eid in old.slice(v) {
                    let mapped = edge_remap[eid.index()];
                    if mapped != GONE {
                        data.push(EdgeId::new(mapped));
                    }
                }
            }
            push_group(&mut data, &mut offsets, new_id);
        }
        for &id in &added_entity_ids {
            if id != GONE {
                push_group(&mut data, &mut offsets, id);
            }
        }
        Csr::from_raw_parts(offsets, data)
    };
    let out_edges = splice_edge_lists(&graph.out_edges, &added_out);
    let in_edges = splice_edge_lists(&graph.in_edges, &added_in);

    // ---- Neighbor segments: copy untouched entities, re-segment the rest.
    let mut touched_entities = vec![false; new_entity_count];
    for (i, &removed) in stage.removed_edges.iter().enumerate() {
        if removed {
            let edge = graph.edges[i];
            for endpoint in [edge.src, edge.dst] {
                let mapped = e_remap[endpoint.index()];
                if mapped != GONE {
                    touched_entities[mapped as usize] = true;
                }
            }
        }
    }
    for staged in &stage.added_edges {
        if staged.live {
            touched_entities[resolve(staged.src) as usize] = true;
            touched_entities[resolve(staged.dst) as usize] = true;
        }
    }
    let splice_neighbors = |old: &crate::csr::RelGroupedNeighbors,
                            edge_lists: &Csr<EdgeId>,
                            neighbor_of: &dyn Fn(&Edge) -> EntityId|
     -> crate::csr::RelGroupedNeighbors {
        let mut splicer = NeighborSplicer::new(new_entity_count, old.total_len());
        let mut scratch: Vec<(RelTypeId, EntityId)> = Vec::new();
        let mut resegment = |splicer: &mut NeighborSplicer, new_id: usize| {
            scratch.clear();
            scratch.extend(edge_lists.slice(new_id).iter().map(|&eid| {
                let edge = &edges[eid.index()];
                (edge.rel, neighbor_of(edge))
            }));
            splicer.push_pairs(&mut scratch);
        };
        let mut new_id = 0usize;
        for v in 0..old_entity_count {
            if stage.removed_entities[v] {
                continue;
            }
            if touched_entities[new_id] {
                resegment(&mut splicer, new_id);
            } else if entity_identity {
                splicer.copy_verbatim(old, v);
            } else {
                splicer.copy_remapped(old, v, &e_remap);
            }
            new_id += 1;
        }
        for id in surviving_entities..new_entity_count {
            resegment(&mut splicer, id);
        }
        splicer.finish()
    };
    let out_neighbors = splice_neighbors(&graph.out_neighbors, &out_edges, &|e| e.dst);
    let in_neighbors = splice_neighbors(&graph.in_neighbors, &in_edges, &|e| e.src);

    // ---- Summary. --------------------------------------------------------
    let summary = DeltaSummary {
        entities_added: new_entity_count - (old_entity_count - entities_removed),
        entities_removed,
        edges_added: live_added_edges,
        edges_removed: stage.old_edges_removed,
        types_added: stage.new_type_names.len(),
        rel_types_added: stage.new_rel_types.len(),
        touched_rels: stage.touched_rels.into_iter().collect(),
        touched_types: stage.touched_types.into_iter().collect(),
    };
    let graph = EntityGraph {
        entities,
        entity_by_name,
        type_names,
        type_by_name,
        rel_types,
        rel_names,
        rel_by_key,
        edges,
        entities_by_type,
        edges_by_rel,
        out_edges,
        in_edges,
        out_neighbors,
        in_neighbors,
        schema_cache: OnceLock::new(),
    };
    AppliedDelta { graph, summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn tiny() -> EntityGraph {
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let actor = b.entity_type("FILM ACTOR");
        let acted = b.relationship_type("Actor", actor, film);
        let mib = b.entity("Men in Black", &[film]);
        let hancock = b.entity("Hancock", &[film]);
        let smith = b.entity("Will Smith", &[actor]);
        b.edge(smith, acted, mib).unwrap();
        b.edge(smith, acted, hancock).unwrap();
        b.build()
    }

    #[test]
    fn rebuild_is_identity_on_built_graphs() {
        for graph in [tiny(), fixtures::figure1_graph()] {
            assert_eq!(rebuild(&graph), graph);
        }
    }

    #[test]
    fn empty_delta_applies_to_an_identical_graph() {
        let graph = tiny();
        let applied = graph.apply_delta(&GraphDelta::new()).unwrap();
        assert_eq!(applied.graph, graph);
        assert_eq!(applied.summary, DeltaSummary::default());
    }

    #[test]
    fn add_entity_and_edge_splices_like_a_rebuild() {
        let graph = tiny();
        let mut delta = GraphDelta::new();
        delta.add_entity("I, Robot", &["FILM"]).add_edge(
            "Will Smith",
            "Actor",
            "I, Robot",
            "FILM ACTOR",
            "FILM",
        );
        let applied = graph.apply_delta(&delta).unwrap();
        assert_eq!(applied.graph.entity_count(), 4);
        assert_eq!(applied.graph.edge_count(), 3);
        assert_eq!(applied.graph, rebuild(&applied.graph));
        assert_eq!(applied.summary.entities_added, 1);
        assert_eq!(applied.summary.edges_added, 1);
        let smith = applied.graph.entity_by_name("Will Smith").unwrap();
        let film = applied.graph.type_by_name("FILM").unwrap();
        let actor = applied.graph.type_by_name("FILM ACTOR").unwrap();
        let acted = applied.graph.rel_type_by_key("Actor", actor, film).unwrap();
        assert_eq!(
            applied
                .graph
                .neighbors_via(smith, acted, crate::graph::Direction::Outgoing)
                .len(),
            3
        );
        assert!(applied.summary.rel_touched(acted));
    }

    #[test]
    fn remove_edge_then_entity_compacts_ids() {
        let graph = tiny();
        let mut delta = GraphDelta::new();
        delta
            .remove_edge("Will Smith", "Actor", "Men in Black", "FILM ACTOR", "FILM")
            .remove_entity("Men in Black");
        let applied = graph.apply_delta(&delta).unwrap();
        assert_eq!(applied.graph.entity_count(), 2);
        assert_eq!(applied.graph.edge_count(), 1);
        assert!(applied.graph.entity_by_name("Men in Black").is_none());
        // Ids compacted: Hancock slid into slot 0.
        assert_eq!(applied.graph.entity_by_name("Hancock").unwrap().index(), 0);
        assert_eq!(applied.graph, rebuild(&applied.graph));
        assert_eq!(applied.summary.entities_removed, 1);
        assert_eq!(applied.summary.edges_removed, 1);
    }

    #[test]
    fn removing_a_referenced_entity_is_a_typed_error() {
        let graph = tiny();
        let mut delta = GraphDelta::new();
        delta.remove_entity("Men in Black");
        let err = graph.apply_delta(&delta).unwrap_err();
        assert_eq!(
            err,
            Error::EntityInUse {
                name: "Men in Black".into(),
                edges: 1
            }
        );
    }

    #[test]
    fn duplicate_add_is_a_typed_error() {
        let graph = tiny();
        let mut delta = GraphDelta::new();
        delta.add_entity("Hancock", &["FILM"]);
        let err = graph.apply_delta(&delta).unwrap_err();
        assert!(matches!(err, Error::DuplicateEntity { .. }));
    }

    #[test]
    fn removing_a_missing_edge_is_a_typed_error() {
        let graph = tiny();
        let mut delta = GraphDelta::new();
        delta.remove_edge("Will Smith", "Director", "Hancock", "FILM ACTOR", "FILM");
        let err = graph.apply_delta(&delta).unwrap_err();
        assert!(matches!(err, Error::NoSuchEdge { .. }));
    }

    #[test]
    fn add_then_remove_in_one_batch_nets_out() {
        let graph = tiny();
        let mut delta = GraphDelta::new();
        delta
            .add_entity("Bright", &["FILM"])
            .add_edge("Will Smith", "Actor", "Bright", "FILM ACTOR", "FILM")
            .remove_edge("Will Smith", "Actor", "Bright", "FILM ACTOR", "FILM")
            .remove_entity("Bright");
        let applied = graph.apply_delta(&delta).unwrap();
        // The batch nets out: same entities and edges as before...
        assert_eq!(applied.graph.entity_count(), graph.entity_count());
        assert_eq!(applied.graph.edge_count(), graph.edge_count());
        assert!(applied.graph.entity_by_name("Bright").is_none());
        assert_eq!(applied.graph, rebuild(&applied.graph));
        // ...and the summary is conservative: the touched slots remain
        // marked even though the net change is nil.
        assert_eq!(applied.summary.entities_added, 0);
        assert_eq!(applied.summary.entities_removed, 0);
        assert_eq!(applied.summary.edges_added, 0);
        assert_eq!(applied.summary.edges_removed, 0);
        assert_eq!(applied.summary.touched_rels.len(), 1);
    }

    #[test]
    fn removing_an_edge_removes_all_parallel_instances() {
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let actor = b.entity_type("FILM ACTOR");
        let acted = b.relationship_type("Actor", actor, film);
        let mib = b.entity("Men in Black", &[film]);
        let smith = b.entity("Will Smith", &[actor]);
        b.edge(smith, acted, mib).unwrap();
        b.edge(smith, acted, mib).unwrap();
        let graph = b.build();
        let mut delta = GraphDelta::new();
        delta.remove_edge("Will Smith", "Actor", "Men in Black", "FILM ACTOR", "FILM");
        let applied = graph.apply_delta(&delta).unwrap();
        assert_eq!(applied.graph.edge_count(), 0);
        assert_eq!(applied.summary.edges_removed, 2);
        assert_eq!(applied.graph, rebuild(&applied.graph));
    }

    #[test]
    fn new_types_and_rels_survive_even_if_their_edges_net_out() {
        let graph = tiny();
        let mut delta = GraphDelta::new();
        delta
            .add_entity("Barry Sonnenfeld", &["FILM DIRECTOR"])
            .add_edge(
                "Barry Sonnenfeld",
                "Director",
                "Men in Black",
                "FILM DIRECTOR",
                "FILM",
            )
            .remove_edge(
                "Barry Sonnenfeld",
                "Director",
                "Men in Black",
                "FILM DIRECTOR",
                "FILM",
            );
        let applied = graph.apply_delta(&delta).unwrap();
        // The director entity and the new type/rel-type records remain; the
        // relationship type has zero edges (exactly like declaring a rel
        // type in the builder and never using it).
        assert!(applied.graph.type_by_name("FILM DIRECTOR").is_some());
        assert_eq!(applied.graph.relationship_type_count(), 2);
        assert_eq!(applied.graph.edge_count(), 2);
        assert_eq!(applied.summary.types_added, 1);
        assert_eq!(applied.summary.rel_types_added, 1);
        assert_eq!(applied.graph, rebuild(&applied.graph));
    }

    #[test]
    fn figure1_delta_matches_rebuild() {
        let graph = fixtures::figure1_graph();
        let mut delta = GraphDelta::new();
        delta
            .remove_edge(
                "Men in Black",
                "Genres",
                "Action Film",
                "FILM",
                "FILM GENRE",
            )
            .add_entity("Emma Thomas", &["FILM PRODUCER"])
            .add_edge(
                "Emma Thomas",
                "Producer",
                "Hancock",
                "FILM PRODUCER",
                "FILM",
            );
        let applied = graph.apply_delta(&delta).unwrap();
        assert_eq!(applied.graph, rebuild(&applied.graph));
        // Schema derivation still works on the spliced graph.
        let schema = applied.graph.schema_graph();
        assert_eq!(schema.type_count(), applied.graph.type_count());
    }
}
