//! Incremental construction of [`EntityGraph`]s.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::csr::{Csr, RelGroupedNeighbors};
use crate::entity::{Edge, Entity, RelType};
use crate::error::{Error, Result};
use crate::graph::EntityGraph;
use crate::id::{EdgeId, EntityId, RelTypeId, TypeId};
use crate::interner::Interner;

/// The largest count any `u32`-indexed graph dimension can hold.
///
/// `u32::MAX` itself is excluded: [`crate::delta`] uses it as its removed-slot
/// sentinel, and `from_usize` on the id newtypes rejects it.
pub const MAX_GRAPH_DIMENSION: u64 = u32::MAX as u64 - 1;

/// Checks that a prospective graph fits every `u32`-indexed capacity limit:
/// entity ids, edge ids, CSR offsets and the type-membership counting sort.
///
/// Use this before driving a builder at tens-of-millions-of-edges scale (the
/// `datagen` spec validation and [`EntityGraphBuilder::try_build`] both
/// route through it); the unchecked [`EntityGraphBuilder::build`] would only
/// fail on these limits via an id-newtype panic or a silent `u32` offset
/// wrap.
///
/// `type_memberships` is the sum of per-entity type-set sizes — it bounds
/// the entities-by-type CSR payload, which can exceed `entities` when
/// entities carry several types.
///
/// # Errors
///
/// Returns [`Error::GraphTooLarge`] naming the first dimension that exceeds
/// [`MAX_GRAPH_DIMENSION`].
pub fn check_graph_capacity(entities: u64, edges: u64, type_memberships: u64) -> Result<()> {
    for (what, requested) in [
        ("entities", entities),
        ("edges", edges),
        ("type memberships", type_memberships),
    ] {
        if requested > MAX_GRAPH_DIMENSION {
            return Err(Error::GraphTooLarge {
                what,
                requested,
                max: MAX_GRAPH_DIMENSION,
            });
        }
    }
    Ok(())
}

/// Builder for [`EntityGraph`].
///
/// The builder interns entity types, relationship types and entities as they
/// are first mentioned, validates that edge endpoints carry the entity types
/// required by their relationship type, and finally freezes everything into an
/// immutable [`EntityGraph`] with all CSR adjacency indexes pre-computed.
#[derive(Debug, Default, Clone)]
pub struct EntityGraphBuilder {
    entities: Vec<Entity>,
    entity_by_name: HashMap<String, EntityId>,
    type_names: Vec<String>,
    type_by_name: HashMap<String, TypeId>,
    rel_types: Vec<RelType>,
    rel_names: Interner,
    rel_by_key: HashMap<(u32, TypeId, TypeId), RelTypeId>,
    edges: Vec<Edge>,
}

impl EntityGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder sized for roughly the given number of entities and
    /// edges.
    pub fn with_capacity(entities: usize, edges: usize) -> Self {
        Self {
            entities: Vec::with_capacity(entities),
            entity_by_name: HashMap::with_capacity(entities),
            edges: Vec::with_capacity(edges),
            ..Self::default()
        }
    }

    /// Interns an entity type, returning its id. Idempotent.
    pub fn entity_type(&mut self, name: &str) -> TypeId {
        if let Some(&id) = self.type_by_name.get(name) {
            return id;
        }
        let id = TypeId::from_usize(self.type_names.len());
        self.type_names.push(name.to_owned());
        self.type_by_name.insert(name.to_owned(), id);
        id
    }

    /// Interns a relationship type `γ(src, dst)` with the given surface name.
    /// Idempotent for identical `(name, src, dst)` triples; the same surface
    /// name with different endpoint types yields a distinct relationship type,
    /// mirroring the paper's `Award Winners` example.
    pub fn relationship_type(&mut self, name: &str, src: TypeId, dst: TypeId) -> RelTypeId {
        // Interning the surface name keeps the lookup key three plain
        // integers; repeat calls with a known name allocate nothing.
        let key = (self.rel_names.intern(name), src, dst);
        if let Some(&id) = self.rel_by_key.get(&key) {
            return id;
        }
        let id = RelTypeId::from_usize(self.rel_types.len());
        self.rel_types.push(RelType {
            name: name.to_owned(),
            src_type: src,
            dst_type: dst,
        });
        self.rel_by_key.insert(key, id);
        id
    }

    /// Adds an entity with the given name and types, or extends the type set
    /// of an existing entity with the same name. Returns the entity id.
    pub fn entity(&mut self, name: &str, types: &[TypeId]) -> EntityId {
        if let Some(&id) = self.entity_by_name.get(name) {
            let entity = &mut self.entities[id.index()];
            for &ty in types {
                if entity.types.binary_search(&ty).is_err() {
                    entity.types.push(ty);
                    entity.types.sort_unstable();
                }
            }
            return id;
        }
        let id = EntityId::from_usize(self.entities.len());
        let mut tys: Vec<TypeId> = types.to_vec();
        tys.sort_unstable();
        tys.dedup();
        self.entities.push(Entity {
            name: name.to_owned(),
            types: tys,
        });
        self.entity_by_name.insert(name.to_owned(), id);
        id
    }

    /// Adds a directed relationship instance from `src` to `dst` of the given
    /// relationship type.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownId`] if any id is out of range and
    /// [`Error::TypeMismatch`] if an endpoint does not carry the entity type
    /// required by the relationship type.
    pub fn edge(&mut self, src: EntityId, rel: RelTypeId, dst: EntityId) -> Result<EdgeId> {
        let rel_record = self
            .rel_types
            .get(rel.index())
            .ok_or(Error::UnknownId {
                kind: "relationship type",
                index: rel.raw(),
            })?
            .clone();
        let src_entity = self.entities.get(src.index()).ok_or(Error::UnknownId {
            kind: "entity",
            index: src.raw(),
        })?;
        let dst_entity = self.entities.get(dst.index()).ok_or(Error::UnknownId {
            kind: "entity",
            index: dst.raw(),
        })?;
        if !src_entity.has_type(rel_record.src_type) {
            return Err(Error::TypeMismatch {
                detail: format!(
                    "source entity {:?} lacks type {:?} required by relationship {:?}",
                    src_entity.name,
                    self.type_names[rel_record.src_type.index()],
                    rel_record.name
                ),
            });
        }
        if !dst_entity.has_type(rel_record.dst_type) {
            return Err(Error::TypeMismatch {
                detail: format!(
                    "destination entity {:?} lacks type {:?} required by relationship {:?}",
                    dst_entity.name,
                    self.type_names[rel_record.dst_type.index()],
                    rel_record.name
                ),
            });
        }
        if self.edges.len() as u64 >= MAX_GRAPH_DIMENSION {
            return Err(Error::GraphTooLarge {
                what: "edges",
                requested: self.edges.len() as u64 + 1,
                max: MAX_GRAPH_DIMENSION,
            });
        }
        let id = EdgeId::from_usize(self.edges.len());
        self.edges.push(Edge { src, dst, rel });
        Ok(id)
    }

    /// Number of entities added so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// [`build`](Self::build) with an explicit capacity check: verifies the
    /// accumulated entity, edge and type-membership counts fit every
    /// `u32`-indexed limit (see [`check_graph_capacity`]) before freezing.
    ///
    /// # Errors
    ///
    /// Returns [`Error::GraphTooLarge`] if any dimension exceeds
    /// [`MAX_GRAPH_DIMENSION`]; the builder is consumed either way.
    pub fn try_build(self) -> Result<EntityGraph> {
        let memberships: u64 = self
            .entities
            .iter()
            .map(|entity| entity.types.len() as u64)
            .sum();
        check_graph_capacity(
            self.entities.len() as u64,
            self.edges.len() as u64,
            memberships,
        )?;
        Ok(self.build())
    }

    /// Freezes the builder into an immutable [`EntityGraph`], computing the
    /// per-type, per-relationship-type and per-entity CSR adjacency indexes
    /// and the per-entity neighbor sets pre-grouped by relationship type.
    pub fn build(self) -> EntityGraph {
        let entity_count = self.entities.len();

        let type_pairs: Vec<(usize, EntityId)> = self
            .entities
            .iter()
            .enumerate()
            .flat_map(|(idx, entity)| {
                let id = EntityId::from_usize(idx);
                entity.types.iter().map(move |ty| (ty.index(), id))
            })
            .collect();
        let entities_by_type = Csr::from_pairs(self.type_names.len(), &type_pairs);

        let mut rel_pairs = Vec::with_capacity(self.edges.len());
        let mut out_pairs = Vec::with_capacity(self.edges.len());
        let mut in_pairs = Vec::with_capacity(self.edges.len());
        for (idx, edge) in self.edges.iter().enumerate() {
            let id = EdgeId::from_usize(idx);
            rel_pairs.push((edge.rel.index(), id));
            out_pairs.push((edge.src.index(), id));
            in_pairs.push((edge.dst.index(), id));
        }
        let edges_by_rel = Csr::from_pairs(self.rel_types.len(), &rel_pairs);
        let out_edges = Csr::from_pairs(entity_count, &out_pairs);
        let in_edges = Csr::from_pairs(entity_count, &in_pairs);

        // Pre-group every entity's neighbors by relationship type (sorted,
        // de-duplicated), so `neighbors_via` is a pure slice lookup.
        let edges = &self.edges;
        let out_neighbors = RelGroupedNeighbors::build(entity_count, |v, scratch| {
            scratch.extend(out_edges.slice(v).iter().map(|&eid| {
                let e = edges[eid.index()];
                (e.rel, e.dst)
            }));
        });
        let in_neighbors = RelGroupedNeighbors::build(entity_count, |v, scratch| {
            scratch.extend(in_edges.slice(v).iter().map(|&eid| {
                let e = edges[eid.index()];
                (e.rel, e.src)
            }));
        });

        EntityGraph {
            entities: self.entities,
            entity_by_name: self.entity_by_name,
            type_names: self.type_names,
            type_by_name: self.type_by_name,
            rel_types: self.rel_types,
            rel_names: self.rel_names,
            rel_by_key: self.rel_by_key,
            edges: self.edges,
            entities_by_type,
            edges_by_rel,
            out_edges,
            in_edges,
            out_neighbors,
            in_neighbors,
            schema_cache: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_type_is_idempotent() {
        let mut b = EntityGraphBuilder::new();
        let a = b.entity_type("FILM");
        let c = b.entity_type("FILM");
        assert_eq!(a, c);
    }

    #[test]
    fn relationship_types_distinguished_by_endpoints() {
        let mut b = EntityGraphBuilder::new();
        let actor = b.entity_type("FILM ACTOR");
        let director = b.entity_type("FILM DIRECTOR");
        let award = b.entity_type("AWARD");
        let r1 = b.relationship_type("Award Winners", actor, award);
        let r2 = b.relationship_type("Award Winners", director, award);
        let r1_again = b.relationship_type("Award Winners", actor, award);
        assert_ne!(r1, r2);
        assert_eq!(r1, r1_again);
    }

    #[test]
    fn entity_merges_types_on_repeat() {
        let mut b = EntityGraphBuilder::new();
        let actor = b.entity_type("FILM ACTOR");
        let producer = b.entity_type("FILM PRODUCER");
        let e1 = b.entity("Will Smith", &[actor]);
        let e2 = b.entity("Will Smith", &[producer]);
        assert_eq!(e1, e2);
        let g = b.build();
        assert_eq!(g.entity(e1).types.len(), 2);
    }

    #[test]
    fn edge_rejects_type_mismatch() {
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let actor = b.entity_type("FILM ACTOR");
        let acted = b.relationship_type("Actor", actor, film);
        let mib = b.entity("Men in Black", &[film]);
        let smith = b.entity("Will Smith", &[actor]);
        // Reversed endpoints: a FILM cannot be the source of an Actor edge.
        let err = b.edge(mib, acted, smith).unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
    }

    #[test]
    fn edge_rejects_unknown_ids() {
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let actor = b.entity_type("FILM ACTOR");
        let acted = b.relationship_type("Actor", actor, film);
        let mib = b.entity("Men in Black", &[film]);
        let err = b.edge(EntityId::new(99), acted, mib).unwrap_err();
        assert!(matches!(err, Error::UnknownId { kind: "entity", .. }));
        let err = b.edge(mib, RelTypeId::new(99), mib).unwrap_err();
        assert!(matches!(
            err,
            Error::UnknownId {
                kind: "relationship type",
                ..
            }
        ));
    }

    #[test]
    fn multigraph_allows_parallel_edges() {
        // Will Smith has both Actor and Executive Producer edges to I, Robot.
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let actor = b.entity_type("FILM ACTOR");
        let producer = b.entity_type("FILM PRODUCER");
        let acted = b.relationship_type("Actor", actor, film);
        let exec = b.relationship_type("Executive Producer", producer, film);
        let irobot = b.entity("I, Robot", &[film]);
        let smith = b.entity("Will Smith", &[actor, producer]);
        b.edge(smith, acted, irobot).unwrap();
        b.edge(smith, exec, irobot).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_edges(smith).len(), 2);
        assert_eq!(g.in_edges(irobot).len(), 2);
    }

    #[test]
    fn build_empty_graph() {
        let g = EntityGraphBuilder::new().build();
        assert_eq!(g.entity_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.type_count(), 0);
    }

    #[test]
    fn capacity_check_rejects_u32_overflow() {
        // 20M entities / 180M edges (the 10000x film scale) still fits …
        assert!(check_graph_capacity(20_000_000, 180_000_000, 40_000_000).is_ok());
        // … but anything past u32 territory is a typed error, per dimension.
        let err = check_graph_capacity(5_000_000_000, 0, 0).unwrap_err();
        assert!(matches!(
            err,
            Error::GraphTooLarge {
                what: "entities",
                ..
            }
        ));
        let err = check_graph_capacity(0, u64::from(u32::MAX), 0).unwrap_err();
        assert!(matches!(err, Error::GraphTooLarge { what: "edges", .. }));
        let err = check_graph_capacity(0, 0, 1 << 40).unwrap_err();
        assert!(matches!(
            err,
            Error::GraphTooLarge {
                what: "type memberships",
                ..
            }
        ));
        assert_eq!(MAX_GRAPH_DIMENSION, u64::from(u32::MAX) - 1);
    }

    #[test]
    fn try_build_checks_and_builds() {
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        b.entity("Men in Black", &[film]);
        let g = b.try_build().unwrap();
        assert_eq!(g.entity_count(), 1);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = EntityGraphBuilder::with_capacity(10, 10);
        let t = b.entity_type("T");
        b.entity("x", &[t]);
        assert_eq!(b.entity_count(), 1);
        assert_eq!(b.edge_count(), 0);
    }
}
